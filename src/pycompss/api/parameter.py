"""``pycompss.api.parameter`` compatibility module."""

from repro.pycompss_api.parameter import (
    FILE_IN,
    FILE_INOUT,
    FILE_OUT,
    IN,
    INOUT,
    OUT,
    Direction,
)

__all__ = ["IN", "OUT", "INOUT", "FILE_IN", "FILE_OUT", "FILE_INOUT", "Direction"]
