"""``pycompss.api.task_group`` compatibility module."""

from repro.pycompss_api.task_group import TaskGroup, compss_barrier_group

__all__ = ["TaskGroup", "compss_barrier_group"]
