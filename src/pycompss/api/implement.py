"""``pycompss.api.implement`` (and binary/mpi/ompss/multinode) compatibility."""

from repro.pycompss_api.implement import binary, implement, mpi, multinode, ompss

__all__ = ["implement", "binary", "mpi", "ompss", "multinode"]
