"""``pycompss.api.constraint`` compatibility module."""

from repro.pycompss_api.constraint import constraint

__all__ = ["constraint"]
