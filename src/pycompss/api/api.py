"""``pycompss.api.api`` compatibility module."""

from repro.pycompss_api.api import (
    compss_barrier,
    compss_delete_object,
    compss_open,
    compss_start,
    compss_stop,
    compss_wait_on,
)

__all__ = [
    "compss_barrier",
    "compss_delete_object",
    "compss_open",
    "compss_start",
    "compss_stop",
    "compss_wait_on",
]
