"""``pycompss.api`` — forwards to :mod:`repro.pycompss_api`."""
