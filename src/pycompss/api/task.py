"""``pycompss.api.task`` compatibility module."""

from repro.pycompss_api.task import task

__all__ = ["task"]
