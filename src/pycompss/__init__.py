"""PyCOMPSs import-compatibility layer.

Lets the paper's Listing 2 run verbatim against this reproduction::

    from pycompss.api.task import task
    from pycompss.api.api import compss_wait_on
    from pycompss.api.constraint import constraint

Everything forwards to :mod:`repro.pycompss_api`.  If you install the
real PyCOMPSs in the same environment, remove this shim (it would shadow
the genuine package).
"""
