"""Command-line launcher — the ``runcompss`` equivalent.

The paper launches the HPO application with::

    runcompss application.py json_file

Here the application is built in (the §4 HPO scheme), so the launcher
takes the JSON config plus the runtime knobs that ``runcompss`` / the job
script would provide: cluster, node count, scheduler, tracing/graph
flags, algorithm, per-task resources and early stopping::

    python -m repro.cli run config.json --cluster mn4 --nodes 2 \
        --executor simulated --cores-per-task 1 --reserved-cores 24 \
        --algorithm grid --target-accuracy 0.95 \
        --out-dir results/

Artifacts written to ``--out-dir``: ``study.json``, ``study.csv``,
``history.csv``, ``graph.dot`` (Fig. 3), ``trace.prv`` (Paraver-style)
and ``report.txt`` (tables + ASCII figures).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.hpo import (
    PyCOMPSsRunner,
    TargetAccuracyStopper,
    accuracy_curves,
    export_history_csv,
    get_algorithm,
    load_search_space,
)
from repro.hpo.objective import fast_mock_objective, train_experiment
from repro.pycompss_api.constraint import ResourceConstraint
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import COMPSsRuntime
from repro.runtime.stats import render_resilience, render_stats
from repro.runtime.tracing import export_prv
from repro.simcluster import (
    cte_power9,
    local_machine,
    mare_nostrum4,
    minotauro,
)
from repro.util.logging_utils import set_verbosity
from repro.util.timing import format_duration

CLUSTERS = {
    "local": lambda n: local_machine(cpu_cores=4 * max(1, n)),
    "mn4": mare_nostrum4,
    "minotauro": minotauro,
    "power9": cte_power9,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Distributed HPO over the PyCOMPSs-like runtime "
        "(reproduction of Kahira et al., ICPP 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an HPO study from a JSON config")
    run.add_argument("config", type=Path, help="Listing-1 style JSON file")
    run.add_argument("--cluster", choices=sorted(CLUSTERS), default="local")
    run.add_argument("--nodes", type=int, default=1, help="number of nodes")
    run.add_argument(
        "--executor", choices=["local", "simulated"], default="local"
    )
    run.add_argument(
        "--backend", choices=["threads", "processes", "workers"],
        default="threads",
        help="local-executor body backend; 'workers' is the supervised "
        "worker-process pool (crash containment, hard-kill deadlines, "
        "poison-task quarantine)",
    )
    run.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-attempt deadline; on --backend workers a "
                     "hung body is hard-killed at the deadline")
    run.add_argument("--max-tasks-per-worker", type=int, default=None,
                     help="recycle each worker process after this many "
                     "completed tasks (--backend workers)")
    run.add_argument("--poison-threshold", type=int, default=3,
                     help="consecutive worker deaths before a task is "
                     "blacklisted as poison (--backend workers)")
    run.add_argument(
        "--scheduler", choices=["fifo", "priority", "locality", "lpt"],
        default="fifo",
    )
    run.add_argument(
        "--algorithm",
        choices=["grid", "random", "bayesian", "tpe", "hyperband",
                 "successive_halving", "evolutionary"],
        default="grid",
    )
    run.add_argument("--n-trials", type=int, default=20,
                     help="budget for non-exhaustive algorithms")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--cores-per-task", type=int, default=1)
    run.add_argument("--gpus-per-task", type=int, default=0)
    run.add_argument("--reserved-cores", type=int, default=0,
                     help="cores kept for the COMPSs worker on node 1")
    run.add_argument("--target-accuracy", type=float, default=None,
                     help="stop the whole study once reached (paper §6.1)")
    run.add_argument("--mock-objective", action="store_true",
                     help="skip real training; use the deterministic mock")
    run.add_argument("--no-tracing", action="store_true",
                     help="disable tracing (the paper's traces-off flag)")
    run.add_argument("--no-graph", action="store_true",
                     help="disable graph label recording")
    run.add_argument("--out-dir", type=Path, default=None,
                     help="directory for study/trace/graph artifacts")
    run.add_argument("--checkpoint-dir", type=Path, default=None,
                     help="enable crash-consistent journaling into this "
                     "directory (journal.jsonl + spilled task outputs)")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     help="spill every Nth completed task's output "
                     "(0 = journal only, no spills)")
    run.add_argument("--resume-from", type=Path, default=None,
                     help="checkpoint directory (or journal.jsonl) of a "
                     "crashed run; completed tasks are restored, not rerun")
    run.add_argument("--verify-outputs", action="store_true",
                     help="checksum every task output at write time and "
                     "verify it at every consume point; corruption repairs "
                     "from a replica or re-executes the writer")
    run.add_argument("--replication-factor", type=int, default=1,
                     help="simulated data plane: copies of each task "
                     "output (primary + N-1 replicas)")
    run.add_argument("--transfer-retries", type=int, default=2,
                     help="cross-node transfer retries before falling "
                     "back to a replica / recompute (simulated executor)")
    run.add_argument("--drain-deadline", type=float, default=120.0,
                     help="graceful-drain window in seconds: a draining "
                     "node that still has running tasks at the deadline "
                     "escalates to a node failure (lineage recovery)")
    run.add_argument("--starvation-timeout", type=float, default=300.0,
                     help="seconds a task whose constraint no live node "
                     "can satisfy waits for a rejoin before failing with "
                     "ResourceStarvationError; 0 disables the watchdog "
                     "(tasks wait forever)")
    run.add_argument("--verbose", action="store_true")

    inspect = sub.add_parser(
        "describe-cluster", help="print a cluster preset's hardware"
    )
    inspect.add_argument("--cluster", choices=sorted(CLUSTERS), default="mn4")
    inspect.add_argument("--nodes", type=int, default=1)

    report = sub.add_parser(
        "report", help="render a full report from a saved study.json"
    )
    report.add_argument("study", type=Path, help="study.json checkpoint")
    report.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")

    recover = sub.add_parser(
        "recover",
        help="replay a crashed run's write-ahead journal and report what "
        "a resumed session would restore",
    )
    recover.add_argument(
        "journal", type=Path,
        help="checkpoint directory or its journal.jsonl",
    )
    recover.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable summary")
    return parser


def _make_runtime_config(args) -> RuntimeConfig:
    cluster = CLUSTERS[args.cluster](args.nodes)
    return RuntimeConfig(
        cluster=cluster,
        executor=args.executor,
        backend=args.backend,
        task_timeout_s=args.task_timeout,
        max_tasks_per_worker=args.max_tasks_per_worker,
        poison_threshold=args.poison_threshold,
        scheduler=args.scheduler,
        tracing=not args.no_tracing,
        graph=not args.no_graph,
        reserved_cores=args.reserved_cores,
        execute_bodies=True,
        checkpoint_dir=(
            str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
        ),
        checkpoint_every=(args.checkpoint_every or None),
        verify_outputs=args.verify_outputs,
        replication_factor=args.replication_factor,
        transfer_retries=args.transfer_retries,
        drain_deadline_s=args.drain_deadline,
        starvation_timeout_s=(
            args.starvation_timeout if args.starvation_timeout > 0 else None
        ),
    )


def cmd_run(args) -> int:
    set_verbosity(args.verbose)
    space = load_search_space(args.config)
    algorithm_kwargs = {}
    if args.algorithm in ("random", "bayesian", "tpe", "evolutionary"):
        algorithm_kwargs = {"n_trials": args.n_trials, "seed": args.seed}
    elif args.algorithm in ("hyperband", "successive_halving"):
        algorithm_kwargs = {"seed": args.seed}
    algorithm = get_algorithm(args.algorithm, space, **algorithm_kwargs)

    stoppers = []
    if args.target_accuracy is not None:
        stoppers.append(TargetAccuracyStopper(args.target_accuracy))

    objective = fast_mock_objective if args.mock_objective else train_experiment
    resume_from = (
        str(args.resume_from) if args.resume_from is not None else None
    )
    runtime = COMPSsRuntime(
        _make_runtime_config(args), resume_from=resume_from
    ).start()
    try:
        runner = PyCOMPSsRunner(
            algorithm,
            objective=objective,
            constraint=ResourceConstraint(
                cpu_units=args.cores_per_task, gpu_units=args.gpus_per_task
            ),
            stoppers=stoppers,
            study_name=args.config.stem,
        )
        study = runner.run()
        report_lines = [
            f"cluster: {runtime.cluster.name}  scheduler: {args.scheduler}  "
            f"algorithm: {algorithm.name}",
            f"total: {format_duration(study.total_duration_s)}"
            + (" (virtual)" if args.executor == "simulated" else ""),
            "",
            study.table(limit=15),
            "",
            accuracy_curves(study, max_series=8),
            "",
            runtime.analysis().summary(),
            "",
            render_stats(runtime.tracer),
        ]
        dispatch = runtime.analysis().dispatch()
        if dispatch["rounds"]:
            report_lines += ["", (
                "dispatch: "
                f"{dispatch['rounds']} scheduling round(s), "
                f"{dispatch['placed']} placement(s), "
                f"avg batch {dispatch['avg_batch_size']:.1f} task(s)/round, "
                f"{dispatch['wakes']} class wake(s) "
                f"({dispatch['full_wakes']} full), "
                f"{dispatch['blocked_skips']} blocked-class skip(s)"
            )]
        if runtime.integrity is not None:
            report_lines += ["", runtime.integrity.describe()]
        churn = runtime.analysis().churn()
        if any(churn.values()):
            report_lines += ["", (
                "node churn: "
                f"{churn['preemption_notices']} preemption notice(s), "
                f"{churn['drains_completed']}/{churn['drains_started']} "
                f"drain(s) completed "
                f"({churn['drain_deadline_escalations']} escalated), "
                f"{churn['nodes_lost']} node(s) lost, "
                f"{churn['nodes_rejoined']} rejoined, "
                f"{churn['classes_starved']} class(es) starved, "
                f"{churn['upstream_cancellations']} consumer(s) cancelled"
            )]
        if len(runtime.resilience):
            report_lines += ["", render_resilience(runtime.resilience)]
        if study.metadata.get("stopped_early"):
            report_lines.insert(2, f"stopped early: {study.metadata['stop_reason']}")
        report = "\n".join(report_lines)
        print(report)

        if args.out_dir is not None:
            out = args.out_dir
            out.mkdir(parents=True, exist_ok=True)
            study.save_json(out / "study.json")
            study.save_csv(out / "study.csv")
            export_history_csv(study, out / "history.csv")
            if not args.no_graph:
                runtime.export_graph(out / "graph.dot")
            if not args.no_tracing:
                export_prv(runtime.tracer, out / "trace.prv")
            (out / "report.txt").write_text(report + "\n", encoding="utf-8")
            print(f"\nartifacts written to {out}/")
        return 0
    finally:
        runtime.stop(wait=False)


def cmd_describe_cluster(args) -> int:
    print(CLUSTERS[args.cluster](args.nodes).describe())
    return 0


def cmd_report(args) -> int:
    from repro.hpo import load_study
    from repro.hpo.report import render_report, save_report

    study = load_study(args.study)
    print(render_report(study))
    if args.out is not None:
        save_report(study, args.out)
        print(f"\nreport written to {args.out}")
    return 0


def cmd_recover(args) -> int:
    from repro.runtime.checkpoint import (
        JOURNAL_FILE,
        JournalCorruptError,
        RecoveryManager,
    )

    path = args.journal
    if path.name == JOURNAL_FILE:
        path = path.parent
    if not (path / JOURNAL_FILE).exists():
        print(f"no {JOURNAL_FILE} found in {path}", file=sys.stderr)
        return 1
    try:
        recovery = RecoveryManager(path)
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 2
    summary = recovery.summary()
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"journal: {summary['journal']}")
    print(f"  sessions: {summary['sessions']}  records: {summary['records']}")
    if summary["truncated_tail"]:
        print("  torn final record dropped (crash mid-write)")
    print(
        f"  tasks seen: {summary['tasks_seen']}  "
        f"completed: {summary['completed']}  "
        f"restorable from checkpoints: {summary['restorable']}"
    )
    spills = summary["spill_integrity"]
    print(
        f"  spill integrity: {spills['ok']} ok / {spills['corrupt']} corrupt "
        f"/ {spills['missing']} missing"
        + (" (corrupt spills re-execute on resume)" if spills["corrupt"] else "")
    )
    print(f"  frontier (will re-execute on resume): {summary['frontier']}")
    print(
        "resume with: repro run <config> "
        f"--resume-from {path} --checkpoint-dir {path}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "describe-cluster":
        return cmd_describe_cluster(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "recover":
        return cmd_recover(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
