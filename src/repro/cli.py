"""Command-line launcher — the ``runcompss`` equivalent.

The paper launches the HPO application with::

    runcompss application.py json_file

Here the application is built in (the §4 HPO scheme), so the launcher
takes the JSON config plus the runtime knobs that ``runcompss`` / the job
script would provide: cluster, node count, scheduler, tracing/graph
flags, algorithm, per-task resources and early stopping::

    python -m repro.cli run config.json --cluster mn4 --nodes 2 \
        --executor simulated --cores-per-task 1 --reserved-cores 24 \
        --algorithm grid --target-accuracy 0.95 \
        --out-dir results/

Artifacts written to ``--out-dir``: ``study.json``, ``study.csv``,
``history.csv``, ``graph.dot`` (Fig. 3), ``trace.prv`` (Paraver-style)
and ``report.txt`` (tables + ASCII figures).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.hpo import (
    PyCOMPSsRunner,
    TargetAccuracyStopper,
    accuracy_curves,
    export_history_csv,
    get_algorithm,
    load_search_space,
)
from repro.hpo.objective import fast_mock_objective, train_experiment
from repro.pycompss_api.constraint import ResourceConstraint
from repro.runtime.config import RuntimeConfig
from repro.runtime.reuse import ReuseCache
from repro.runtime.runtime import COMPSsRuntime
from repro.runtime.stats import render_resilience, render_stats
from repro.runtime.tracing import export_prv
from repro.simcluster import (
    cte_power9,
    local_machine,
    mare_nostrum4,
    minotauro,
)
from repro.util.logging_utils import set_verbosity
from repro.util.timing import format_duration

CLUSTERS = {
    "local": lambda n: local_machine(cpu_cores=4 * max(1, n)),
    "mn4": mare_nostrum4,
    "minotauro": minotauro,
    "power9": cte_power9,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Distributed HPO over the PyCOMPSs-like runtime "
        "(reproduction of Kahira et al., ICPP 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an HPO study from a JSON config")
    run.add_argument("config", type=Path, help="Listing-1 style JSON file")
    run.add_argument("--cluster", choices=sorted(CLUSTERS), default="local")
    run.add_argument("--nodes", type=int, default=1, help="number of nodes")
    run.add_argument(
        "--executor", choices=["local", "simulated"], default="local"
    )
    run.add_argument(
        "--backend", choices=["threads", "processes", "workers"],
        default="threads",
        help="local-executor body backend; 'workers' is the supervised "
        "worker-process pool (crash containment, hard-kill deadlines, "
        "poison-task quarantine)",
    )
    run.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-attempt deadline; on --backend workers a "
                     "hung body is hard-killed at the deadline")
    run.add_argument("--max-tasks-per-worker", type=int, default=None,
                     help="recycle each worker process after this many "
                     "completed tasks (--backend workers)")
    run.add_argument("--poison-threshold", type=int, default=3,
                     help="consecutive worker deaths before a task is "
                     "blacklisted as poison (--backend workers)")
    run.add_argument(
        "--scheduler", choices=["fifo", "priority", "locality", "lpt"],
        default="fifo",
    )
    run.add_argument(
        "--algorithm",
        choices=["grid", "random", "bayesian", "tpe", "hyperband",
                 "successive_halving", "evolutionary", "asha"],
        default="grid",
    )
    run.add_argument("--n-trials", type=int, default=20,
                     help="budget for non-exhaustive algorithms")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--cores-per-task", type=int, default=1)
    run.add_argument("--gpus-per-task", type=int, default=0)
    run.add_argument("--reserved-cores", type=int, default=0,
                     help="cores kept for the COMPSs worker on node 1")
    run.add_argument("--target-accuracy", type=float, default=None,
                     help="stop the whole study once reached (paper §6.1)")
    run.add_argument("--mock-objective", action="store_true",
                     help="skip real training; use the deterministic mock")
    run.add_argument("--no-tracing", action="store_true",
                     help="disable tracing (the paper's traces-off flag)")
    run.add_argument("--no-graph", action="store_true",
                     help="disable graph label recording")
    run.add_argument("--out-dir", type=Path, default=None,
                     help="directory for study/trace/graph artifacts")
    run.add_argument("--checkpoint-dir", type=Path, default=None,
                     help="enable crash-consistent journaling into this "
                     "directory (journal.jsonl + spilled task outputs)")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     help="spill every Nth completed task's output "
                     "(0 = journal only, no spills)")
    run.add_argument("--resume-from", type=Path, default=None,
                     help="checkpoint directory (or journal.jsonl) of a "
                     "crashed run; completed tasks are restored, not rerun")
    run.add_argument("--reuse-cache", action="store_true",
                     help="memoise cacheable stage outputs in a verified "
                     "content-addressed cache shared across trials and "
                     "runs (pairs with --stage-epochs)")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="reuse-cache directory (default: "
                     "<checkpoint-dir>/reuse)")
    run.add_argument("--cache-max-bytes", type=int, default=None,
                     help="reuse-cache size ceiling; least-recently-hit "
                     "entries are evicted past it (leased keys excepted)")
    run.add_argument("--stage-epochs", type=int, default=None,
                     help="decompose each trial into cacheable train "
                     "stages of this many epochs; trials sharing a "
                     "hyperparameter prefix reuse each other's blocks")
    run.add_argument("--verify-outputs", action="store_true",
                     help="checksum every task output at write time and "
                     "verify it at every consume point; corruption repairs "
                     "from a replica or re-executes the writer")
    run.add_argument("--replication-factor", type=int, default=1,
                     help="simulated data plane: copies of each task "
                     "output (primary + N-1 replicas)")
    run.add_argument("--transfer-retries", type=int, default=2,
                     help="cross-node transfer retries before falling "
                     "back to a replica / recompute (simulated executor)")
    run.add_argument("--drain-deadline", type=float, default=120.0,
                     help="graceful-drain window in seconds: a draining "
                     "node that still has running tasks at the deadline "
                     "escalates to a node failure (lineage recovery)")
    run.add_argument("--starvation-timeout", type=float, default=300.0,
                     help="seconds a task whose constraint no live node "
                     "can satisfy waits for a rejoin before failing with "
                     "ResourceStarvationError; 0 disables the watchdog "
                     "(tasks wait forever)")
    run.add_argument("--preempt-checkpoint-epochs", type=int, default=1,
                     help="checkpoint-epoch cadence: preemptible trials "
                     "poll their suspension flag every Nth epoch end "
                     "(requires --checkpoint-dir for the spill target)")
    run.add_argument("--suspend-grace", type=float, default=30.0,
                     help="seconds a suspend-flagged trial gets to spill "
                     "warm before its tasks are abandoned (the spill "
                     "still warm-resumes whatever landed)")
    run.add_argument("--max-suspended-trials", type=int, default=64,
                     help="ceiling on concurrently suspended trials; "
                     "suspend requests past it are refused so a flapping "
                     "watchdog cannot park an entire study")
    run.add_argument("--verbose", action="store_true")

    inspect = sub.add_parser(
        "describe-cluster", help="print a cluster preset's hardware"
    )
    inspect.add_argument("--cluster", choices=sorted(CLUSTERS), default="mn4")
    inspect.add_argument("--nodes", type=int, default=1)

    report = sub.add_parser(
        "report", help="render a full report from a saved study.json"
    )
    report.add_argument("study", type=Path, help="study.json checkpoint")
    report.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    report.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable study dump instead of the "
                        "rendered report")

    recover = sub.add_parser(
        "recover",
        help="replay a crashed run's write-ahead journal and report what "
        "a resumed session would restore",
    )
    recover.add_argument(
        "journal", type=Path,
        help="checkpoint directory or its journal.jsonl",
    )
    recover.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable summary")
    recover.add_argument("--cache-dir", type=Path, default=None,
                         help="reuse-cache directory to health-scan "
                         "(default: <dir>/reuse when present)")

    gc = sub.add_parser(
        "gc",
        help="sweep a checkpoint directory: spills no journal record "
        "references, torn temp files, stale reuse-cache leases and "
        "corrupt cache entries",
    )
    gc.add_argument(
        "journal", type=Path,
        help="checkpoint directory or its journal.jsonl",
    )
    gc.add_argument("--cache-dir", type=Path, default=None,
                    help="reuse-cache directory to sweep "
                    "(default: <dir>/reuse when present)")
    gc.add_argument("--lease-timeout", type=float, default=60.0,
                    help="age in seconds past which a cache lease counts "
                    "as abandoned (crashed writer) and is reaped")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be reclaimed without deleting")
    gc.add_argument("--json", action="store_true", dest="as_json",
                    help="machine-readable summary")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HPO service daemon over a spool "
        "directory (fault-isolated studies, admission control, "
        "whole-daemon crash recovery)",
    )
    serve.add_argument("root", type=Path, help="service root directory")
    serve.add_argument("--cluster", choices=sorted(CLUSTERS), default="local")
    serve.add_argument("--nodes", type=int, default=1)
    serve.add_argument(
        "--executor", choices=["local", "simulated"], default="local"
    )
    serve.add_argument(
        "--backend", choices=["threads", "processes", "workers"],
        default="threads",
    )
    serve.add_argument("--scheduler",
                       choices=["fifo", "priority", "locality", "lpt"],
                       default="fifo")
    serve.add_argument("--max-queued-studies", type=int, default=16,
                       help="bound on the admission queue (QueueFullError "
                       "beyond it)")
    serve.add_argument("--max-queued-per-tenant", type=int, default=8,
                       help="per-tenant queue share (TenantQuotaError "
                       "beyond it)")
    serve.add_argument("--max-studies-per-tenant", type=int, default=2,
                       help="cap on one tenant's concurrently running "
                       "studies (over-quota studies wait in the queue)")
    serve.add_argument("--max-concurrent-studies", type=int, default=4,
                       help="daemon-wide concurrent-study cap")
    serve.add_argument("--rss-limit-mb", type=float, default=None,
                       help="memory ceiling: shed queued studies and "
                       "reject submissions while over it")
    serve.add_argument("--reuse-cache", action="store_true",
                       help="share a verified stage cache across all "
                       "tenants (anchored at <root>/reuse-cache); staged "
                       "studies reuse each other's epoch blocks")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="shared reuse-cache size ceiling (LRU)")
    serve.add_argument("--drain-deadline", type=float, default=30.0,
                       help="graceful-shutdown budget; stragglers are "
                       "re-queued for the next daemon life")
    serve.add_argument("--heartbeat", type=float, default=1.0,
                       help="daemon.json liveness stamp cadence (seconds)")
    serve.add_argument("--once", action="store_true",
                       help="serve until the inbox/queue/running set is "
                       "empty, then exit (CI soak mode)")
    serve.add_argument("--max-wait", type=float, default=None,
                       help="with --once: fail if not idle in this time")
    serve.add_argument("--verbose", action="store_true")

    submit = sub.add_parser(
        "submit", help="submit a study to a running service daemon"
    )
    submit.add_argument("root", type=Path, help="service root directory")
    submit.add_argument("study_id", help="unique study id (idempotency key)")
    submit.add_argument("config", type=Path,
                        help="Listing-1 style JSON search-space file")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--algorithm", default="grid",
                        choices=["grid", "random", "bayesian", "tpe",
                                 "hyperband", "successive_halving",
                                 "evolutionary", "asha"])
    submit.add_argument("--n-trials", type=int, default=20)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--objective", default="fast_mock",
                        help="objective spec: fast_mock | slow_mock | "
                        "preemptible_mock | poison | train | "
                        "module:function")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--weight", type=float, default=1.0)
    submit.add_argument("--batch-size", type=int, default=None)
    submit.add_argument("--max-trial-retries", type=int, default=0)
    submit.add_argument("--max-failed-trials", type=int, default=None)
    submit.add_argument("--max-tenant-slots", type=int, default=None)
    submit.add_argument("--stage-epochs", type=int, default=None,
                        help="decompose trials into cacheable epoch "
                        "blocks of this size (reuse across tenants when "
                        "the daemon runs with --reuse-cache)")
    submit.add_argument("--timeout", type=float, default=30.0,
                        help="seconds to wait for the admission verdict")
    submit.add_argument("--no-wait", action="store_true",
                        help="drop the request and return immediately")

    watch = sub.add_parser(
        "watch", help="wait for a submitted study to reach a terminal state"
    )
    watch.add_argument("root", type=Path)
    watch.add_argument("study_id")
    watch.add_argument("--timeout", type=float, default=300.0)
    watch.add_argument("--json", action="store_true", dest="as_json")

    cancel = sub.add_parser("cancel", help="cancel a queued/running study")
    cancel.add_argument("root", type=Path)
    cancel.add_argument("study_id")

    svc_status = sub.add_parser(
        "service-status", help="daemon liveness + per-state study counts"
    )
    svc_status.add_argument("root", type=Path)
    svc_status.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _make_runtime_config(args) -> RuntimeConfig:
    cluster = CLUSTERS[args.cluster](args.nodes)
    return RuntimeConfig(
        cluster=cluster,
        executor=args.executor,
        backend=args.backend,
        task_timeout_s=args.task_timeout,
        max_tasks_per_worker=args.max_tasks_per_worker,
        poison_threshold=args.poison_threshold,
        scheduler=args.scheduler,
        tracing=not args.no_tracing,
        graph=not args.no_graph,
        reserved_cores=args.reserved_cores,
        execute_bodies=True,
        checkpoint_dir=(
            str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
        ),
        checkpoint_every=(args.checkpoint_every or None),
        verify_outputs=args.verify_outputs,
        replication_factor=args.replication_factor,
        transfer_retries=args.transfer_retries,
        drain_deadline_s=args.drain_deadline,
        starvation_timeout_s=(
            args.starvation_timeout if args.starvation_timeout > 0 else None
        ),
        preempt_checkpoint_epochs=args.preempt_checkpoint_epochs,
        suspend_grace_s=args.suspend_grace,
        max_suspended_trials=args.max_suspended_trials,
        reuse_cache=args.reuse_cache,
        cache_dir=(
            str(args.cache_dir) if args.cache_dir is not None else None
        ),
        cache_max_bytes=args.cache_max_bytes,
    )


def cmd_run(args) -> int:
    set_verbosity(args.verbose)
    space = load_search_space(args.config)
    algorithm_kwargs = {}
    if args.algorithm in ("random", "bayesian", "tpe", "evolutionary", "asha"):
        algorithm_kwargs = {"n_trials": args.n_trials, "seed": args.seed}
    elif args.algorithm in ("hyperband", "successive_halving"):
        algorithm_kwargs = {"seed": args.seed}
    algorithm = get_algorithm(args.algorithm, space, **algorithm_kwargs)

    stoppers = []
    if args.target_accuracy is not None:
        stoppers.append(TargetAccuracyStopper(args.target_accuracy))

    objective = fast_mock_objective if args.mock_objective else train_experiment
    resume_from = (
        str(args.resume_from) if args.resume_from is not None else None
    )
    if args.reuse_cache and args.cache_dir is None and args.checkpoint_dir is None:
        print(
            "--reuse-cache needs a home: pass --cache-dir, or "
            "--checkpoint-dir (the cache then lives under "
            "<checkpoint-dir>/reuse)",
            file=sys.stderr,
        )
        return 2
    stage_plan = None
    if args.stage_epochs is not None:
        from repro.hpo.stages import StagePlan

        stage_plan = StagePlan(
            block_epochs=args.stage_epochs,
            objective="mock" if args.mock_objective else "train",
        )
    runtime = COMPSsRuntime(
        _make_runtime_config(args), resume_from=resume_from
    ).start()
    try:
        runner = PyCOMPSsRunner(
            algorithm,
            objective=objective,
            constraint=ResourceConstraint(
                cpu_units=args.cores_per_task, gpu_units=args.gpus_per_task
            ),
            stoppers=stoppers,
            study_name=args.config.stem,
            stage_plan=stage_plan,
        )
        study = runner.run()
        report_lines = [
            f"cluster: {runtime.cluster.name}  scheduler: {args.scheduler}  "
            f"algorithm: {algorithm.name}",
            f"total: {format_duration(study.total_duration_s)}"
            + (" (virtual)" if args.executor == "simulated" else ""),
            "",
            study.table(limit=15),
            "",
            accuracy_curves(study, max_series=8),
            "",
            runtime.analysis().summary(),
            "",
            render_stats(runtime.tracer),
        ]
        dispatch = runtime.analysis().dispatch()
        if dispatch["rounds"]:
            report_lines += ["", (
                "dispatch: "
                f"{dispatch['rounds']} scheduling round(s), "
                f"{dispatch['placed']} placement(s), "
                f"avg batch {dispatch['avg_batch_size']:.1f} task(s)/round, "
                f"{dispatch['wakes']} class wake(s) "
                f"({dispatch['full_wakes']} full), "
                f"{dispatch['blocked_skips']} blocked-class skip(s)"
            )]
        if runtime.integrity is not None:
            report_lines += ["", runtime.integrity.describe()]
        if runtime.reuse is not None:
            report_lines += ["", runtime.reuse.describe()]
        churn = runtime.analysis().churn()
        if any(churn.values()):
            report_lines += ["", (
                "node churn: "
                f"{churn['preemption_notices']} preemption notice(s), "
                f"{churn['drains_completed']}/{churn['drains_started']} "
                f"drain(s) completed "
                f"({churn['drain_deadline_escalations']} escalated), "
                f"{churn['nodes_lost']} node(s) lost, "
                f"{churn['nodes_rejoined']} rejoined, "
                f"{churn['classes_starved']} class(es) starved, "
                f"{churn['upstream_cancellations']} consumer(s) cancelled"
            )]
        preempt = runtime.analysis().preemption()
        if any(preempt.values()):
            stats = study.metadata.get("preemption", {})
            report_lines += ["", (
                "preemption: "
                f"{preempt['trials_suspended']} trial(s) suspended, "
                f"{preempt['suspend_spills']} warm spill(s), "
                f"{preempt['trials_resumed']} resumed, "
                f"{preempt['rung_promotions']} rung promotion(s), "
                f"{stats.get('epochs_lost', 0)} epoch(s) lost"
            )]
        if len(runtime.resilience):
            report_lines += ["", render_resilience(runtime.resilience)]
        if study.metadata.get("stopped_early"):
            report_lines.insert(2, f"stopped early: {study.metadata['stop_reason']}")
        report = "\n".join(report_lines)
        print(report)

        if args.out_dir is not None:
            out = args.out_dir
            out.mkdir(parents=True, exist_ok=True)
            study.save_json(out / "study.json")
            study.save_csv(out / "study.csv")
            export_history_csv(study, out / "history.csv")
            if not args.no_graph:
                runtime.export_graph(out / "graph.dot")
            if not args.no_tracing:
                export_prv(runtime.tracer, out / "trace.prv")
            (out / "report.txt").write_text(report + "\n", encoding="utf-8")
            print(f"\nartifacts written to {out}/")
        return 0
    finally:
        runtime.stop(wait=False)


def cmd_describe_cluster(args) -> int:
    print(CLUSTERS[args.cluster](args.nodes).describe())
    return 0


def cmd_report(args) -> int:
    from repro.hpo import load_study
    from repro.hpo.report import render_report, save_report

    study = load_study(args.study)
    if args.as_json:
        print(json.dumps(study.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(study))
    if args.out is not None:
        save_report(study, args.out)
        print(f"\nreport written to {args.out}")
    return 0


def cmd_recover(args) -> int:
    from repro.runtime.checkpoint import (
        JOURNAL_FILE,
        JournalCorruptError,
        RecoveryManager,
    )

    path = args.journal
    if path.name == JOURNAL_FILE:
        path = path.parent
    if not (path / JOURNAL_FILE).exists():
        print(f"no {JOURNAL_FILE} found in {path}", file=sys.stderr)
        return 1
    try:
        recovery = RecoveryManager(path)
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 2
    summary = recovery.summary()
    cache_dir = args.cache_dir if args.cache_dir is not None else path / "reuse"
    cache = ReuseCache.scan(cache_dir)
    if cache is not None:
        summary["reuse_cache"] = cache
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"journal: {summary['journal']}")
    print(f"  sessions: {summary['sessions']}  records: {summary['records']}")
    if summary["truncated_tail"]:
        print("  torn final record dropped (crash mid-write)")
    print(
        f"  tasks seen: {summary['tasks_seen']}  "
        f"completed: {summary['completed']}  "
        f"restorable from checkpoints: {summary['restorable']}"
    )
    spills = summary["spill_integrity"]
    print(
        f"  spill integrity: {spills['ok']} ok / {spills['corrupt']} corrupt "
        f"/ {spills['missing']} missing"
        + (" (corrupt spills re-execute on resume)" if spills["corrupt"] else "")
    )
    print(f"  frontier (will re-execute on resume): {summary['frontier']}")
    if cache is not None:
        print(
            f"  reuse cache: {cache['entries']} entries, {cache['bytes']} B, "
            f"{cache['corrupt']} corrupt, {cache['leases']} lease(s) "
            f"({cache['stale_leases']} stale), "
            f"{cache['quarantined']} quarantined"
            + (" (corrupt entries re-verify as misses)" if cache["corrupt"]
               else "")
        )
    print(
        "resume with: repro run <config> "
        f"--resume-from {path} --checkpoint-dir {path}"
    )
    return 0


def cmd_gc(args) -> int:
    from repro.runtime.checkpoint import (
        JOURNAL_FILE,
        JournalCorruptError,
        RecoveryManager,
    )

    path = args.journal
    if path.name == JOURNAL_FILE:
        path = path.parent
    if not (path / JOURNAL_FILE).exists():
        print(f"no {JOURNAL_FILE} found in {path}", file=sys.stderr)
        return 1
    try:
        recovery = RecoveryManager(path)
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 2
    # Every key with *any* journal record stays: completed spills a
    # resume restores, and in-flight keys a parked study may yet finish.
    referenced = set(recovery.states)
    # Honour active leases generically: a fresh .lease next to a spill
    # means some process is mid-write on that key.
    protected = set()
    import time as _time

    now = _time.time()
    for lease in recovery.store.directory.glob("*.lease"):
        try:
            if now - lease.stat().st_mtime <= args.lease_timeout:
                protected.add(lease.stem)
        except OSError:
            continue
    spills = recovery.store.sweep_orphans(
        referenced, protected=protected, dry_run=args.dry_run
    )
    cache_dir = args.cache_dir if args.cache_dir is not None else path / "reuse"
    cache = ReuseCache.gc(
        cache_dir, lease_timeout_s=args.lease_timeout, dry_run=args.dry_run
    )
    summary = {"spills": spills, "reuse_cache": cache}
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"checkpoint gc: {path}")
    print(
        f"  spills: {spills['orphans']} orphan(s), "
        f"{spills['torn_temps']} torn temp(s) — "
        f"{verb} {spills['freed_bytes']} B"
    )
    if spills["orphan_keys"]:
        print(f"    orphan keys: {', '.join(spills['orphan_keys'][:8])}"
              + (" ..." if len(spills["orphan_keys"]) > 8 else ""))
    if cache is not None:
        print(
            f"  reuse cache: {cache['stale_leases']} stale lease(s), "
            f"{cache['torn_temps']} torn temp(s), "
            f"{cache['corrupt_entries']} corrupt entr(ies) — "
            f"{verb} {cache['freed_bytes']} B"
        )
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.service import AdmissionConfig, HPOService

    set_verbosity(args.verbose)
    config = RuntimeConfig(
        cluster=CLUSTERS[args.cluster](args.nodes),
        executor=args.executor,
        backend=args.backend,
        scheduler=args.scheduler,
        execute_bodies=True,
        reuse_cache=args.reuse_cache,
        cache_dir=(
            str(Path(args.root) / "reuse-cache") if args.reuse_cache else None
        ),
        cache_max_bytes=args.cache_max_bytes,
    )
    service = HPOService(
        args.root,
        runtime_config=config,
        admission=AdmissionConfig(
            max_queued_studies=args.max_queued_studies,
            max_queued_per_tenant=args.max_queued_per_tenant,
            max_studies_per_tenant=args.max_studies_per_tenant,
            max_concurrent_studies=args.max_concurrent_studies,
            rss_limit_mb=args.rss_limit_mb,
        ),
        drain_deadline_s=args.drain_deadline,
        heartbeat_s=args.heartbeat,
    ).start()

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        service.shutdown(drain=True)

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    try:
        if args.once:
            service.run_until_idle(max_wait_s=args.max_wait)
        else:
            service.serve_forever()
    finally:
        if service.runtime is not None:
            service.shutdown(drain=True)
    return 0


def cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError, StudyRequest

    spec = json.loads(args.config.read_text(encoding="utf-8"))
    algorithm_kwargs = {}
    if args.algorithm in ("random", "bayesian", "tpe", "evolutionary", "asha"):
        algorithm_kwargs = {"n_trials": args.n_trials, "seed": args.seed}
    elif args.algorithm in ("hyperband", "successive_halving"):
        algorithm_kwargs = {"seed": args.seed}
    request = StudyRequest(
        study_id=args.study_id,
        tenant=args.tenant,
        space=spec,
        algorithm=args.algorithm,
        algorithm_kwargs=algorithm_kwargs,
        objective=args.objective,
        batch_size=args.batch_size,
        priority=args.priority,
        weight=args.weight,
        max_trial_retries=args.max_trial_retries,
        max_failed_trials=args.max_failed_trials,
        max_tenant_slots=args.max_tenant_slots,
        stage_epochs=args.stage_epochs,
    )
    client = ServiceClient(args.root, timeout_s=args.timeout)
    try:
        client.submit(request, wait_admission=not args.no_wait)
    except ServiceError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(f"study {args.study_id} submitted"
          + ("" if args.no_wait else " and admitted"))
    return 0


def cmd_watch(args) -> int:
    from repro.service import ClientTimeoutError, ServiceClient

    client = ServiceClient(args.root)
    try:
        state = client.watch(args.study_id, timeout_s=args.timeout)
    except ClientTimeoutError as exc:
        print(f"ClientTimeoutError: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(state, indent=2, sort_keys=True))
    else:
        print(f"study {args.study_id}: {state.get('status')}"
              + (f" — {state['detail']}" if state.get("detail") else ""))
        best = state.get("best")
        if best:
            print(f"  best trial {best['trial_id']}: "
                  f"val_acc={best['val_accuracy']:.3f} {best['config']}")
    return 0 if state.get("status") == "completed" else 2


def cmd_cancel(args) -> int:
    from repro.service import ServiceClient, StudyNotFoundError

    try:
        ServiceClient(args.root).cancel(args.study_id)
    except StudyNotFoundError as exc:
        print(f"StudyNotFoundError: {exc}", file=sys.stderr)
        return 1
    print(f"cancellation requested for {args.study_id}")
    return 0


def cmd_service_status(args) -> int:
    from repro.service import ServiceClient

    status = ServiceClient(args.root).service_status()
    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    daemon = status["daemon"]
    print(f"daemon: {daemon.get('status', 'absent')}"
          + (f" (pid {daemon['pid']}, generation {daemon['generation']})"
             if "pid" in daemon else ""))
    for state, count in sorted(status["studies"].items()):
        print(f"  {state}: {count}")
    suspended = status.get("suspended", [])
    if suspended:
        # Parked warm, not terminal: the daemon re-enqueues these
        # automatically once memory pressure clears.
        print(f"suspended studies (resume when pressure clears): "
              f"{', '.join(suspended)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "describe-cluster":
        return cmd_describe_cluster(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "recover":
        return cmd_recover(args)
    if args.command == "gc":
        return cmd_gc(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "watch":
        return cmd_watch(args)
    if args.command == "cancel":
        return cmd_cancel(args)
    if args.command == "service-status":
        return cmd_service_status(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
