"""Study reports — the paper's "visualisation dashboards" requirement (§1).

Generates a single self-contained text/markdown report of an HPO study:
headline result, trial table, accuracy curves, per-hyperparameter effect
summary (marginal mean accuracy per value — which knob mattered), and the
early-stopping / fault metadata.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.hpo.trial import Study
from repro.hpo.visualization import accuracy_curves, config_heatmap, final_accuracy_bars
from repro.util.ascii_plot import table
from repro.util.timing import format_duration


def hyperparameter_effects(study: Study) -> Dict[str, Dict[str, float]]:
    """Marginal mean validation accuracy per hyperparameter value.

    The grid-search analogue of an importance analysis: for each config
    key, the mean accuracy over all completed trials sharing each value.
    Non-swept keys (single value) are omitted.
    """
    by_key: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    for trial in study.completed():
        for key, value in trial.config.items():
            by_key[key][repr(value)].append(trial.val_accuracy)
    return {
        key: {v: float(np.mean(accs)) for v, accs in values.items()}
        for key, values in by_key.items()
        if len(values) > 1
    }


def render_effects(study: Study) -> str:
    """Text table of :func:`hyperparameter_effects`."""
    effects = hyperparameter_effects(study)
    if not effects:
        return "(no swept hyperparameters with completed trials)"
    rows = []
    for key, values in effects.items():
        ranked = sorted(values.items(), key=lambda kv: -kv[1])
        for value, acc in ranked:
            rows.append([key, value, acc])
    return table(
        ["hyperparameter", "value", "mean val_acc"],
        rows,
        title="marginal effect of each hyperparameter value",
    )


def render_report(study: Study, max_curves: int = 8) -> str:
    """Full text report of a study."""
    lines = [
        f"# HPO study report: {study.name}",
        "",
        f"trials: {len(study.completed())}/{len(study.trials)} completed, "
        f"total {format_duration(study.total_duration_s)}",
    ]
    for key, value in study.metadata.items():
        if key in ("plot", "preemption"):
            continue
        lines.append(f"- {key}: {value}")
    preempt = study.metadata.get("preemption")
    if preempt and any(preempt.values()):
        lines.append(
            "- preemption: "
            f"{preempt.get('suspended', 0)} trial(s) suspended, "
            f"{preempt.get('spills', 0)} warm spill(s), "
            f"{preempt.get('resumed', 0)} resumed, "
            f"{preempt.get('rung_promotions', 0)} rung promotion(s), "
            f"{preempt.get('epochs_lost', 0)} epoch(s) lost"
        )
    if study.completed():
        best = study.best_trial()
        lines += [
            "",
            f"## Best trial: #{best.trial_id} "
            f"(val_accuracy {best.val_accuracy:.4f})",
            f"config: {best.config}",
            "",
            "## Trials",
            study.table(limit=20),
            "",
            "## Accuracy curves",
            accuracy_curves(study, max_series=max_curves),
            "",
            "## Final accuracies",
            final_accuracy_bars(study),
            "",
            "## Hyperparameter effects",
            render_effects(study),
        ]
        swept = [k for k in hyperparameter_effects(study)]
        if len(swept) >= 2:
            lines += [
                "",
                "## Interaction heatmap",
                config_heatmap(study, swept[0], swept[1]),
            ]
    else:
        lines += ["", "(no completed trials)"]
    return "\n".join(lines)


def save_report(study: Study, path: Union[str, Path]) -> Path:
    """Write :func:`render_report` to ``path``."""
    path = Path(path)
    path.write_text(render_report(study) + "\n", encoding="utf-8")
    return path
