"""Study persistence and resume.

The paper motivates fault tolerance with multi-day HPO jobs (§1, §3).
Task-level retries cover transient failures; this module covers the
*job* level: a study checkpoint (the ``study.json`` written by
:meth:`~repro.hpo.trial.Study.save_json`) can be reloaded and an
interrupted run **resumed** — completed configurations are skipped for
exhaustive algorithms and re-told to adaptive ones (warm start).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple, Union

from repro.hpo.algorithms import SearchAlgorithm
from repro.hpo.algorithms.grid import GridSearch
from repro.hpo.trial import Study, TrialResult, TrialStatus
from repro.runtime.checkpoint import JOURNAL_FILE


def load_study(path: Union[str, Path]) -> Study:
    """Reload a study saved with :meth:`Study.save_json`."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    study = Study(data.get("name", path.stem))
    study.total_duration_s = float(data.get("total_duration_s", 0.0))
    study.metadata = dict(data.get("metadata", {}))
    for item in data.get("trials", []):
        trial = study.new_trial(item["config"])
        trial.status = TrialStatus(item.get("status", "pending"))
        trial.error = item.get("error")
        result = item.get("result")
        if result is not None:
            trial.result = TrialResult(
                val_accuracy=result["val_accuracy"],
                val_loss=result.get("val_loss", float("nan")),
                train_accuracy=result.get("train_accuracy", float("nan")),
                train_loss=result.get("train_loss", float("nan")),
                history=result.get("history", {}),
                epochs_run=int(result.get("epochs_run", 0)),
                duration_s=float(result.get("duration_s", 0.0)),
                node=result.get("node"),
            )
    return study


def config_key(config: Mapping[str, Any]) -> tuple:
    """Hashable identity of a configuration (order-insensitive)."""
    return tuple(sorted((k, repr(v)) for k, v in config.items()))


def resume_algorithm(
    algorithm: SearchAlgorithm, previous: Study
) -> SearchAlgorithm:
    """Prepare ``algorithm`` to continue after ``previous``.

    * Exhaustive :class:`GridSearch`: completed configs are removed from
      the pending schedule (they would be wasted re-evaluations).
    * Every algorithm: completed trials are fed back via
      :meth:`~repro.hpo.algorithms.base.SearchAlgorithm.warm_start`, so
      model-based methods benefit immediately.

    Returns the (mutated) algorithm for chaining.
    """
    algorithm.warm_start(previous)
    if isinstance(algorithm, GridSearch):
        done = {config_key(t.config) for t in previous.completed()}
        algorithm._pending = [
            c for c in algorithm._pending if config_key(c) not in done
        ]
    return algorithm


def compose_resume(
    algorithm: SearchAlgorithm,
    study_path: Optional[Union[str, Path]] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Tuple[Optional[Study], Optional[str]]:
    """Wire both resume layers after a crash, in the right order.

    Two complementary mechanisms cover an interrupted study:

    * **study.json warm start** — trials the *study* recorded as complete
      are re-told to the algorithm and (for exhaustive search) removed
      from the schedule; they are never resubmitted.
    * **runtime journal replay** — trials that finished at the *task*
      level but crashed before the study recorded them are resubmitted by
      the resumed driver and restored instantly from the checkpoint store
      (zero re-training).

    Returns ``(previous_study, resume_from)``: the loaded study (``None``
    if ``study_path`` is absent/missing) and the checkpoint directory to
    pass as ``PyCOMPSsRunner(resume_from=...)`` (``None`` if no journal
    exists there yet).  Either layer alone also works; composing them
    loses nothing from a kill -9 at any point.
    """
    previous: Optional[Study] = None
    if study_path is not None and Path(study_path).exists():
        previous = load_study(study_path)
        resume_algorithm(algorithm, previous)
    resume_from: Optional[str] = None
    if checkpoint_dir is not None:
        checkpoint_dir = Path(checkpoint_dir)
        if checkpoint_dir.name == JOURNAL_FILE:
            checkpoint_dir = checkpoint_dir.parent
        if (checkpoint_dir / JOURNAL_FILE).exists():
            resume_from = str(checkpoint_dir)
    return previous, resume_from


def merge_studies(base: Study, continuation: Study, name: str = "") -> Study:
    """Combine a resumed run with its predecessor into one study.

    Trials are renumbered sequentially; durations add up (the total time
    the search consumed across both sessions).
    """
    merged = Study(name or f"{base.name}+resumed")
    for source in (base, continuation):
        for trial in source.trials:
            clone = merged.new_trial(trial.config)
            clone.status = trial.status
            clone.result = trial.result
            clone.error = trial.error
    merged.total_duration_s = base.total_duration_s + continuation.total_duration_s
    merged.metadata = {**base.metadata, **continuation.metadata}
    merged.metadata["resumed"] = True
    return merged
