"""The PyCOMPSs-backed HPO runner — the paper's core scheme (§4).

Structure (paper Fig. 2): the *application* receives a search space (from
the Listing-1 JSON), generates *configs* with the selected algorithm, and
launches one ``experiment`` task per config; ``compss_wait_on``
synchronises the results, optional ``visualisation`` tasks post-process
each result and a final ``plot`` task combines them (the task graph of
Fig. 3).  The runtime distributes tasks over however many nodes the job
was given — "no code changes are required to run across multiple nodes".
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.hpo.algorithms import SearchAlgorithm, get_algorithm
from repro.hpo.early_stopping import StudyStopper
from repro.hpo.space import SearchSpace
from repro.hpo.stages import STAGE_BODIES, StagePlan, split_config, stage_prepare
from repro.hpo.trial import Study, Trial, TrialResult, TrialStatus
from repro.hpo.objective import train_experiment
from repro.pycompss_api.constraint import ResourceConstraint
from repro.runtime import resilience as rsl
from repro.runtime.config import RuntimeConfig
from repro.runtime.fault import StudyAbandonedError, TaskFailedError
from repro.runtime.preemption import (
    PREEMPT_CONFIG_KEY,
    SUSPENDED_PAYLOAD_KEY,
    PreemptContext,
)
from repro.runtime.runtime import COMPSsRuntime, current_runtime
from repro.runtime.task_definition import TaskDefinition
from repro.util.logging_utils import get_logger
from repro.util.timing import Stopwatch

_log = get_logger("hpo.runner")

Objective = Callable[[Mapping[str, Any]], Mapping[str, Any]]


class StudyCallback:
    """Observer hooks for a running study (the live-dashboard seam).

    The paper lists "visualisation dashboards" among the must-have HPO
    tool features (§1); a callback receives every trial transition so a
    dashboard (or logger, or notifier) can track the study in real time.
    All hooks default to no-ops.
    """

    def on_study_begin(self, study: Study) -> None:
        """Called once before the first trial is launched."""

    def on_trial_start(self, study: Study, trial: Trial) -> None:
        """Called when a trial's experiment task is submitted."""

    def on_trial_suspended(self, study: Study, trial: Trial) -> None:
        """Called when a trial suspends warm (before it is resubmitted)."""

    def on_trial_complete(self, study: Study, trial: Trial) -> None:
        """Called after a trial resolves (COMPLETED or FAILED)."""

    def on_study_end(self, study: Study) -> None:
        """Called once after the study finishes (or stops early)."""


class ProgressPrinter(StudyCallback):
    """Minimal textual dashboard: one line per finished trial."""

    def __init__(self, stream=None):
        import sys

        self.stream = stream or sys.stdout

    def on_trial_complete(self, study: Study, trial: Trial) -> None:
        done = len(study.completed())
        if trial.status.value == "completed":
            line = (
                f"[{done:>3}] trial {trial.trial_id}: "
                f"val_acc={trial.val_accuracy:.3f} {trial.describe_config()}"
            )
        else:
            line = f"[{done:>3}] trial {trial.trial_id}: {trial.status.value}"
        print(line, file=self.stream)


def summarise_result(result: Mapping[str, Any]) -> Dict[str, Any]:
    """The ``visualisation`` task body: per-experiment summary (Fig. 3).

    "For immediate and interactive action, the performance measure
    returned can be visualised using another task" (§4).
    """
    history = result.get("history", {})
    accs = history.get("val_accuracy", [])
    return {
        "val_accuracy": float(result["val_accuracy"]),
        "best_epoch": int(max(range(len(accs)), key=accs.__getitem__)) if accs else 0,
        "epochs_run": int(result.get("epochs_run", len(accs))),
    }


def combine_plots(summaries: Sequence[Mapping[str, Any]]) -> str:
    """The final ``plot`` task body: one line per experiment (Fig. 3).

    "When all tasks are completed, we plot the graphs showing the
    performance of each experiment" (§4).
    """
    lines = [
        f"experiment {i + 1}: val_acc={s['val_accuracy']:.3f} "
        f"(best epoch {s['best_epoch']}, {s['epochs_run']} epochs)"
        for i, s in enumerate(summaries)
    ]
    return "\n".join(lines)


class PyCOMPSsRunner:
    """Run an HPO study as PyCOMPSs tasks.

    Parameters
    ----------
    algorithm:
        A :class:`SearchAlgorithm`, or an algorithm name combined with
        ``space`` (and algorithm kwargs via ``algorithm_kwargs``).
    space:
        Search space (required when ``algorithm`` is a name).
    objective:
        The experiment body; defaults to real training
        (:func:`~repro.hpo.objective.train_experiment`).  Must be
        picklable for the process backend.
    constraint:
        Resources per experiment task — the paper's ``@constraint``
        (e.g. 1 CPU; or 48 CPUs; or 1 GPU + N CPUs).
    runtime_config:
        Runtime to start if none is active.  When a runtime is already
        active it is reused and left running.
    stoppers:
        Study-level early stopping (paper §6.1).
    batch_size:
        Max configs per ask/submit round (None = whole schedule at once,
        the paper's grid-search behaviour; set to the cluster parallelism
        for adaptive algorithms).
    visualize:
        Add per-experiment ``visualisation`` tasks and a final ``plot``
        task, reproducing the Fig. 3 graph shape.
    study_name:
        Name recorded on the study.
    callbacks:
        :class:`StudyCallback` observers notified of trial transitions
        (e.g. :class:`ProgressPrinter` for a live textual dashboard).
    resume_from:
        Checkpoint directory (or ``journal.jsonl``) of a crashed run.
        Only honoured when this runner starts its own runtime: the
        journal is replayed and experiment tasks whose outputs were
        checkpointed resolve instantly instead of re-training.  Compose
        with a ``study.json`` warm start
        (:func:`repro.hpo.persistence.compose_resume`) to also skip
        fully-recorded trials.
    stage_plan:
        Decompose each trial into a *prepare → train block → final*
        chain of ``cacheable`` stage tasks (see :mod:`repro.hpo.stages`)
        instead of one monolithic ``experiment`` task.  With the
        runtime's reuse cache on, trials sharing a hyperparameter prefix
        resolve their common blocks from the cache.  Staged trials are
        not preemptible and ignore ``target_accuracy``; the configured
        ``objective`` is superseded by the plan's staged bodies.
    """

    def __init__(
        self,
        algorithm: Union[str, SearchAlgorithm],
        space: Optional[SearchSpace] = None,
        objective: Objective = train_experiment,
        constraint: Optional[ResourceConstraint] = None,
        runtime_config: Optional[RuntimeConfig] = None,
        stoppers: Optional[Sequence[StudyStopper]] = None,
        batch_size: Optional[int] = None,
        visualize: bool = False,
        study_name: str = "hpo-study",
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        callbacks: Optional[Sequence[StudyCallback]] = None,
        resume_from: Optional[str] = None,
        max_trial_retries: Optional[int] = None,
        stage_plan: Optional[StagePlan] = None,
    ):
        self.algorithm = get_algorithm(
            algorithm, space, **(algorithm_kwargs or {})
        ) if isinstance(algorithm, str) else algorithm
        self.objective = objective
        self.constraint = constraint or ResourceConstraint(cpu_units=1)
        self.runtime_config = runtime_config
        self.stoppers = list(stoppers or [])
        self.batch_size = batch_size
        self.visualize = visualize
        self.study_name = study_name
        self.callbacks = list(callbacks or [])
        self.resume_from = resume_from
        #: Per-study override of ``RuntimeConfig.max_trial_retries`` —
        #: lets service tenants carry their own resilience budget over a
        #: shared runtime (None = inherit the runtime's knob).
        self.max_trial_retries = max_trial_retries
        self.stop_reason: Optional[str] = None
        #: trial_id -> resubmissions so far (fail-soft trial retries).
        self._trial_retries: Dict[int, int] = {}
        #: Cooperative-preemption accounting, surfaced as
        #: ``study.metadata["preemption"]`` when anything happened.
        self._preempt_stats = {
            "suspended": 0,
            "resumed": 0,
            "spills": 0,
            "epochs_lost": 0,
            "rung_promotions": 0,
        }
        #: preempt key -> epoch cursor of the last suspend spill, to
        #: measure epochs lost when the resumption reports where it
        #: actually restarted (0 on the happy path).
        self._suspend_cursors: Dict[str, int] = {}
        #: trial_id -> assigned preempt key, and config fingerprint ->
        #: occurrence count backing the assignment (see ``_preempt_key``).
        self._preempt_keys: Dict[int, str] = {}
        self._preempt_occ: Dict[str, int] = {}

        self._experiment_def = TaskDefinition(
            func=self.objective,
            name="experiment",
            returns=object,
            n_returns=1,
            constraint=self.constraint,
        )
        self._viz_def = TaskDefinition(
            func=summarise_result,
            name="visualisation",
            returns=object,
            n_returns=1,
            constraint=ResourceConstraint(cpu_units=1),
        )
        self._plot_def = TaskDefinition(
            func=combine_plots,
            name="plot",
            returns=object,
            n_returns=1,
            constraint=ResourceConstraint(cpu_units=1),
        )
        self.stage_plan = stage_plan
        self._warned_target = False
        if stage_plan is not None:
            train_body, final_body = STAGE_BODIES[stage_plan.objective]
            light = ResourceConstraint(cpu_units=1)
            self._stage_prepare_def = TaskDefinition(
                func=stage_prepare, name="stage_prepare", returns=object,
                n_returns=1, constraint=light, cacheable=True,
            )
            self._stage_train_def = TaskDefinition(
                func=train_body, name="stage_train", returns=object,
                n_returns=1, constraint=self.constraint, cacheable=True,
            )
            self._stage_final_def = TaskDefinition(
                func=final_body, name="stage_final", returns=object,
                n_returns=1, constraint=light, cacheable=True,
            )

    # ------------------------------------------------------------------
    def run(self) -> Study:
        """Execute the study; returns it with all trial results filled."""
        runtime = current_runtime()
        owns_runtime = runtime is None
        if owns_runtime:
            runtime = COMPSsRuntime(
                self.runtime_config or RuntimeConfig(),
                resume_from=self.resume_from,
            ).start()
        study = Study(self.study_name)
        study.metadata.update(
            {
                "algorithm": self.algorithm.name,
                "cluster": runtime.cluster.name,
                "constraint": self.constraint.describe(),
            }
        )
        stopwatch = Stopwatch().start()
        for cb in self.callbacks:
            cb.on_study_begin(study)
        stopped = False
        outstanding: List[Tuple[Trial, Any]] = []
        viz_futures: List[Any] = []
        try:
            while True:
                if not stopped:
                    batch = self.algorithm.ask(self.batch_size)
                    for config in batch:
                        trial = study.new_trial(config)
                        trial.status = TrialStatus.RUNNING
                        fut = self._submit_trial(runtime, trial)
                        outstanding.append((trial, fut))
                        for cb in self.callbacks:
                            cb.on_trial_start(study, trial)
                        if self.visualize:
                            viz_futures.append(
                                runtime.submit(self._viz_def, (fut,), {})
                            )
                if not outstanding:
                    if stopped or self.algorithm.is_exhausted:
                        break
                    if not batch:
                        # Algorithm has nothing to offer and nothing runs:
                        # avoid spinning forever.
                        _log.warning(
                            "algorithm %s returned no configs while not "
                            "exhausted; stopping", self.algorithm.name,
                        )
                        break
                    continue
                trial, fut = outstanding.pop(0)
                retry_fut = self._resolve(runtime, study, trial, fut)
                if retry_fut is not None:
                    # Fail-soft: the trial's task exhausted its task-level
                    # retry budget, but the study resubmits it rather than
                    # losing the trial (up to max_trial_retries times).
                    outstanding.append((trial, retry_fut))
                    continue
                self.algorithm.tell(trial)
                self._drain_rung_events(runtime)
                for cb in self.callbacks:
                    cb.on_trial_complete(study, trial)
                if not stopped and trial.status == TrialStatus.COMPLETED:
                    for stopper in self.stoppers:
                        if stopper.should_stop(study, trial):
                            stopped = True
                            self.stop_reason = stopper.reason()
                            _log.info("study stopped early: %s", self.stop_reason)
                            for t, _ in outstanding:
                                t.status = TrialStatus.PRUNED
                            outstanding.clear()
                            break
            if self.visualize and viz_futures and not stopped:
                plot_fut = runtime.submit(self._plot_def, (viz_futures,), {})
                study.metadata["plot"] = runtime.wait_on(plot_fut)
            study.total_duration_s = (
                runtime.virtual_time
                if runtime.virtual_time is not None
                else stopwatch.elapsed
            )
            study.metadata["stopped_early"] = stopped
            if self.stop_reason:
                study.metadata["stop_reason"] = self.stop_reason
            resume = runtime.resume_stats()
            if resume is not None:
                # Crash resume: surface what the journal replay recovered
                # (restored counts include this session's instant restores).
                # Session-aware: in service mode this summarises the
                # calling study's own recovery, not the whole daemon's.
                study.metadata["resume"] = resume
            resilience_counts = runtime.resilience.counts()
            if resilience_counts:
                # Worker crashes, hard kills, poison quarantines, retries,
                # speculation — shown by `repro report` alongside the rest
                # of the study metadata.
                study.metadata["resilience_events"] = resilience_counts
            if runtime.integrity is not None:
                # Sealed/verified/repaired counters from the end-to-end
                # data-integrity layer (config.verify_outputs).
                study.metadata["integrity"] = runtime.integrity.stats()
            churn = runtime.analysis().churn()
            if any(churn.values()):
                # Preemptions, drains, rejoins, starvation — the elastic
                # view of the run (absent on a static, healthy cluster).
                study.metadata["churn"] = churn
            dispatch = runtime.analysis().dispatch()
            if dispatch["rounds"]:
                # Batched-scheduling observability: rounds vs placements
                # (avg_batch_size ≫ 1 means batching is engaged), class
                # wakes and blocked-class skips.
                study.metadata["dispatch"] = dispatch
            if any(self._preempt_stats.values()):
                # Warm suspensions, resumes, spills, epochs lost to cold
                # restarts and async-ASHA rung promotions.
                study.metadata["preemption"] = dict(self._preempt_stats)
            if runtime.reuse is not None:
                # Verified hits, misses, corruption detections, evictions
                # and lease traffic from the cross-trial reuse cache.
                study.metadata["reuse"] = runtime.reuse.stats()
            for cb in self.callbacks:
                cb.on_study_end(study)
        finally:
            if owns_runtime:
                # If we pruned trials, abandon their tasks instead of
                # waiting for them.
                runtime.stop(wait=not stopped)
        return study

    # ------------------------------------------------------------------
    # Cooperative preemption
    # ------------------------------------------------------------------
    def _preempt_key(self, trial: Trial) -> str:
        """Stable spill identity for one trial (memoised per trial id).

        The ASHA lineage id wins when present, so a rung promotion
        warm-resumes its predecessor's pause spill.  Otherwise the key is
        *config-derived* — fingerprint plus occurrence among identical
        configs — never the trial id: trial-id-to-config pairing depends
        on thread timing, and since the key rides inside the submitted
        config it would otherwise destabilise the deterministic task keys
        a resumed session matches against its journal.  Same-config
        trials are interchangeable, so occurrence order among them is
        harmless exactly as it is for the task keyer's own counters.

        The study name prefixes every key: on a shared service runtime
        one :class:`PreemptionController` serves all tenants, and two
        studies drawing the same config (or the same ASHA lineage ids)
        must not alias each other's flags or registry entries.  The
        prefix is stable across daemon generations (it is the study id),
        so resumed sessions still find their spills.
        """
        assigned = self._preempt_keys.get(trial.trial_id)
        if assigned is not None:
            return assigned
        asha_id = trial.config.get("_asha_id")
        if asha_id:
            key = f"{self.study_name}:{asha_id}"
        else:
            fingerprint = hashlib.sha1(
                repr(
                    sorted((k, repr(v)) for k, v in trial.config.items())
                ).encode("utf-8")
            ).hexdigest()[:12]
            occurrence = self._preempt_occ.get(fingerprint, 0)
            self._preempt_occ[fingerprint] = occurrence + 1
            key = f"{self.study_name}:{fingerprint}-{occurrence}"
        self._preempt_keys[trial.trial_id] = key
        return key

    def _submit_trial(
        self, runtime: COMPSsRuntime, trial: Trial, resume_epoch: Optional[int] = None
    ) -> Any:
        """Submit (or resubmit) a trial's experiment task.

        When the runtime has a durable spill target, a preemption context
        is injected into the *submitted copy* of the config (the trial's
        own config stays clean) and the trial is registered with the
        runtime's :class:`PreemptionController`.  ``resume_epoch``
        extends the resumed task's deterministic key beyond the
        original's — the occurrence counter alone would also distinguish
        them, but the kwarg makes the lineage readable in the journal.
        """
        if self.stage_plan is not None:
            return self._submit_staged_trial(runtime, trial)
        task_config = dict(trial.config)
        spill_dir = runtime.preempt_spill_dir()
        if spill_dir is not None:
            ctx = PreemptContext(
                self._preempt_key(trial),
                spill_dir,
                every=runtime.config.preempt_checkpoint_epochs,
            )
            task_config[PREEMPT_CONFIG_KEY] = ctx.spec()
            kwargs = {} if resume_epoch is None else {"resume_epoch": int(resume_epoch)}
            fut = runtime.submit(self._experiment_def, (task_config,), kwargs)
            runtime.preemption.register(ctx, fut.invocation)
            return fut
        return runtime.submit(self._experiment_def, (task_config,), {})

    def _submit_staged_trial(self, runtime: COMPSsRuntime, trial: Trial) -> Any:
        """Submit one trial as its prepare → train-block → final chain.

        The returned future is the final stage's; intermediate futures
        stay internal (the graph carries the chain).  Trials sharing a
        config prefix submit identical stage invocations whose content
        keys collide — exactly what the reuse cache resolves.  No
        preemption context is injected: block boundaries already bound
        the work a lost node can take.
        """
        if trial.config.get("target_accuracy") is not None and (
            not self._warned_target
        ):
            self._warned_target = True
            _log.warning(
                "target_accuracy is ignored in staged mode (a data-dependent "
                "early exit would break stage purity)"
            )
        prep, params, epochs = split_config(trial.config)
        state = runtime.submit(self._stage_prepare_def, (prep,), {})
        for start, end in self.stage_plan.blocks(epochs):
            state = runtime.submit(
                self._stage_train_def, (state, params, start, end), {}
            )
        return runtime.submit(self._stage_final_def, (state, params), {})

    def _handle_suspension(
        self, runtime: COMPSsRuntime, study: Study, trial: Trial,
        fut: Any, payload: Mapping[str, Any],
    ) -> Any:
        """A trial spilled warm and stopped: requeue it as a resumable task."""
        key = self._preempt_key(trial)
        cursor = int(payload.get("epochs_done", 0))
        self._preempt_stats["suspended"] += 1
        self._preempt_stats["spills"] += 1
        self._suspend_cursors[key] = cursor
        runtime.resilience.record(
            runtime.executor.clock(), rsl.SUSPEND_SPILL,
            task_label=fut.invocation.label,
            node=fut.invocation.node or "",
            detail=f"key={key} epochs_done={cursor}",
        )
        # The guard hooks may raise (e.g. the service decided to suspend
        # the whole study) — then the spill stays on disk and the study's
        # eventual resumption warm-restores it.
        for cb in self.callbacks:
            cb.on_trial_suspended(study, trial)
        runtime.preemption.resume_trial(key)
        self._preempt_stats["resumed"] += 1
        runtime.resilience.record(
            runtime.executor.clock(), rsl.TRIAL_RESUMED,
            task_label=fut.invocation.label,
            detail=f"key={key} resume_epoch={cursor}",
        )
        _log.info(
            "trial %d suspended at epoch %d; resubmitting warm",
            trial.trial_id, cursor,
        )
        return self._submit_trial(runtime, trial, resume_epoch=cursor)

    def _account_resume(self, trial: Trial, payload: Mapping[str, Any]) -> None:
        """Fold a finished trial's resume cursor into epochs-lost stats."""
        key = self._preempt_key(trial)
        cursor = self._suspend_cursors.pop(key, None)
        if cursor is None:
            return
        resumed_from = int(payload.get("resumed_from", 0))
        self._preempt_stats["epochs_lost"] += max(0, cursor - resumed_from)

    def _drain_rung_events(self, runtime: COMPSsRuntime) -> None:
        """Record async-ASHA promotion decisions as resilience events."""
        pop = getattr(self.algorithm, "pop_events", None)
        if pop is None:
            return
        for ev in pop():
            self._preempt_stats["rung_promotions"] += 1
            runtime.resilience.record(
                runtime.executor.clock(), rsl.RUNG_PROMOTION,
                detail=(
                    f"id={ev.get('id')} rung={ev.get('from_rung')}->"
                    f"{ev.get('to_rung')} epochs={ev.get('epochs')} "
                    f"val_acc={ev.get('val_accuracy')}"
                ),
            )

    # ------------------------------------------------------------------
    def _resolve(
        self, runtime: COMPSsRuntime, study: Study, trial: Trial, fut: Any
    ) -> Optional[Any]:
        """Wait for one experiment future and fill the trial.

        Returns a replacement future when the trial is resubmitted —
        under ``RuntimeConfig.max_trial_retries`` (study-level fail-soft)
        or after a warm suspension — else ``None`` once the trial is
        terminally resolved.
        """
        try:
            payload = runtime.wait_on(fut)
        except TaskFailedError as exc:
            if isinstance(exc.cause, StudyAbandonedError):
                # The whole study was terminated out from under us
                # (drain, cancel, budget exhaustion): this is not a trial
                # failure to absorb — the run must stop here so the
                # service layer decides the study's terminal state.
                raise exc.cause from exc
            budget = (
                self.max_trial_retries
                if self.max_trial_retries is not None
                else runtime.config.max_trial_retries
            )
            retries = self._trial_retries.get(trial.trial_id, 0)
            if retries < budget:
                self._trial_retries[trial.trial_id] = retries + 1
                runtime.resilience.record(
                    runtime.executor.clock(),
                    rsl.TRIAL_RETRY,
                    task_label=fut.invocation.label,
                    detail=(
                        f"trial {trial.trial_id} resubmitted "
                        f"({retries + 1}/{budget})"
                    ),
                )
                _log.info(
                    "trial %d lost its task (%s); resubmitting (%d/%d)",
                    trial.trial_id, exc, retries + 1, budget,
                )
                # Re-inject the preemption context: if the lost task had
                # spilled warm before dying, the retry resumes from it.
                return self._submit_trial(runtime, trial)
            trial.status = TrialStatus.FAILED
            trial.error = str(exc)
            runtime.preemption.unregister(self._preempt_key(trial))
            return None
        invocation = fut.invocation
        if payload is None:
            # Simulated executor without execute_bodies: fabricate the
            # minimal result (timing experiments don't read accuracies).
            payload = {"val_accuracy": float("nan")}
        if isinstance(payload, Mapping) and payload.get(SUSPENDED_PAYLOAD_KEY):
            return self._handle_suspension(runtime, study, trial, fut, payload)
        if isinstance(payload, Mapping):
            self._account_resume(trial, payload)
        runtime.preemption.unregister(self._preempt_key(trial))
        result = TrialResult.from_mapping(payload)
        if result.node is None:
            result.node = invocation.node
        if invocation.start_time is not None and invocation.end_time is not None:
            result.duration_s = invocation.end_time - invocation.start_time
        trial.result = result
        trial.status = TrialStatus.COMPLETED
        return None
