"""JSON config-file handling (the paper's Listing 1).

"A JSON file containing all the hyperparameters and their values is
passed to this application at start" (§4).  :func:`load_search_space`
reads such a file into a :class:`~repro.hpo.space.SearchSpace`;
:func:`write_config_file` is the inverse (used by examples/tests).

Extended syntax beyond plain value lists (backwards compatible): a value
may be a dict describing a numeric range, e.g.::

    {"learning_rate": {"type": "real", "low": 1e-4, "high": 1e-1,
                       "log": true},
     "num_epochs":    {"type": "int", "low": 10, "high": 100},
     "optimizer":     ["Adam", "SGD", "RMSprop"]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from repro.hpo.space import Categorical, Constant, Hyperparameter, Integer, Real, SearchSpace

#: The exact search space of the paper's Listing 1.
PAPER_LISTING1: Dict[str, list] = {
    "optimizer": ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128],
}


def _param_from_spec(name: str, spec: Any) -> Hyperparameter:
    if isinstance(spec, Mapping):
        kind = str(spec.get("type", "")).lower()
        if kind in ("real", "float"):
            return Real(
                name, float(spec["low"]), float(spec["high"]),
                log=bool(spec.get("log", False)),
            )
        if kind in ("int", "integer"):
            return Integer(
                name, int(spec["low"]), int(spec["high"]),
                log=bool(spec.get("log", False)),
            )
        if kind in ("categorical", "choice"):
            return Categorical(name, list(spec["choices"]))
        if kind in ("constant", "fixed"):
            return Constant(name, spec["value"])
        raise ValueError(
            f"hyperparameter {name!r}: unknown spec type {spec.get('type')!r}"
        )
    if isinstance(spec, (list, tuple)):
        return Categorical(name, list(spec))
    return Constant(name, spec)


def parse_search_space(spec: Mapping[str, Any]) -> SearchSpace:
    """Parse an in-memory Listing-1-style mapping into a SearchSpace."""
    return SearchSpace([_param_from_spec(k, v) for k, v in spec.items()])


def load_search_space(path: Union[str, Path]) -> SearchSpace:
    """Load a JSON config file into a SearchSpace.

    Raises ``ValueError`` on malformed files with the offending content
    in the message.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"config file {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, Mapping):
        raise ValueError(
            f"config file {path} must contain a JSON object, got "
            f"{type(raw).__name__}"
        )
    if not raw:
        raise ValueError(f"config file {path} defines no hyperparameters")
    return parse_search_space(raw)


def write_config_file(
    spec: Mapping[str, Any], path: Union[str, Path]
) -> Path:
    """Write a Listing-1-style mapping as a JSON config file."""
    path = Path(path)
    path.write_text(json.dumps(dict(spec), indent=2) + "\n", encoding="utf-8")
    return path


def paper_search_space() -> SearchSpace:
    """The paper's exact 3×3×3 search space (27 configs)."""
    return parse_search_space(PAPER_LISTING1)
