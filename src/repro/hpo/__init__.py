"""Hyperparameter optimisation over the PyCOMPSs-like runtime.

This is the paper's contribution: search spaces from Listing-1 JSON
files, search algorithms (grid and random from the paper; Bayesian, TPE
and Hyperband from its future-work list), the task-based runner
(:class:`~repro.hpo.runner.PyCOMPSsRunner`), study-level early stopping,
visualisation, and the sequential / process-pool baselines.
"""

from repro.hpo.space import (
    SearchSpace,
    Categorical,
    Integer,
    Real,
    Constant,
    Hyperparameter,
)
from repro.hpo.config_file import (
    load_search_space,
    parse_search_space,
    write_config_file,
    paper_search_space,
    PAPER_LISTING1,
)
from repro.hpo.trial import Study, Trial, TrialResult, TrialStatus
from repro.hpo.algorithms import (
    SearchAlgorithm,
    GridSearch,
    RandomSearch,
    BayesianOptimization,
    TPESearch,
    HyperbandSearch,
    SuccessiveHalving,
    EvolutionarySearch,
    get_algorithm,
)
from repro.hpo.report import (
    hyperparameter_effects,
    render_effects,
    render_report,
    save_report,
)
from repro.hpo.persistence import (
    compose_resume,
    load_study,
    merge_studies,
    resume_algorithm,
)
from repro.hpo.early_stopping import (
    StudyStopper,
    TargetAccuracyStopper,
    MaxTrialsStopper,
    PlateauStopper,
)
from repro.hpo.objective import train_experiment, fast_mock_objective
from repro.hpo.runner import (
    ProgressPrinter,
    PyCOMPSsRunner,
    StudyCallback,
    combine_plots,
    summarise_result,
)
from repro.hpo.baselines import (
    SequentialRunner,
    ProcessPoolRunner,
    simulate_pool_makespan,
)
from repro.hpo.visualization import (
    accuracy_curves,
    config_heatmap,
    final_accuracy_bars,
    export_history_csv,
    time_vs_cores_chart,
)

__all__ = [
    "SearchSpace",
    "Categorical",
    "Integer",
    "Real",
    "Constant",
    "Hyperparameter",
    "load_search_space",
    "parse_search_space",
    "write_config_file",
    "paper_search_space",
    "PAPER_LISTING1",
    "Study",
    "Trial",
    "TrialResult",
    "TrialStatus",
    "SearchAlgorithm",
    "GridSearch",
    "RandomSearch",
    "BayesianOptimization",
    "TPESearch",
    "HyperbandSearch",
    "SuccessiveHalving",
    "EvolutionarySearch",
    "get_algorithm",
    "hyperparameter_effects",
    "render_effects",
    "render_report",
    "save_report",
    "compose_resume",
    "load_study",
    "merge_studies",
    "resume_algorithm",
    "StudyStopper",
    "TargetAccuracyStopper",
    "MaxTrialsStopper",
    "PlateauStopper",
    "train_experiment",
    "fast_mock_objective",
    "PyCOMPSsRunner",
    "StudyCallback",
    "ProgressPrinter",
    "summarise_result",
    "combine_plots",
    "SequentialRunner",
    "ProcessPoolRunner",
    "simulate_pool_makespan",
    "accuracy_curves",
    "config_heatmap",
    "final_accuracy_bars",
    "export_history_csv",
    "time_vs_cores_chart",
]
