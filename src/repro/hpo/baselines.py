"""Baseline HPO runners — the tool landscape of the paper's §2.2.

* :class:`SequentialRunner` — "traditionally, one would just launch one
  training after the other" (§4): a plain Python loop, the no-PyCOMPSs
  baseline.
* :class:`ProcessPoolRunner` — the scikit-learn-style ``n_jobs`` class of
  tools: single-node parallelism via a process pool, no multi-node
  support (§2.2's criticism of scikit-learn).

Both speak the same Study protocol as the PyCOMPSs runner and accept an
optional ``duration_model`` so benchmarks can compare *modelled* times at
supercomputer scale: the sequential baseline's virtual time is the sum of
task durations; the pool baseline's is a greedy n-worker makespan.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.hpo.algorithms import SearchAlgorithm, get_algorithm
from repro.hpo.early_stopping import StudyStopper
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Study, TrialResult, TrialStatus
from repro.hpo.objective import train_experiment
from repro.util.timing import Stopwatch
from repro.util.validation import check_positive

Objective = Callable[[Mapping[str, Any]], Mapping[str, Any]]
DurationModel = Callable[[Mapping[str, Any]], float]


def simulate_pool_makespan(durations: Sequence[float], n_jobs: int) -> float:
    """Greedy earliest-available-worker makespan for a task list.

    Models how a process pool executes ``durations`` in submission order
    on ``n_jobs`` workers.
    """
    check_positive("n_jobs", n_jobs)
    workers = [0.0] * int(n_jobs)
    for d in durations:
        if d < 0:
            raise ValueError(f"negative duration {d}")
        i = min(range(len(workers)), key=workers.__getitem__)
        workers[i] += d
    return max(workers) if durations else 0.0


class _BaselineBase:
    """Shared ask/tell driving loop for the baselines."""

    def __init__(
        self,
        algorithm: Union[str, SearchAlgorithm],
        space: Optional[SearchSpace] = None,
        objective: Objective = train_experiment,
        stoppers: Optional[Sequence[StudyStopper]] = None,
        duration_model: Optional[DurationModel] = None,
        study_name: str = "baseline-study",
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
    ):
        self.algorithm = get_algorithm(
            algorithm, space, **(algorithm_kwargs or {})
        ) if isinstance(algorithm, str) else algorithm
        self.objective = objective
        self.stoppers = list(stoppers or [])
        self.duration_model = duration_model
        self.study_name = study_name
        self.stop_reason: Optional[str] = None

    def _apply_result(self, study: Study, trial, payload, duration: float) -> bool:
        """Fill the trial and evaluate stoppers; returns True to stop."""
        result = TrialResult.from_mapping(payload)
        result.duration_s = duration
        trial.result = result
        trial.status = TrialStatus.COMPLETED
        self.algorithm.tell(trial)
        for stopper in self.stoppers:
            if stopper.should_stop(study, trial):
                self.stop_reason = stopper.reason()
                return True
        return False


class SequentialRunner(_BaselineBase):
    """One training after the other in the driver process."""

    def run(self) -> Study:
        """Execute the study sequentially; returns it."""
        study = Study(self.study_name)
        study.metadata["algorithm"] = self.algorithm.name
        study.metadata["runner"] = "sequential"
        stopwatch = Stopwatch().start()
        virtual = 0.0
        stopped = False
        while not stopped:
            batch = self.algorithm.ask(1)
            if not batch:
                if self.algorithm.is_exhausted:
                    break
                break
            config = batch[0]
            trial = study.new_trial(config)
            trial.status = TrialStatus.RUNNING
            sw = Stopwatch().start()
            try:
                payload = self.objective(config)
            except Exception as exc:  # noqa: BLE001 - trial failure is data
                trial.status = TrialStatus.FAILED
                trial.error = repr(exc)
                self.algorithm.tell(trial)
                continue
            duration = (
                self.duration_model(config)
                if self.duration_model is not None
                else sw.stop().elapsed
            )
            virtual += duration
            stopped = self._apply_result(study, trial, payload, duration)
        study.total_duration_s = (
            virtual if self.duration_model is not None else stopwatch.elapsed
        )
        study.metadata["stopped_early"] = stopped
        if self.stop_reason:
            study.metadata["stop_reason"] = self.stop_reason
        return study


class ProcessPoolRunner(_BaselineBase):
    """Single-node pool parallelism (the ``n_jobs`` tools of §2.2).

    Parameters
    ----------
    n_jobs:
        Pool width.  With a ``duration_model`` the study's total duration
        is the modelled pool makespan instead of wall time.
    use_processes:
        Use real OS processes (objective must be picklable); otherwise a
        simple in-driver loop is used for the evaluation while keeping
        the modelled-parallel timing (useful in sandboxed test runs).
    """

    def __init__(self, *args, n_jobs: int = 4, use_processes: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        check_positive("n_jobs", n_jobs)
        self.n_jobs = int(n_jobs)
        self.use_processes = use_processes

    def run(self) -> Study:
        """Execute the study on the pool; returns it."""
        study = Study(self.study_name)
        study.metadata["algorithm"] = self.algorithm.name
        study.metadata["runner"] = f"pool-{self.n_jobs}"
        stopwatch = Stopwatch().start()
        durations: List[float] = []
        stopped = False
        while not stopped:
            batch = self.algorithm.ask(self.n_jobs)
            if not batch:
                if self.algorithm.is_exhausted:
                    break
                break
            trials = [study.new_trial(c) for c in batch]
            for t in trials:
                t.status = TrialStatus.RUNNING
            payloads = self._evaluate_batch(batch)
            for trial, config, payload in zip(trials, batch, payloads):
                if isinstance(payload, Exception):
                    trial.status = TrialStatus.FAILED
                    trial.error = repr(payload)
                    self.algorithm.tell(trial)
                    continue
                duration = (
                    self.duration_model(config)
                    if self.duration_model is not None
                    else float(payload.get("duration_s", 0.0))
                )
                durations.append(duration)
                if self._apply_result(study, trial, payload, duration) and not stopped:
                    stopped = True
        if self.duration_model is not None:
            study.total_duration_s = simulate_pool_makespan(durations, self.n_jobs)
        else:
            study.total_duration_s = stopwatch.elapsed
        study.metadata["stopped_early"] = stopped
        if self.stop_reason:
            study.metadata["stop_reason"] = self.stop_reason
        return study

    def _evaluate_batch(self, configs: List[Mapping[str, Any]]) -> List[Any]:
        if self.use_processes:
            with multiprocessing.Pool(processes=self.n_jobs) as pool:
                results = []
                async_results = [
                    pool.apply_async(self.objective, (c,)) for c in configs
                ]
                for ar in async_results:
                    try:
                        results.append(ar.get())
                    except Exception as exc:  # noqa: BLE001 - collected as data
                        results.append(exc)
                return results
        out: List[Any] = []
        for c in configs:
            try:
                out.append(self.objective(c))
            except Exception as exc:  # noqa: BLE001 - collected as data
                out.append(exc)
        return out
