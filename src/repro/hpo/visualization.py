"""Study visualisation — the Figs. 7/8 dashboards as ASCII + CSV.

"When all the tasks are done, we plot the results [on] the same figure
for easier comparison" (§6.2).  matplotlib is unavailable offline, so
:func:`accuracy_curves` renders the per-config validation-accuracy-vs-
epoch curves as one ASCII chart, and :func:`export_history_csv` writes
the raw series for external plotting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.hpo.trial import Study
from repro.util.ascii_plot import bar_chart, line_chart


def accuracy_curves(
    study: Study,
    metric: str = "val_accuracy",
    max_series: int = 12,
    width: int = 72,
    height: int = 20,
) -> str:
    """ASCII chart of ``metric`` vs epoch for each trial (Figs. 7/8).

    With more than ``max_series`` trials, the best ones are shown and the
    rest summarised in the caption.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    skipped = 0
    trials = sorted(
        study.completed(), key=lambda t: -t.val_accuracy
    )
    for trial in trials:
        history = trial.result.history if trial.result else {}
        values = history.get(metric)
        if not values:
            skipped += 1
            continue
        if len(series) >= max_series:
            skipped += 1
            continue
        epochs = history.get("epochs", list(range(len(values))))
        # Prefix with the trial id so identical configs stay distinct series.
        series[f"#{trial.trial_id} {trial.describe_config()}"] = list(
            zip([float(e) for e in epochs], [float(v) for v in values])
        )
    chart = line_chart(
        series,
        width=width,
        height=height,
        title=f"{study.name}: {metric} vs epoch ({len(series)} configs shown)",
        x_label="epoch",
        y_label=metric,
    )
    if skipped:
        chart += f"\n  ({skipped} additional trials not shown)"
    return chart


def final_accuracy_bars(study: Study, width: int = 50) -> str:
    """Bar chart of each trial's final validation accuracy."""
    values = {
        t.describe_config(): t.val_accuracy
        for t in sorted(study.completed(), key=lambda t: -t.val_accuracy)
    }
    return bar_chart(values, width=width, title=f"{study.name}: final val_accuracy")


def export_history_csv(study: Study, path: Union[str, Path]) -> Path:
    """Write long-form per-epoch history: trial, config, epoch, metrics."""
    path = Path(path)
    lines = ["trial_id,config,epoch,metric,value"]
    for trial in study.trials:
        if trial.result is None:
            continue
        config = trial.describe_config().replace(",", ";")
        history = trial.result.history
        epochs = history.get("epochs", [])
        for metric, values in history.items():
            if metric == "epochs":
                continue
            for epoch, value in zip(epochs, values):
                lines.append(
                    f"{trial.trial_id},{config},{epoch},{metric},{value:.6f}"
                )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def config_heatmap(
    study: Study,
    x_key: str,
    y_key: str,
    cell_width: int = 7,
) -> str:
    """Text heatmap of mean validation accuracy over two config axes.

    The drill-down companion to the Fig. 7/8 curves: e.g.
    ``config_heatmap(study, "num_epochs", "optimizer")`` shows which
    optimiser×epochs cells of the Listing-1 grid pay off.
    """
    cells: Dict[tuple, List[float]] = {}
    x_values: List = []
    y_values: List = []
    for trial in study.completed():
        if x_key not in trial.config or y_key not in trial.config:
            continue
        x, y = trial.config[x_key], trial.config[y_key]
        if x not in x_values:
            x_values.append(x)
        if y not in y_values:
            y_values.append(y)
        cells.setdefault((x, y), []).append(trial.val_accuracy)
    if not cells:
        return f"(no completed trials with both {x_key!r} and {y_key!r})"
    label_w = max(len(str(y)) for y in y_values)
    header = " " * (label_w + 1) + "".join(
        f"{str(x):>{cell_width}}" for x in x_values
    )
    lines = [f"mean val_accuracy by {y_key} (rows) × {x_key} (cols)", header]
    for y in y_values:
        row = [f"{str(y):>{label_w}} "]
        for x in x_values:
            values = cells.get((x, y))
            row.append(
                f"{sum(values) / len(values):>{cell_width}.3f}"
                if values
                else " " * (cell_width - 1) + "-"
            )
        lines.append("".join(row))
    return "\n".join(lines)


def time_vs_cores_chart(
    series: Mapping[str, Sequence[Tuple[int, float]]],
    width: int = 64,
    height: int = 18,
) -> str:
    """ASCII rendering of the Fig. 9 experiment: HPO time vs cores/task.

    ``series`` maps a configuration name (e.g. ``"1 node"``, ``"2 nodes"``,
    ``"GPU node"``) to ``(cores_per_task, total_minutes)`` points.
    """
    as_float = {
        name: [(float(c), float(t)) for c, t in pts] for name, pts in series.items()
    }
    return line_chart(
        as_float,
        width=width,
        height=height,
        title="HPO time vs cores per task (Fig. 9)",
        x_label="cores per task",
        y_label="time (min)",
    )
