"""Study-level early stopping (paper §6.1).

"For such task, early stopping is of paramount significance as it makes
no sense to continue with other tasks after one has achieved the desired
accuracy."  A :class:`StudyStopper` is consulted after every finished
trial; when it fires, the runner stops waiting for / launching further
trials and marks them pruned.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.hpo.trial import Study, Trial
from repro.util.validation import check_in_range, check_positive


class StudyStopper(abc.ABC):
    """Decides whether the whole HPO study should stop early."""

    @abc.abstractmethod
    def should_stop(self, study: Study, last_trial: Trial) -> bool:
        """Called after every completed trial."""

    def reason(self) -> str:
        """Human-readable explanation once fired."""
        return type(self).__name__


class TargetAccuracyStopper(StudyStopper):
    """Stop once any trial reaches ``target`` validation accuracy."""

    def __init__(self, target: float = 0.9):
        check_in_range("target", target, 0.0, 1.0)
        self.target = float(target)
        self.triggered_by: Optional[Trial] = None

    def should_stop(self, study: Study, last_trial: Trial) -> bool:
        if last_trial.result and last_trial.val_accuracy >= self.target:
            self.triggered_by = last_trial
            return True
        return False

    def reason(self) -> str:
        if self.triggered_by is None:
            return f"target accuracy {self.target} (not yet reached)"
        return (
            f"trial {self.triggered_by.trial_id} reached "
            f"{self.triggered_by.val_accuracy:.3f} >= target {self.target}"
        )


class MaxTrialsStopper(StudyStopper):
    """Stop after ``max_trials`` completed trials."""

    def __init__(self, max_trials: int):
        check_positive("max_trials", max_trials)
        self.max_trials = int(max_trials)

    def should_stop(self, study: Study, last_trial: Trial) -> bool:
        return len(study.completed()) >= self.max_trials

    def reason(self) -> str:
        return f"reached {self.max_trials} completed trials"


class PlateauStopper(StudyStopper):
    """Stop when the best accuracy hasn't improved for ``patience`` trials."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-4):
        check_positive("patience", patience)
        self.patience = int(patience)
        self.min_delta = abs(float(min_delta))
        self._best = -float("inf")
        self._stale = 0

    def should_stop(self, study: Study, last_trial: Trial) -> bool:
        if last_trial.result is None:
            return False
        acc = last_trial.val_accuracy
        if acc > self._best + self.min_delta:
            self._best = acc
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience

    def reason(self) -> str:
        return (
            f"no improvement > {self.min_delta} for {self.patience} trials "
            f"(best {self._best:.3f})"
        )
