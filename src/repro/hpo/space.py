"""Hyperparameter search spaces.

The paper drives HPO from a JSON file listing each hyperparameter's
values (Listing 1)::

    {"optimizer": ["Adam", "SGD", "RMSprop"],
     "num_epochs": [20, 50, 100],
     "batch_size": [32, 64, 128]}

That maps to a :class:`SearchSpace` of :class:`Categorical` parameters.
For the future-work algorithms (random/Bayesian/TPE) the space also
supports numeric ranges (:class:`Integer`, :class:`Real`, optionally
log-scaled), which is how those algorithms "search over any search space
by simply calling a function" (paper §7).
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.util.seeding import rng_from

class Hyperparameter(abc.ABC):
    """One dimension of the search space."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("hyperparameter name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value."""

    @abc.abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a legal value of this parameter."""

    @property
    def grid_values(self) -> Optional[List[Any]]:
        """Finite value list for grid search, or None if continuous."""
        return None

    # Numeric embedding for model-based algorithms (BO/TPE) -------------
    @abc.abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a value into [0, 1] (categorical: index / (n-1))."""

    @abc.abstractmethod
    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (clipped to the legal range)."""


class Categorical(Hyperparameter):
    """A finite, ordered set of choices."""

    def __init__(self, name: str, choices: Sequence[Any]):
        super().__init__(name)
        choices = list(choices)
        if not choices:
            raise ValueError(f"{name}: choices must be non-empty")
        if len(set(map(repr, choices))) != len(choices):
            raise ValueError(f"{name}: duplicate choices {choices!r}")
        self.choices = choices

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def contains(self, value: Any) -> bool:
        return value in self.choices

    @property
    def grid_values(self) -> List[Any]:
        return list(self.choices)

    def to_unit(self, value: Any) -> float:
        idx = self.choices.index(value)
        if len(self.choices) == 1:
            return 0.0
        return idx / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        idx = int(round(float(np.clip(u, 0.0, 1.0)) * (len(self.choices) - 1)))
        return self.choices[idx]

    def __repr__(self) -> str:
        return f"Categorical({self.name!r}, {self.choices!r})"


class Integer(Hyperparameter):
    """An integer range [low, high] (inclusive), optionally log-scaled."""

    def __init__(self, name: str, low: int, high: int, log: bool = False):
        super().__init__(name)
        if low > high:
            raise ValueError(f"{name}: low ({low}) > high ({high})")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low, self.high, self.log = int(low), int(high), bool(log)

    def sample(self, rng: np.random.Generator) -> int:
        return self.from_unit(float(rng.random()))

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and self.low <= value <= self.high

    def to_unit(self, value: Any) -> float:
        if self.high == self.low:
            return 0.0
        if self.log:
            return float(
                (np.log(value) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = float(np.clip(u, 0.0, 1.0))
        if self.log:
            raw = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            raw = self.low + u * (self.high - self.low)
        return int(np.clip(round(raw), self.low, self.high))

    def __repr__(self) -> str:
        return f"Integer({self.name!r}, {self.low}, {self.high}, log={self.log})"


class Real(Hyperparameter):
    """A float range [low, high], optionally log-scaled."""

    def __init__(self, name: str, low: float, high: float, log: bool = False):
        super().__init__(name)
        if low >= high:
            raise ValueError(f"{name}: low ({low}) >= high ({high})")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low, self.high, self.log = float(low), float(high), bool(log)

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(float(rng.random()))

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float, np.floating)) and (
            self.low <= float(value) <= self.high
        )

    def to_unit(self, value: Any) -> float:
        if self.log:
            return float(
                (np.log(value) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = float(np.clip(u, 0.0, 1.0))
        if self.log:
            value = float(
                np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
            )
        else:
            value = self.low + u * (self.high - self.low)
        # exp/log roundtrips can overshoot the bounds by 1 ulp; clamp.
        return float(min(max(value, self.low), self.high))

    def __repr__(self) -> str:
        return f"Real({self.name!r}, {self.low}, {self.high}, log={self.log})"


class Constant(Hyperparameter):
    """A fixed value carried through every config (e.g. dataset name)."""

    def __init__(self, name: str, value: Any):
        super().__init__(name)
        self.value = value

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def contains(self, value: Any) -> bool:
        return value == self.value

    @property
    def grid_values(self) -> List[Any]:
        return [self.value]

    def to_unit(self, value: Any) -> float:
        return 0.0

    def from_unit(self, u: float) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.name!r}, {self.value!r})"


class SearchSpace:
    """An ordered collection of hyperparameters.

    Construct directly from parameters or from a Listing-1-style dict via
    :meth:`from_dict`.
    """

    def __init__(self, params: Sequence[Hyperparameter]):
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate hyperparameter names: {names}")
        self.params: List[Hyperparameter] = list(params)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "SearchSpace":
        """Build a space from the paper's JSON-config structure.

        Lists become :class:`Categorical`; scalars become
        :class:`Constant`; existing :class:`Hyperparameter` objects pass
        through.
        """
        params: List[Hyperparameter] = []
        for name, value in spec.items():
            if isinstance(value, Hyperparameter):
                params.append(value)
            elif isinstance(value, (list, tuple)):
                params.append(Categorical(name, list(value)))
            else:
                params.append(Constant(name, value))
        return cls(params)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.params)

    def __iter__(self) -> Iterator[Hyperparameter]:
        return iter(self.params)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.params]

    def param(self, name: str) -> Hyperparameter:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no hyperparameter named {name!r}")

    @property
    def is_finite(self) -> bool:
        """Whether an exhaustive grid exists (all params discrete)."""
        return all(p.grid_values is not None for p in self.params)

    @property
    def grid_size(self) -> int:
        """Cardinality of the full grid (raises on continuous spaces)."""
        if not self.is_finite:
            raise ValueError("space has continuous parameters; no finite grid")
        size = 1
        for p in self.params:
            size *= len(p.grid_values)  # type: ignore[arg-type]
        return size

    def grid(self) -> Iterator[Dict[str, Any]]:
        """Iterate all configs in deterministic (itertools.product) order.

        This is the exhaustive grid of the paper: "27 different
        experiments are created" from 3×3×3 (Fig. 5).
        """
        if not self.is_finite:
            raise ValueError("space has continuous parameters; no finite grid")
        value_lists = [p.grid_values for p in self.params]
        for combo in itertools.product(*value_lists):  # type: ignore[arg-type]
            yield dict(zip(self.names, combo))

    def sample(self, rng_or_seed=0) -> Dict[str, Any]:
        """Draw one random config (random search / BO init)."""
        rng = rng_from(rng_or_seed) if not isinstance(
            rng_or_seed, np.random.Generator
        ) else rng_or_seed
        return {p.name: p.sample(rng) for p in self.params}

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ValueError unless ``config`` assigns a legal value to
        every hyperparameter (extra keys are allowed and ignored)."""
        for p in self.params:
            if p.name not in config:
                raise ValueError(f"config missing hyperparameter {p.name!r}")
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"config value {config[p.name]!r} is not legal for {p!r}"
                )

    # Numeric embedding for model-based algorithms ----------------------
    def to_unit_vector(self, config: Mapping[str, Any]) -> np.ndarray:
        """Embed a config in the unit hypercube (one axis per param)."""
        return np.array([p.to_unit(config[p.name]) for p in self.params])

    def from_unit_vector(self, u: np.ndarray) -> Dict[str, Any]:
        """Decode a unit-hypercube point into a config."""
        if len(u) != len(self.params):
            raise ValueError(f"expected {len(self.params)} dims, got {len(u)}")
        return {p.name: p.from_unit(float(v)) for p, v in zip(self.params, u)}

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.params)
        return f"SearchSpace([{inner}])"
