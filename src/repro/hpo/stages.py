"""Stage-decomposed objectives: trials as chains of cacheable tasks.

The monolithic ``experiment`` task (paper Listing 2) trains one config
end to end, so two configs that differ only in ``num_epochs`` repeat
every shared epoch.  This module splits a trial into a *prepare → train
block → … → final* pipeline whose stages are declared ``cacheable``:
the runtime keys each stage by a namespace-free content hash of its
definition and arguments (futures digest as their producer's content
key, so the hash pins the whole upstream chain), and the
:class:`~repro.runtime.reuse.ReuseCache` resolves identical prefixes
across trials — and across studies and ``repro serve`` tenants — from
disk instead of recomputing them.

Determinism contract: every stage here is a pure function of its
arguments.  In particular the mock training curve is *cumulative* —
the accuracy after epoch ``e`` depends only on the hyperparameters and
``e``, never on the trial's total epoch budget (unlike
:func:`~repro.hpo.objective.fast_mock_objective`, whose gain term reads
the total) — otherwise a 4-epoch prefix computed under a 12-epoch trial
could not be reused verbatim by an 8-epoch sibling.

Staged trials are not preemptible (the block boundaries already bound
lost work to one block) and ignore ``target_accuracy`` (a data-dependent
early exit would make a stage's output depend on more than its inputs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.runtime.preemption import PREEMPT_CONFIG_KEY
from repro.util.validation import check_positive

#: Config keys consumed by the prepare stage (dataset identity).
PREP_KEYS = ("dataset", "n_train", "n_test", "data_seed")
#: Config keys that control trial *shape* rather than the trained model —
#: excluded from the train-stage params so trials differing only in
#: epoch budget share content keys for their common prefix.
CONTROL_KEYS = (
    "num_epochs", "epochs", "target_accuracy", "_asha_id", PREEMPT_CONFIG_KEY,
)

# ----------------------------------------------------------------------
# Executed-epoch accounting (benchmarks / acceptance tests)
# ----------------------------------------------------------------------
_epoch_lock = threading.Lock()
_executed_epochs = 0


def _count_epochs(n: int) -> None:
    global _executed_epochs
    with _epoch_lock:
        _executed_epochs += int(n)


def executed_epochs() -> int:
    """Epochs actually trained in this process since the last reset.

    Cache hits skip the stage body entirely, so the delta between a
    cache-off and a cache-on study is exactly the redundant work the
    reuse cache eliminated.
    """
    with _epoch_lock:
        return _executed_epochs


def reset_epoch_counter() -> None:
    """Zero the executed-epoch counter (test / benchmark isolation)."""
    global _executed_epochs
    with _epoch_lock:
        _executed_epochs = 0


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StagePlan:
    """How to decompose trials into cacheable stages.

    Attributes
    ----------
    block_epochs:
        Epochs per train stage.  Smaller blocks share more aggressively
        (any common multiple of the block is reusable) but publish more
        entries; the last block of a trial may be partial.
    objective:
        ``"mock"`` for the deterministic instant curve (scheduling and
        chaos experiments) or ``"train"`` for real model training via
        the :mod:`repro.ml` zoo.
    """

    block_epochs: int = 4
    objective: str = "mock"

    def __post_init__(self) -> None:
        check_positive("block_epochs", self.block_epochs)
        if self.objective not in ("mock", "train"):
            raise ValueError(
                f"objective must be 'mock' or 'train', got {self.objective!r}"
            )

    def blocks(self, epochs: int) -> List[Tuple[int, int]]:
        """``[(start, end), ...]`` block boundaries covering ``epochs``."""
        out: List[Tuple[int, int]] = []
        e = 0
        while e < epochs:
            end = min(e + self.block_epochs, epochs)
            out.append((e, end))
            e = end
        return out


def split_config(config: Mapping[str, Any]) -> Tuple[Dict, Dict, int]:
    """``(prep, params, epochs)`` — the stage-facing view of a config.

    ``prep`` is the dataset identity, ``params`` everything that shapes
    the trained model, ``epochs`` the (excluded-from-params) budget.
    """
    prep = {k: config[k] for k in PREP_KEYS if k in config}
    params = {
        k: v for k, v in config.items()
        if k not in PREP_KEYS and k not in CONTROL_KEYS
    }
    epochs = int(config.get("num_epochs", config.get("epochs", 10)))
    return prep, params, epochs


# ----------------------------------------------------------------------
# Shared prepare stage
# ----------------------------------------------------------------------
def stage_prepare(prep: Mapping[str, Any]) -> Dict[str, Any]:
    """Root of every stage tree: pin the dataset identity.

    Deliberately returns only the *spec* — datasets are re-derived
    deterministically (and process-memoised) inside the train stages, so
    the cache holds kilobytes of state chain, not copies of the arrays.
    """
    return {"epoch": 0, "prep": dict(prep)}


def _check_cursor(state: Mapping[str, Any], start_epoch: int) -> None:
    have = int(state.get("epoch", 0))
    if have != int(start_epoch):
        raise ValueError(
            f"stage chain out of order: state is at epoch {have}, "
            f"block starts at {start_epoch}"
        )


# ----------------------------------------------------------------------
# Mock objective, staged
# ----------------------------------------------------------------------
def _mock_epoch_acc(params: Mapping[str, Any], epoch: int) -> float:
    """Validation accuracy after ``epoch`` completed epochs (cumulative).

    Same flavour as :func:`~repro.hpo.objective.fast_mock_objective`
    (optimizer base + saturating gain − large-batch penalty) but the
    gain saturates in *epochs completed*, not total budget, so the curve
    is prefix-stable by construction.
    """
    optimizer = str(params.get("optimizer", "SGD"))
    base = {"Adam": 0.92, "RMSprop": 0.90, "SGD": 0.86}.get(optimizer, 0.85)
    penalty = 0.01 if int(params.get("batch_size", 32)) >= 128 else 0.0
    gain = 0.08 * (1.0 - float(2.0 ** (-epoch / 8.0)))
    return min(0.999, base + gain - penalty)


def stage_train_mock(
    state: Mapping[str, Any],
    params: Mapping[str, Any],
    start_epoch: int,
    end_epoch: int,
) -> Dict[str, Any]:
    """Advance the deterministic curve from ``start_epoch`` to ``end_epoch``.

    ``epoch_sleep_s`` in the params charges real wall time per epoch so
    speedup benchmarks have something to measure.
    """
    _check_cursor(state, start_epoch)
    sleep_s = float(params.get("epoch_sleep_s", 0.0))
    curve = list(state.get("curve", ()))
    for e in range(int(start_epoch), int(end_epoch)):
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        curve.append(_mock_epoch_acc(params, e + 1))
    _count_epochs(int(end_epoch) - int(start_epoch))
    return {"epoch": int(end_epoch), "prep": state["prep"], "curve": curve}


def stage_final_mock(
    state: Mapping[str, Any], params: Mapping[str, Any]
) -> Dict[str, Any]:
    """Fold the accumulated curve into a trial-result payload."""
    curve = list(state.get("curve", ()))
    acc = curve[-1] if curve else 0.0
    return {
        "val_accuracy": acc,
        "val_loss": 1.0 - acc,
        "history": {
            "epochs": list(range(len(curve))),
            "val_accuracy": curve,
        },
        "epochs_run": int(state.get("epoch", len(curve))),
        "duration_s": 0.0,
        "staged": True,
    }


# ----------------------------------------------------------------------
# Real training, staged
# ----------------------------------------------------------------------
def _load_prep(prep: Mapping[str, Any]):
    from repro.hpo.objective import _DATASET_LOADERS
    from repro.ml.datasets.cache import cached_dataset

    dataset = str(prep.get("dataset", "mnist")).lower()
    try:
        loader = _DATASET_LOADERS[dataset]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r}; known: {sorted(_DATASET_LOADERS)}"
        ) from None
    return cached_dataset(
        loader,
        n_train=int(prep.get("n_train", 1200)),
        n_test=int(prep.get("n_test", 300)),
        seed=int(prep.get("data_seed", 0)),
    )


def stage_train_real(
    state: Mapping[str, Any],
    params: Mapping[str, Any],
    start_epoch: int,
    end_epoch: int,
) -> Dict[str, Any]:
    """Train one epoch block; carry the full captured model state forward.

    The state chain uses the same
    :meth:`~repro.ml.model.Model.capture_training_state` /
    ``restore_training_state`` round trip as warm preemption resume, so
    a restored block is byte-identical to having never stopped — the
    property that makes cached prefixes interchangeable with computed
    ones.
    """
    from repro.ml import create_model

    _check_cursor(state, start_epoch)
    (x_train, y_train), (x_val, y_val) = _load_prep(state["prep"])
    model = create_model(
        params, input_shape=x_train.shape[1:], seed=int(params.get("seed", 0))
    )
    initial_epoch = 0
    history = None
    if state.get("train_state") is not None:
        if not model.built:
            model.build(x_train.shape[1:])
        initial_epoch, history = model.restore_training_state(
            state["train_state"]
        )
    history = model.fit(
        x_train,
        y_train,
        epochs=int(end_epoch),
        batch_size=int(params.get("batch_size", 32)),
        validation_data=(x_val, y_val),
        initial_epoch=initial_epoch,
        history=history,
    )
    _count_epochs(len(history) - initial_epoch)
    return {
        "epoch": int(end_epoch),
        "prep": dict(state["prep"]),
        "train_state": model.capture_training_state(int(end_epoch), history),
    }


def stage_final_real(
    state: Mapping[str, Any], params: Mapping[str, Any]
) -> Dict[str, Any]:
    """Fold the captured training state into a trial-result payload."""
    train_state = state.get("train_state") or {}
    hist: Dict[str, Any] = dict(train_state.get("history") or {})

    def _final(key: str) -> float:
        vals = hist.get(key) or []
        return float(vals[-1]) if vals else 0.0

    return {
        "val_accuracy": _final("val_accuracy"),
        "val_loss": _final("val_loss"),
        "train_accuracy": _final("accuracy"),
        "train_loss": _final("loss"),
        "history": hist,
        "epochs_run": int(state.get("epoch", 0)),
        "duration_s": 0.0,
        "staged": True,
    }


#: objective name -> (train stage body, final stage body)
STAGE_BODIES = {
    "mock": (stage_train_mock, stage_final_mock),
    "train": (stage_train_real, stage_final_real),
}
