"""The default training objective — the body of the paper's ``experiment``
task (Listing 2).

Module-level and picklable so it runs under every executor backend
(threads, processes, simulated-with-bodies).  Builds a fresh model from
the config via :func:`repro.ml.create_model` ("new model created every
time with different parameters"), trains it, and returns the validation
metrics plus training history.

Config keys consumed (all optional except none):

* ``dataset`` — ``"mnist"`` (default) or ``"cifar10"``;
* ``num_epochs`` / ``batch_size`` / ``optimizer`` / ``learning_rate`` /
  ``architecture`` / ``hidden_units`` / ``filters`` / ``dropout`` —
  model/training hyperparameters (see the model zoo);
* ``n_train`` / ``n_test`` — synthetic dataset sizes (defaults 1200/300);
* ``data_seed`` / ``seed`` — dataset and model determinism;
* ``target_accuracy`` — per-trial early stop once validation accuracy
  crosses it (paper §4: "training doesn't have to run all the way to the
  end").
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping

from repro.ml import PreemptionCheckpoint, TargetMetricStopping, create_model
from repro.ml.datasets import load_cifar_like, load_mnist_like
from repro.ml.datasets.cache import cached_dataset
from repro.runtime.preemption import SUSPENDED_PAYLOAD_KEY, PreemptContext

_DATASET_LOADERS = {
    "mnist": load_mnist_like,
    "cifar10": load_cifar_like,
    "cifar": load_cifar_like,
}


def train_experiment(
    config: Mapping[str, Any], resume_epoch: int = 0
) -> Dict[str, Any]:
    """Train one model for ``config``; return metrics + history.

    This is the function the paper decorates with ``@task(returns=int)``
    — here it returns a richer dict, but the scheme is identical.

    When the config carries a preemption context (injected by the runner
    under ``__preempt__``), the trial is *preemptible*: a checkpoint-epoch
    callback polls the suspension flag and spills model + optimiser +
    epoch cursor warm, and a prior spill — from a suspension or a lower
    ASHA rung — is restored at start so training continues from its
    cursor.  ``resume_epoch`` is the cursor the resubmitting runner
    expects; it extends the resumed task's deterministic key (the actual
    cursor is read from the verified spill, so a torn spill degrades to a
    cold start, never a wrong restore).
    """
    start = time.perf_counter()
    dataset = str(config.get("dataset", "mnist")).lower()
    try:
        loader = _DATASET_LOADERS[dataset]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r}; known: {sorted(_DATASET_LOADERS)}"
        ) from None
    n_train = int(config.get("n_train", 1200))
    n_test = int(config.get("n_test", 300))
    data_seed = int(config.get("data_seed", 0))
    # Memoised per process: every trial of a grid shares the same arrays
    # (read-only), mirroring COMPSs' reuse of staged data (paper §4).
    (x_train, y_train), (x_val, y_val) = cached_dataset(
        loader, n_train=n_train, n_test=n_test, seed=data_seed
    )

    model = create_model(
        config, input_shape=x_train.shape[1:], seed=int(config.get("seed", 0))
    )
    epochs = int(config.get("num_epochs", config.get("epochs", 10)))

    ctx = PreemptContext.from_config(config)
    initial_epoch = 0
    history = None
    if ctx is not None:
        spilled = ctx.load()
        if spilled is not None and 0 < int(spilled.get("epoch", 0)) < epochs:
            if not model.built:
                model.build(x_train.shape[1:])
            initial_epoch, history = model.restore_training_state(spilled)

    callbacks = []
    target = config.get("target_accuracy")
    if target is not None:
        callbacks.append(
            TargetMetricStopping(monitor="val_accuracy", target=float(target))
        )
    preempt_cb = None
    if ctx is not None:
        # Appended after the stopping callbacks so a trial that just
        # finished (target reached) is never also marked suspended.
        preempt_cb = PreemptionCheckpoint(
            should_suspend=ctx.should_suspend, spill=ctx.spill, every=ctx.every
        )
        callbacks.append(preempt_cb)
    history = model.fit(
        x_train,
        y_train,
        epochs=epochs,
        batch_size=int(config.get("batch_size", 32)),
        validation_data=(x_val, y_val),
        callbacks=callbacks,
        initial_epoch=initial_epoch,
        history=history,
    )
    result: Dict[str, Any] = {
        "val_accuracy": history.final("val_accuracy"),
        "val_loss": history.final("val_loss"),
        "train_accuracy": history.final("accuracy"),
        "train_loss": history.final("loss"),
        "history": history.as_dict(),
        "epochs_run": len(history),
        "resumed_from": initial_epoch,
        "duration_s": time.perf_counter() - start,
    }
    if preempt_cb is not None and preempt_cb.suspended_epoch is not None:
        # Spilled warm at a checkpoint epoch: mark the payload so the
        # runner requeues a resumable task instead of finishing the trial.
        result[SUSPENDED_PAYLOAD_KEY] = True
        result["epochs_done"] = len(history)
    elif ctx is not None:
        # Natural end: spill the final state too (the rung-pause an
        # asynchronous ASHA promotion resumes from).
        ctx.spill(model.capture_training_state(len(history), history))
    return result


def fast_mock_objective(config: Mapping[str, Any]) -> Dict[str, Any]:
    """A deterministic, instant objective for scheduling-only experiments.

    Used by the trace/makespan benchmarks (Figs. 4–6, 9) where only task
    *durations* matter: it fabricates a plausible accuracy from the config
    without training, so 27-task grids over 28 simulated nodes cost
    microseconds of real time.
    """
    epochs = int(config.get("num_epochs", config.get("epochs", 10)))
    batch = int(config.get("batch_size", 32))
    optimizer = str(config.get("optimizer", "SGD"))
    base = {"Adam": 0.92, "RMSprop": 0.90, "SGD": 0.86}.get(optimizer, 0.85)
    gain = 0.08 * (1.0 - 1.0 / (1.0 + epochs / 40.0))
    penalty = 0.01 if batch >= 128 else 0.0
    acc = min(0.999, base + gain - penalty)
    return {
        "val_accuracy": acc,
        "val_loss": 1.0 - acc,
        "history": {
            "epochs": list(range(epochs)),
            "val_accuracy": [
                acc * (1.0 - float(2.0 ** (-e / max(1.0, epochs / 5.0))))
                + 0.1 * float(2.0 ** (-e / max(1.0, epochs / 5.0)))
                for e in range(epochs)
            ],
        },
        "epochs_run": epochs,
        "duration_s": 0.0,
    }


def preemptible_mock_objective(
    config: Mapping[str, Any], resume_epoch: int = 0
) -> Dict[str, Any]:
    """``fast_mock_objective`` metrics, paid for epoch by epoch, preemptible.

    Walks the same deterministic accuracy curve one epoch at a time
    (optionally sleeping ``epoch_sleep_s`` per epoch so suspends can land
    mid-flight), polling the preemption flag at the checkpoint cadence
    and spilling/restoring an epoch cursor through the same
    :class:`~repro.runtime.preemption.PreemptContext` protocol as real
    training.  Used by the preemption chaos tests and the AsyncASHA
    benchmark, where scheduling behaviour matters but training doesn't.
    """
    start = time.perf_counter()
    full = fast_mock_objective(config)
    epochs = int(config.get("num_epochs", config.get("epochs", 10)))
    curve = full["history"]["val_accuracy"]
    sleep_s = float(config.get("epoch_sleep_s", 0.0))

    ctx = PreemptContext.from_config(config)
    cursor = 0
    if ctx is not None:
        spilled = ctx.load()
        if spilled is not None and 0 < int(spilled.get("epoch", 0)) < epochs:
            cursor = int(spilled["epoch"])
    resumed_from = cursor

    suspended = False
    while cursor < epochs:
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        cursor += 1
        if ctx is not None and cursor % ctx.every == 0 and ctx.should_suspend():
            ctx.spill({"epoch": cursor})
            suspended = cursor < epochs
            break

    done = cursor
    acc = curve[done - 1] if done else 0.0
    result: Dict[str, Any] = {
        "val_accuracy": acc,
        "val_loss": 1.0 - acc,
        "history": {
            "epochs": list(range(done)),
            "val_accuracy": curve[:done],
        },
        "epochs_run": done,
        "resumed_from": resumed_from,
        "duration_s": time.perf_counter() - start,
    }
    if suspended:
        result[SUSPENDED_PAYLOAD_KEY] = True
        result["epochs_done"] = done
    elif ctx is not None:
        ctx.spill({"epoch": done})
    return result


def slow_mock_objective(config: Mapping[str, Any]) -> Dict[str, Any]:
    """``fast_mock_objective`` with a short real sleep (~50 ms).

    Module-level (picklable) so service soak tests can reference it by
    name across a daemon restart; the sleep keeps studies in flight long
    enough for a mid-soak SIGKILL to land while work is outstanding.
    """
    import time

    time.sleep(0.05)
    return fast_mock_objective(config)


def poison_objective(config: Mapping[str, Any]) -> Dict[str, Any]:
    """An objective that always fails — a tenant's crash-looping trial.

    Raises (rather than ``os._exit``) so a threads-backend service daemon
    survives; the task burns its retry budget, the trial fails, and the
    study's failed-trial budget decides when the *study* is terminated.
    Other tenants sharing the daemon must be unaffected.
    """
    raise RuntimeError(
        f"poison objective: deliberate failure for config {dict(config)!r}"
    )
