"""Gaussian-process Bayesian optimisation (Snoek et al., 2012 — paper §2.1).

"Bayesian optimisation … essentially builds a surrogate model to
approximate the ideal trained model by using different hyperparameters."
Implementation: a GP with an RBF kernel over the unit-hypercube embedding
of the space, expected-improvement acquisition maximised over random
candidates, and a constant-liar strategy so batches of parallel
suggestions stay diverse (pending points are imputed with the current
mean).  Pure numpy/scipy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np
from scipy import linalg
from scipy.stats import norm

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


def rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``a`` and ``b``."""
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-0.5 * np.maximum(sq, 0.0) / length_scale**2)


class GaussianProcess:
    """Minimal GP regressor with fixed RBF kernel and noise jitter."""

    def __init__(self, length_scale: float = 0.3, noise: float = 1e-4):
        check_positive("length_scale", length_scale)
        check_positive("noise", noise)
        self.length_scale = float(length_scale)
        self.noise = float(noise)
        self._x: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit on observations (y standardised internally)."""
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes x={x.shape}, y={y.shape}")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yz = (y - self._y_mean) / self._y_std
        k = rbf_kernel(x, x, self.length_scale)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = linalg.cholesky(k, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), yz)
        self._x = x
        return self

    def predict(self, x: np.ndarray):
        """Posterior mean and std at rows of ``x`` (original y units)."""
        if self._x is None:
            raise RuntimeError("predict() before fit()")
        ks = rbf_kernel(x, self._x, self.length_scale)
        mean_z = ks @ self._alpha
        v = linalg.solve_triangular(self._chol, ks.T, lower=True)
        var_z = np.maximum(1.0 - np.sum(v**2, axis=0), 1e-12)
        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for maximisation: E[max(f − best − ξ, 0)]."""
    std = np.maximum(std, 1e-12)
    z = (mean - best - xi) / std
    return (mean - best - xi) * norm.cdf(z) + std * norm.pdf(z)


class BayesianOptimization(SearchAlgorithm):
    """GP-EI Bayesian optimisation maximising validation accuracy.

    Parameters
    ----------
    n_trials:
        Total configuration budget.
    n_init:
        Random configurations before the GP takes over.
    n_candidates:
        Random candidates over which EI is maximised per suggestion.
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        space: SearchSpace,
        n_trials: int = 20,
        n_init: int = 5,
        n_candidates: int = 256,
        seed: int = 0,
        length_scale: float = 0.3,
    ):
        super().__init__(space)
        check_positive("n_trials", n_trials)
        check_positive("n_init", n_init)
        check_positive("n_candidates", n_candidates)
        self.n_trials = int(n_trials)
        self.n_init = min(int(n_init), self.n_trials)
        self.n_candidates = int(n_candidates)
        self.length_scale = length_scale
        self._rng = rng_from(seed, "bayesian-opt")
        self._suggested = 0
        self._pending_points: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def _observations(self):
        xs, ys = [], []
        for t in self.observed:
            if t.result is not None and np.isfinite(t.val_accuracy):
                xs.append(self.space.to_unit_vector(t.config))
                ys.append(t.val_accuracy)
        return np.array(xs), np.array(ys)

    def _suggest_one(self, xs: np.ndarray, ys: np.ndarray) -> Dict[str, Any]:
        # Constant liar: pretend pending points observed the current mean,
        # which pushes EI away from already-chosen batch points.
        if self._pending_points:
            lie = float(ys.mean())
            xs = np.vstack([xs, np.array(self._pending_points)])
            ys = np.concatenate([ys, np.full(len(self._pending_points), lie)])
        gp = GaussianProcess(length_scale=self.length_scale).fit(xs, ys)
        cand = self._rng.random((self.n_candidates, len(self.space)))
        mean, std = gp.predict(cand)
        ei = expected_improvement(mean, std, best=float(ys.max()))
        u = cand[int(np.argmax(ei))]
        self._pending_points.append(u)
        return self.space.from_unit_vector(u)

    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        remaining = self.n_trials - self._suggested
        n = remaining if n is None else min(n, remaining)
        batch: List[Dict[str, Any]] = []
        for _ in range(max(0, n)):
            xs, ys = self._observations()
            if self._suggested < self.n_init or len(xs) < 2:
                config = self.space.sample(self._rng)
                self._pending_points.append(self.space.to_unit_vector(config))
            else:
                config = self._suggest_one(xs, ys)
            batch.append(config)
            self._suggested += 1
        return batch

    def tell(self, trial: Trial) -> None:
        super().tell(trial)
        # Retire the pending point closest to this trial's embedding.
        if self._pending_points:
            u = self.space.to_unit_vector(trial.config)
            dists = [float(np.linalg.norm(p - u)) for p in self._pending_points]
            self._pending_points.pop(int(np.argmin(dists)))

    @property
    def is_exhausted(self) -> bool:
        return self._suggested >= self.n_trials
