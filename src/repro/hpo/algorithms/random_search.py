"""Random search (Bergstra & Bengio, 2012).

"Rather than search through the entire search space, combinations of
parameters are picked randomly.  Empirical results show that random
search … arrives at parameters that are good or better at a fraction of
the time required by grid search" (§2.1) — quantified by our baseline
benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


class RandomSearch(SearchAlgorithm):
    """``n_trials`` i.i.d. samples from the space.

    Parameters
    ----------
    n_trials:
        Budget of configurations.
    seed:
        Determinism seed.
    dedup:
        Skip exact duplicates of earlier suggestions (best effort: after
        ``10 × n_trials`` rejected draws a duplicate is allowed, so small
        finite spaces cannot loop forever).
    """

    def __init__(self, space: SearchSpace, n_trials: int = 10, seed: int = 0,
                 dedup: bool = True):
        super().__init__(space)
        check_positive("n_trials", n_trials)
        self.n_trials = int(n_trials)
        self.dedup = dedup
        self._rng = rng_from(seed, "random-search")
        self._suggested = 0
        self._seen: set = set()

    def _draw(self) -> Dict[str, Any]:
        for _ in range(10 * self.n_trials):
            config = self.space.sample(self._rng)
            key = tuple(sorted((k, repr(v)) for k, v in config.items()))
            if not self.dedup or key not in self._seen:
                self._seen.add(key)
                return config
        return self.space.sample(self._rng)

    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        remaining = self.n_trials - self._suggested
        n = remaining if n is None else min(n, remaining)
        batch = [self._draw() for _ in range(max(0, n))]
        self._suggested += len(batch)
        return batch

    @property
    def is_exhausted(self) -> bool:
        return self._suggested >= self.n_trials
