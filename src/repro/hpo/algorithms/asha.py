"""Asynchronous successive halving (ASHA; Li et al., 2020).

Synchronous Hyperband waits at every rung barrier: promotion decisions
need the *whole* rung told, so one straggler idles the entire cluster.
ASHA drops the barrier — the moment a rung has ``eta`` more results than
promotions it has issued, the best unpromoted config is promoted with
``eta×`` more epochs, while the rest of the rung is still in flight.

Promotions pair with the runtime's warm suspension machinery: a promoted
config keeps its ``_asha_id`` lineage key, so its rung-``k+1`` task finds
the rung-``k`` pause spill and resumes from the epoch cursor instead of
retraining from scratch — the "pause/resume" trial control Tune argues
schedulers need (PAPERS.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial
from repro.util.seeding import rng_from
from repro.util.validation import check_positive

#: Config key carrying a trial's lineage identity across rungs.  The
#: runner keys preemption spills by it, which is what makes a promotion
#: a warm resume rather than a restart.
ASHA_ID_KEY = "_asha_id"


class AsyncASHA(SearchAlgorithm):
    """Asynchronous successive halving over the ``num_epochs`` resource.

    Parameters
    ----------
    n_trials:
        Number of base configs sampled into the bottom rung.
    min_epochs / max_epochs:
        Resource ladder endpoints; rung ``k`` runs configs to
        ``min_epochs * eta**k`` epochs, capped at ``max_epochs``.
    eta:
        Promotion factor (top ``1/eta`` of each rung moves up).
    epochs_key:
        Config key carrying the resource (default ``"num_epochs"``).
    seed:
        Determinism seed for the config draws.
    """

    def __init__(
        self,
        space: SearchSpace,
        n_trials: int = 27,
        min_epochs: int = 1,
        max_epochs: int = 27,
        eta: int = 3,
        epochs_key: str = "num_epochs",
        seed: int = 0,
    ):
        super().__init__(space)
        check_positive("n_trials", n_trials)
        check_positive("min_epochs", min_epochs)
        check_positive("max_epochs", max_epochs)
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if max_epochs < min_epochs:
            raise ValueError(
                f"max_epochs ({max_epochs}) must be >= min_epochs ({min_epochs})"
            )
        self.n_trials = int(n_trials)
        self.min_epochs = int(min_epochs)
        self.max_epochs = int(max_epochs)
        self.eta = int(eta)
        self.epochs_key = epochs_key
        self._rng = rng_from(seed, "asha")
        # Rung ladder: rung k trains to min_epochs * eta**k epochs.
        self.rungs: List[int] = []
        r = self.min_epochs
        while r < self.max_epochs:
            self.rungs.append(r)
            r *= self.eta
        self.rungs.append(self.max_epochs)
        # Per rung: results told so far as (acc, asha_id, config) plus the
        # ids already promoted out of it.  The top rung only collects.
        self._rung_results: List[List[Tuple[float, str, Dict[str, Any]]]] = [
            [] for _ in self.rungs
        ]
        self._rung_promoted: List[set] = [set() for _ in self.rungs]
        self._sampled = 0
        self._inflight = 0
        self._promo_queue: List[Dict[str, Any]] = []
        self._events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _rung_of(self, epochs: int) -> int:
        """Index of the rung whose budget is ``epochs`` (nearest match)."""
        for k, r in enumerate(self.rungs):
            if epochs <= r:
                return k
        return len(self.rungs) - 1

    def _sample(self) -> Dict[str, Any]:
        config = self.space.sample(self._rng)
        config[ASHA_ID_KEY] = f"c{self._sampled}"
        config[self.epochs_key] = self.rungs[0]
        self._sampled += 1
        return config

    def _check_promotions(self, rung: int) -> None:
        """Promote from ``rung`` while it is ``eta`` results ahead."""
        if rung >= len(self.rungs) - 1:
            return
        results = self._rung_results[rung]
        promoted = self._rung_promoted[rung]
        while len(results) // self.eta > len(promoted):
            candidates = sorted(
                (r for r in results if r[1] not in promoted),
                key=lambda r: -r[0],
            )
            if not candidates:
                break
            acc, asha_id, config = candidates[0]
            promoted.add(asha_id)
            promo = dict(config)
            promo[self.epochs_key] = self.rungs[rung + 1]
            self._promo_queue.append(promo)
            self._events.append(
                {
                    "id": asha_id,
                    "from_rung": rung,
                    "to_rung": rung + 1,
                    "epochs": self.rungs[rung + 1],
                    "val_accuracy": acc,
                }
            )

    # ------------------------------------------------------------------
    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        budget = (
            len(self._promo_queue) + (self.n_trials - self._sampled)
            if n is None
            else n
        )
        batch: List[Dict[str, Any]] = []
        # Promotions first: they free a spilled pause and finish lineages.
        while self._promo_queue and len(batch) < budget:
            batch.append(self._promo_queue.pop(0))
        while self._sampled < self.n_trials and len(batch) < budget:
            batch.append(self._sample())
        self._inflight += len(batch)
        return [dict(c) for c in batch]

    def tell(self, trial: Trial) -> None:
        super().tell(trial)
        self._inflight -= 1
        acc = trial.val_accuracy
        acc = acc if acc == acc else -float("inf")
        asha_id = str(trial.config.get(ASHA_ID_KEY, f"t{trial.trial_id}"))
        epochs = int(trial.config.get(self.epochs_key, self.rungs[0]))
        rung = self._rung_of(epochs)
        self._rung_results[rung].append((acc, asha_id, dict(trial.config)))
        self._check_promotions(rung)

    def pop_events(self) -> List[Dict[str, Any]]:
        """Drain promotion events since the last call (for tracing)."""
        events, self._events = self._events, []
        return events

    @property
    def is_exhausted(self) -> bool:
        return (
            self._sampled >= self.n_trials
            and self._inflight == 0
            and not self._promo_queue
        )
