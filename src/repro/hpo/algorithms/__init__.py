"""HPO search algorithms.

Grid search and random search are the algorithms the paper implements
(§1: "We implement grid search and random search using PyCOMPSs").
Bayesian optimisation, TPE and Hyperband are the "key algorithms in HPO"
the paper announces as future work (§7) — implemented here so the library
"enables the user to perform HPO over any search space by simply calling
a function and specifying the algorithm".
"""

from typing import Optional, Union

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.algorithms.grid import GridSearch
from repro.hpo.algorithms.random_search import RandomSearch
from repro.hpo.algorithms.bayesian import BayesianOptimization
from repro.hpo.algorithms.tpe import TPESearch
from repro.hpo.algorithms.hyperband import HyperbandSearch
from repro.hpo.algorithms.successive_halving import SuccessiveHalving
from repro.hpo.algorithms.evolutionary import EvolutionarySearch
from repro.hpo.algorithms.asha import AsyncASHA
from repro.hpo.space import SearchSpace

_ALGORITHMS = {
    "grid": GridSearch,
    "random": RandomSearch,
    "bayesian": BayesianOptimization,
    "tpe": TPESearch,
    "hyperband": HyperbandSearch,
    "successive_halving": SuccessiveHalving,
    "evolutionary": EvolutionarySearch,
    "asha": AsyncASHA,
}


def get_algorithm(
    name: Union[str, SearchAlgorithm], space: Optional[SearchSpace] = None, **kwargs
) -> SearchAlgorithm:
    """Instantiate an algorithm by name (the §7 "specify the algorithm" API).

    >>> from repro.hpo.config_file import paper_search_space
    >>> algo = get_algorithm("grid", paper_search_space())
    """
    if isinstance(name, SearchAlgorithm):
        if kwargs or space is not None:
            raise ValueError("cannot pass space/kwargs with an algorithm instance")
        return name
    try:
        cls = _ALGORITHMS[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; known: {sorted(_ALGORITHMS)}"
        ) from None
    if space is None:
        raise ValueError("a SearchSpace is required when passing an algorithm name")
    return cls(space, **kwargs)


__all__ = [
    "SearchAlgorithm",
    "GridSearch",
    "RandomSearch",
    "BayesianOptimization",
    "TPESearch",
    "HyperbandSearch",
    "SuccessiveHalving",
    "EvolutionarySearch",
    "AsyncASHA",
    "get_algorithm",
]
