"""Tree-structured Parzen Estimator (Bergstra et al., 2011 — paper §2.1).

Observations are split at the γ-quantile of the objective into "good" and
"bad" sets; each is modelled per-dimension with a Parzen density (Gaussian
mixtures in the unit-cube embedding, weighted categorical counts for
discrete parameters).  Candidates are drawn from the good density and
ranked by the likelihood ratio l(x)/g(x).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_positive


def _parzen_logpdf(x: np.ndarray, centers: np.ndarray, bw: float) -> np.ndarray:
    """Log density of a 1-D Gaussian mixture with equal weights.

    Evaluated fully vectorised: ``x`` (n,) against ``centers`` (m,).
    """
    if centers.size == 0:
        return np.zeros_like(x)  # uniform fallback (log 1)
    diff = (x[:, None] - centers[None, :]) / bw
    log_kernel = -0.5 * diff**2 - np.log(bw * np.sqrt(2 * np.pi))
    m = log_kernel.max(axis=1, keepdims=True)
    return (m.squeeze(1) + np.log(np.exp(log_kernel - m).sum(axis=1))) - np.log(
        centers.size
    )


class TPESearch(SearchAlgorithm):
    """TPE maximising validation accuracy.

    Parameters
    ----------
    n_trials:
        Total configuration budget.
    n_init:
        Random configurations before the density models engage.
    gamma:
        Quantile split between good and bad observations.
    n_candidates:
        Candidates drawn from the good density per suggestion.
    bandwidth:
        Parzen kernel bandwidth in unit-cube coordinates.
    """

    def __init__(
        self,
        space: SearchSpace,
        n_trials: int = 20,
        n_init: int = 5,
        gamma: float = 0.25,
        n_candidates: int = 64,
        bandwidth: float = 0.15,
        seed: int = 0,
    ):
        super().__init__(space)
        check_positive("n_trials", n_trials)
        check_positive("n_init", n_init)
        check_in_range("gamma", gamma, 0.0, 1.0, inclusive=False)
        check_positive("n_candidates", n_candidates)
        check_positive("bandwidth", bandwidth)
        self.n_trials = int(n_trials)
        self.n_init = min(int(n_init), self.n_trials)
        self.gamma = float(gamma)
        self.n_candidates = int(n_candidates)
        self.bandwidth = float(bandwidth)
        self._rng = rng_from(seed, "tpe")
        self._suggested = 0

    # ------------------------------------------------------------------
    def _split(self):
        done = [
            t for t in self.observed
            if t.result is not None and np.isfinite(t.val_accuracy)
        ]
        if len(done) < 2:
            return None, None
        done.sort(key=lambda t: -t.val_accuracy)
        n_good = max(1, int(np.ceil(self.gamma * len(done))))
        good = np.array(
            [self.space.to_unit_vector(t.config) for t in done[:n_good]]
        )
        bad = np.array(
            [self.space.to_unit_vector(t.config) for t in done[n_good:]]
        )
        return good, bad

    def _sample_from_good(self, good: np.ndarray) -> np.ndarray:
        """Draw candidates around good points (per-dimension Parzen)."""
        n, d = self.n_candidates, len(self.space)
        idx = self._rng.integers(0, good.shape[0], size=(n, d))
        centers = good[idx, np.arange(d)[None, :]]
        cand = centers + self._rng.normal(0.0, self.bandwidth, size=(n, d))
        return np.clip(cand, 0.0, 1.0)

    def _suggest_one(self, good: np.ndarray, bad: np.ndarray) -> Dict[str, Any]:
        cand = self._sample_from_good(good)
        score = np.zeros(cand.shape[0])
        for dim in range(cand.shape[1]):
            lg = _parzen_logpdf(cand[:, dim], good[:, dim], self.bandwidth)
            lb = _parzen_logpdf(cand[:, dim], bad[:, dim], self.bandwidth)
            score += lg - lb
        return self.space.from_unit_vector(cand[int(np.argmax(score))])

    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        remaining = self.n_trials - self._suggested
        n = remaining if n is None else min(n, remaining)
        batch: List[Dict[str, Any]] = []
        for _ in range(max(0, n)):
            good, bad = self._split()
            if self._suggested < self.n_init or good is None or bad is None or not len(bad):
                config = self.space.sample(self._rng)
            else:
                config = self._suggest_one(good, bad)
            batch.append(config)
            self._suggested += 1
        return batch

    @property
    def is_exhausted(self) -> bool:
        return self._suggested >= self.n_trials
