"""Search-algorithm interface: a batched ask/tell protocol.

The runner repeatedly calls :meth:`SearchAlgorithm.ask` for up to ``n``
configs, launches them as parallel tasks, and feeds finished trials back
via :meth:`~SearchAlgorithm.tell`.  One-shot algorithms (grid, random)
hand out their whole schedule; model-based ones (BO, TPE) adapt between
batches; multi-fidelity ones (Hyperband) gate later rungs on earlier
results.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

from repro.hpo.space import SearchSpace
from repro.hpo.trial import Study, Trial


class SearchAlgorithm(abc.ABC):
    """Abstract HPO algorithm over a :class:`SearchSpace`."""

    def __init__(self, space: SearchSpace):
        self.space = space
        self.observed: List[Trial] = []

    @abc.abstractmethod
    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Return up to ``n`` configs to evaluate next.

        An empty list means the algorithm has nothing to suggest *right
        now*; combined with :attr:`is_exhausted` the runner decides
        whether to stop or to wait for outstanding ``tell``s.
        """

    def tell(self, trial: Trial) -> None:
        """Report a finished trial (default: record it)."""
        self.observed.append(trial)

    @property
    @abc.abstractmethod
    def is_exhausted(self) -> bool:
        """True when the algorithm will never suggest another config."""

    @property
    def name(self) -> str:
        """Short algorithm name for reports."""
        return type(self).__name__

    def warm_start(self, study: "Study") -> int:
        """Feed a previous study's completed trials into the algorithm.

        Model-based algorithms (BO/TPE) use the observations immediately;
        returns the number of trials ingested.
        """
        count = 0
        for trial in study.completed():
            self.tell(trial)
            count += 1
        return count

    def best_observed(self) -> Optional[Trial]:
        """Best completed trial seen so far (None if none)."""
        done = [t for t in self.observed if t.result is not None]
        if not done:
            return None
        return max(done, key=lambda t: t.val_accuracy)
