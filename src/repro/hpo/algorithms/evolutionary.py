"""(μ+λ) evolutionary search.

A simple population-based algorithm for the §7 "all key algorithms"
library: keep the μ best configurations seen, produce λ children by
per-dimension Gaussian mutation (in the unit-cube embedding) and uniform
crossover, evaluate, repeat.  Handles mixed categorical/numeric spaces
through the same embedding the BO/TPE implementations use, and maps
cleanly onto batched parallel evaluation (λ = cluster parallelism).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_positive


class EvolutionarySearch(SearchAlgorithm):
    """(μ+λ) evolution strategy maximising validation accuracy.

    Parameters
    ----------
    n_trials:
        Total evaluation budget (initial population included).
    population:
        μ — parents kept each generation.
    children:
        λ — offspring per generation (also a good ``batch_size``).
    mutation_std:
        Gaussian mutation σ in unit-cube coordinates.
    crossover_prob:
        Probability a child mixes two parents (vs mutating one).
    """

    def __init__(
        self,
        space: SearchSpace,
        n_trials: int = 30,
        population: int = 4,
        children: int = 4,
        mutation_std: float = 0.15,
        crossover_prob: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(space)
        check_positive("n_trials", n_trials)
        check_positive("population", population)
        check_positive("children", children)
        check_positive("mutation_std", mutation_std)
        check_in_range("crossover_prob", crossover_prob, 0.0, 1.0)
        self.n_trials = int(n_trials)
        self.population = int(population)
        self.children = int(children)
        self.mutation_std = float(mutation_std)
        self.crossover_prob = float(crossover_prob)
        self._rng = rng_from(seed, "evolutionary")
        self._suggested = 0

    # ------------------------------------------------------------------
    def _parents(self) -> List[np.ndarray]:
        done = [
            t for t in self.observed
            if t.result is not None and np.isfinite(t.val_accuracy)
        ]
        done.sort(key=lambda t: -t.val_accuracy)
        return [
            self.space.to_unit_vector(t.config)
            for t in done[: self.population]
        ]

    def _child(self, parents: List[np.ndarray]) -> Dict[str, Any]:
        i = int(self._rng.integers(0, len(parents)))
        genome = parents[i].copy()
        if len(parents) > 1 and self._rng.random() < self.crossover_prob:
            j = int(self._rng.integers(0, len(parents)))
            mask = self._rng.random(len(genome)) < 0.5
            genome[mask] = parents[j][mask]
        genome += self._rng.normal(0.0, self.mutation_std, size=len(genome))
        return self.space.from_unit_vector(np.clip(genome, 0.0, 1.0))

    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        remaining = self.n_trials - self._suggested
        n = min(self.children, remaining) if n is None else min(n, remaining)
        batch: List[Dict[str, Any]] = []
        parents = self._parents()
        for _ in range(max(0, n)):
            if self._suggested < self.population or not parents:
                batch.append(self.space.sample(self._rng))
            else:
                batch.append(self._child(parents))
            self._suggested += 1
        return batch

    @property
    def is_exhausted(self) -> bool:
        return self._suggested >= self.n_trials
