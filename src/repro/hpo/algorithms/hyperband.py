"""Hyperband / successive halving (Li et al., 2018).

A multi-fidelity algorithm: many configs get a small epoch budget; the
top ``1/eta`` fraction of each rung is promoted with ``eta×`` more
epochs.  The resource knob is the config's ``num_epochs`` key — exactly
the hyperparameter the paper's Fig. 5 shows dominating task duration, so
halving it is also what makes early stopping pay off at the study level.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


class HyperbandSearch(SearchAlgorithm):
    """Hyperband over the ``num_epochs`` resource.

    Parameters
    ----------
    max_epochs:
        Maximum per-trial resource (R).
    eta:
        Halving factor (η).
    epochs_key:
        Config key carrying the resource (default ``"num_epochs"``).
    seed:
        Determinism seed for the random config draws.
    """

    def __init__(
        self,
        space: SearchSpace,
        max_epochs: int = 81,
        eta: int = 3,
        epochs_key: str = "num_epochs",
        seed: int = 0,
    ):
        super().__init__(space)
        check_positive("max_epochs", max_epochs)
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        self.max_epochs = int(max_epochs)
        self.eta = int(eta)
        self.epochs_key = epochs_key
        self._rng = rng_from(seed, "hyperband")
        # Brackets: s_max .. 0, each a list of rungs (n_configs, epochs).
        self.s_max = int(math.floor(math.log(self.max_epochs, self.eta)))
        self._brackets = self._plan_brackets()
        self._bracket_idx = 0
        self._rung_idx = 0
        self._rung_outstanding = 0
        self._rung_results: List[Tuple[float, Dict[str, Any]]] = []
        self._rung_queue: List[Dict[str, Any]] = []
        self._prepare_rung(initial=True)

    # ------------------------------------------------------------------
    def _plan_brackets(self) -> List[List[Tuple[int, int]]]:
        brackets = []
        for s in range(self.s_max, -1, -1):
            n = int(math.ceil((self.s_max + 1) / (s + 1) * self.eta**s))
            r = self.max_epochs / self.eta**s
            rungs = []
            for i in range(s + 1):
                n_i = int(math.floor(n / self.eta**i))
                r_i = max(1, int(round(r * self.eta**i)))
                if n_i >= 1:
                    rungs.append((n_i, r_i))
            brackets.append(rungs)
        return brackets

    @property
    def total_trials(self) -> int:
        """Total trial launches across all brackets and rungs."""
        return sum(n for bracket in self._brackets for (n, _) in bracket)

    def _prepare_rung(self, initial: bool = False) -> None:
        """Fill the queue for the current rung."""
        if self._bracket_idx >= len(self._brackets):
            return
        bracket = self._brackets[self._bracket_idx]
        n, epochs = bracket[self._rung_idx]
        if self._rung_idx == 0:
            configs = [self.space.sample(self._rng) for _ in range(n)]
        else:
            # Promote the top n of the previous rung.
            self._rung_results.sort(key=lambda pair: -pair[0])
            configs = [dict(c) for _, c in self._rung_results[:n]]
        for c in configs:
            c[self.epochs_key] = epochs
        self._rung_queue = configs
        self._rung_outstanding = len(configs)
        self._rung_results = []

    def _advance(self) -> None:
        """Move to the next rung/bracket once the current rung is told."""
        bracket = self._brackets[self._bracket_idx]
        if self._rung_idx + 1 < len(bracket):
            self._rung_idx += 1
        else:
            self._bracket_idx += 1
            self._rung_idx = 0
        if self._bracket_idx < len(self._brackets):
            self._prepare_rung()

    # ------------------------------------------------------------------
    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        n = len(self._rung_queue) if n is None else min(n, len(self._rung_queue))
        batch, self._rung_queue = self._rung_queue[:n], self._rung_queue[n:]
        return [dict(c) for c in batch]

    def tell(self, trial: Trial) -> None:
        super().tell(trial)
        acc = trial.val_accuracy
        self._rung_results.append(
            (acc if acc == acc else -float("inf"), dict(trial.config))
        )
        self._rung_outstanding -= 1
        if self._rung_outstanding == 0 and not self._rung_queue:
            self._advance()

    @property
    def is_exhausted(self) -> bool:
        return self._bracket_idx >= len(self._brackets) and not self._rung_queue
