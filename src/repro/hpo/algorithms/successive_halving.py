"""Successive halving (Jamieson & Talwalkar, 2016) — Hyperband's inner loop.

A single bracket: start ``n_configs`` random configurations at
``min_epochs`` and repeatedly keep the top ``1/eta`` fraction with
``eta×`` the budget, until ``max_epochs``.  Simpler than full Hyperband
and often what practitioners actually run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


class SuccessiveHalving(SearchAlgorithm):
    """One halving bracket over the ``num_epochs`` resource.

    Parameters
    ----------
    n_configs:
        Configurations in the first rung.
    min_epochs / max_epochs:
        Resource range; rung budgets go min, min·η, … capped at max.
    eta:
        Keep the top ``1/eta`` per rung.
    """

    def __init__(
        self,
        space: SearchSpace,
        n_configs: int = 27,
        min_epochs: int = 1,
        max_epochs: int = 81,
        eta: int = 3,
        epochs_key: str = "num_epochs",
        seed: int = 0,
    ):
        super().__init__(space)
        check_positive("n_configs", n_configs)
        check_positive("min_epochs", min_epochs)
        if max_epochs < min_epochs:
            raise ValueError(
                f"max_epochs ({max_epochs}) < min_epochs ({min_epochs})"
            )
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        self.eta = int(eta)
        self.epochs_key = epochs_key
        self._rng = rng_from(seed, "successive-halving")
        #: (n_configs, epochs) per rung.
        self.rungs: List[Tuple[int, int]] = []
        n, r = int(n_configs), int(min_epochs)
        while True:
            self.rungs.append((n, min(r, int(max_epochs))))
            if n // self.eta < 1 or r >= max_epochs:
                break
            n //= self.eta
            r *= self.eta
        self._rung_idx = 0
        self._queue: List[Dict[str, Any]] = []
        self._outstanding = 0
        self._results: List[Tuple[float, Dict[str, Any]]] = []
        self._fill_first_rung()

    # ------------------------------------------------------------------
    def _fill_first_rung(self) -> None:
        n, epochs = self.rungs[0]
        self._queue = [self.space.sample(self._rng) for _ in range(n)]
        for c in self._queue:
            c[self.epochs_key] = epochs
        self._outstanding = n

    def _promote(self) -> None:
        self._rung_idx += 1
        if self._rung_idx >= len(self.rungs):
            return
        n, epochs = self.rungs[self._rung_idx]
        self._results.sort(key=lambda pair: -pair[0])
        self._queue = [dict(c) for _, c in self._results[:n]]
        for c in self._queue:
            c[self.epochs_key] = epochs
        self._outstanding = len(self._queue)
        self._results = []

    @property
    def total_trials(self) -> int:
        """Total trial launches across all rungs."""
        return sum(n for n, _ in self.rungs)

    # ------------------------------------------------------------------
    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        n = len(self._queue) if n is None else min(n, len(self._queue))
        batch, self._queue = self._queue[:n], self._queue[n:]
        return [dict(c) for c in batch]

    def tell(self, trial: Trial) -> None:
        super().tell(trial)
        acc = trial.val_accuracy
        self._results.append(
            (acc if acc == acc else -float("inf"), dict(trial.config))
        )
        self._outstanding -= 1
        if self._outstanding == 0 and not self._queue:
            self._promote()

    @property
    def is_exhausted(self) -> bool:
        return self._rung_idx >= len(self.rungs) and not self._queue
