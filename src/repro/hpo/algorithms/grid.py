"""Exhaustive grid search (the paper's primary algorithm).

"Exhaustive Grid search involves trying out all possible combinations and
comparing the result using a metric such as loss or accuracy" (§2.1).
Configs are produced in deterministic ``itertools.product`` order over
the Listing-1 JSON structure — the order that determines which 3 of the
27 tasks wait for cores in Fig. 5.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.hpo.algorithms.base import SearchAlgorithm
from repro.hpo.space import SearchSpace


class GridSearch(SearchAlgorithm):
    """All configs of a finite space, in deterministic order."""

    def __init__(self, space: SearchSpace):
        super().__init__(space)
        if not space.is_finite:
            raise ValueError(
                "grid search needs a finite space (no Real/Integer ranges); "
                "use random search or Bayesian optimisation instead"
            )
        self._pending: List[Dict[str, Any]] = list(space.grid())
        self.total = len(self._pending)

    def ask(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        n = len(self._pending) if n is None else min(n, len(self._pending))
        batch, self._pending = self._pending[:n], self._pending[n:]
        return batch

    @property
    def is_exhausted(self) -> bool:
        return not self._pending
