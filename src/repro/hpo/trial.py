"""Trials and studies.

Borrowing the paper's §2.2 description of Tune: "each training is
referred to as a trial and an experiment is a collection of trials" —
here a :class:`Trial` is one training run with one config, and a
:class:`Study` collects them with result queries and exports.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.util.ascii_plot import table as ascii_table


class TrialStatus(str, enum.Enum):
    """Lifecycle of a trial."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    PRUNED = "pruned"  # stopped early by a study-level stopper


@dataclass
class TrialResult:
    """Outcome of one training run.

    ``history`` maps metric name → per-epoch values (the paper's tasks
    return "validation loss or accuracy and training history").
    """

    val_accuracy: float
    val_loss: float = float("nan")
    train_accuracy: float = float("nan")
    train_loss: float = float("nan")
    history: Dict[str, List[float]] = field(default_factory=dict)
    epochs_run: int = 0
    duration_s: float = 0.0
    node: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, payload: Mapping[str, Any]) -> "TrialResult":
        """Build from the dict an objective function returns.

        Required key: ``val_accuracy``.  Everything else is optional.
        """
        if "val_accuracy" not in payload:
            raise KeyError(
                "objective result must contain 'val_accuracy'; got keys "
                f"{sorted(payload)}"
            )
        known = {
            k: payload[k]
            for k in (
                "val_accuracy", "val_loss", "train_accuracy", "train_loss",
                "history", "epochs_run", "duration_s", "node",
            )
            if k in payload
        }
        extra = {
            k: v for k, v in payload.items() if k not in known
        }
        return cls(**known, extra=extra)


@dataclass
class Trial:
    """One hyperparameter configuration and its (eventual) result."""

    trial_id: int
    config: Dict[str, Any]
    status: TrialStatus = TrialStatus.PENDING
    result: Optional[TrialResult] = None
    error: Optional[str] = None

    @property
    def val_accuracy(self) -> float:
        """Headline metric (NaN while unfinished)."""
        return self.result.val_accuracy if self.result else float("nan")

    def describe_config(self) -> str:
        """Compact config rendering for tables, e.g. ``Adam/e50/b64``."""
        parts = []
        for key, value in self.config.items():
            short = {"optimizer": "", "num_epochs": "e", "batch_size": "b"}.get(
                key, f"{key}="
            )
            parts.append(f"{short}{value}")
        return "/".join(parts)


class Study:
    """A collection of trials plus aggregate queries and exports."""

    def __init__(self, name: str = "study"):
        self.name = name
        self.trials: List[Trial] = []
        #: Wall-clock (or virtual) duration of the whole HPO run, seconds.
        self.total_duration_s: float = 0.0
        #: Extra metadata (cluster name, algorithm, …) set by runners.
        self.metadata: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def new_trial(self, config: Dict[str, Any]) -> Trial:
        """Create, register and return a new PENDING trial."""
        trial = Trial(trial_id=len(self.trials) + 1, config=dict(config))
        self.trials.append(trial)
        return trial

    def completed(self) -> List[Trial]:
        return [t for t in self.trials if t.status == TrialStatus.COMPLETED]

    def best_trial(self) -> Trial:
        """Completed trial with the highest validation accuracy."""
        done = self.completed()
        if not done:
            raise ValueError("study has no completed trials")
        return max(done, key=lambda t: t.val_accuracy)

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table(self, limit: Optional[int] = None) -> str:
        """Text table of trials sorted by accuracy (best first)."""
        done = sorted(
            self.completed(), key=lambda t: -t.val_accuracy
        )
        rows = [
            [
                t.trial_id,
                t.describe_config(),
                t.val_accuracy,
                t.result.val_loss if t.result else float("nan"),
                t.result.epochs_run if t.result else 0,
                t.result.node or "-" if t.result else "-",
            ]
            for t in done[: limit or len(done)]
        ]
        return ascii_table(
            ["trial", "config", "val_acc", "val_loss", "epochs", "node"],
            rows,
            title=f"study {self.name!r}: {len(done)}/{len(self.trials)} trials "
            f"completed, total {self.total_duration_s:.1f}s",
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dump of the whole study."""
        return {
            "name": self.name,
            "total_duration_s": self.total_duration_s,
            "metadata": dict(self.metadata),
            "trials": [
                {
                    "trial_id": t.trial_id,
                    "config": t.config,
                    "status": t.status.value,
                    "error": t.error,
                    "result": None
                    if t.result is None
                    else {
                        "val_accuracy": t.result.val_accuracy,
                        "val_loss": t.result.val_loss,
                        "train_accuracy": t.result.train_accuracy,
                        "train_loss": t.result.train_loss,
                        "history": t.result.history,
                        "epochs_run": t.result.epochs_run,
                        "duration_s": t.result.duration_s,
                        "node": t.result.node,
                    },
                }
                for t in self.trials
            ],
        }

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write :meth:`as_dict` to ``path``."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2), encoding="utf-8")
        return path

    def save_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per trial (config columns + headline metrics)."""
        path = Path(path)
        config_keys: List[str] = []
        for t in self.trials:
            for k in t.config:
                if k not in config_keys:
                    config_keys.append(k)
        header = ["trial_id", "status", *config_keys, "val_accuracy",
                  "val_loss", "epochs_run", "duration_s", "node"]
        lines = [",".join(header)]
        for t in self.trials:
            r = t.result
            row = [
                str(t.trial_id),
                t.status.value,
                *(str(t.config.get(k, "")) for k in config_keys),
                f"{t.val_accuracy:.6f}" if r else "",
                f"{r.val_loss:.6f}" if r else "",
                str(r.epochs_run) if r else "",
                f"{r.duration_s:.3f}" if r else "",
                (r.node or "") if r else "",
            ]
            lines.append(",".join(row))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path
