"""Wall-clock timing helpers used by executors, benchmarks and examples."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A restartable monotonic stopwatch.

    Example
    -------
    >>> sw = Stopwatch().start()
    >>> _ = sum(range(1000))
    >>> sw.stop().elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch and return ``self``."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> "Stopwatch":
        """Stop the stopwatch, accumulating elapsed time; returns ``self``."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self

    def reset(self) -> "Stopwatch":
        """Zero the accumulated time and stop; returns ``self``."""
        self._start = None
        self._elapsed = 0.0
        return self

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated elapsed seconds (includes the live segment if running)."""
        live = (time.perf_counter() - self._start) if self._start is not None else 0.0
        return self._elapsed + live

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render ``seconds`` as a compact human-readable duration.

    >>> format_duration(29 * 60)
    '29m 0s'
    >>> format_duration(3.25)
    '3.25s'
    >>> format_duration(2 * 3600 + 90)
    '2h 1m 30s'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 60:
        return f"{seconds:.2f}s"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h {minutes}m {secs}s"
    return f"{minutes}m {secs}s"
