"""Shared utilities for the reproduction package.

This subpackage holds small, dependency-free helpers used across the
runtime, simulator, ML framework and HPO layers: deterministic seeding,
wall-clock timing, ASCII plotting (the stand-in for the paper's matplotlib
dashboards), logging configuration, and argument validation.
"""

from repro.util.seeding import SeedSequenceFactory, derive_seed, rng_from
from repro.util.timing import Stopwatch, format_duration
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_one_of,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "rng_from",
    "Stopwatch",
    "format_duration",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_one_of",
]
