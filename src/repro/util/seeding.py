"""Deterministic seeding helpers.

Every stochastic component in the reproduction (dataset generators, weight
initialisers, random search, the simulator's failure injector) draws its
randomness from a :class:`numpy.random.Generator` derived here, so that a
single integer seed makes an entire experiment bit-reproducible.  Seeds for
sub-components are derived by hashing a parent seed together with a string
key, which keeps streams independent without global state.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

_SeedLike = Union[int, np.random.Generator, None]


def derive_seed(parent_seed: int, key: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``key``.

    The derivation is a truncated SHA-256 of ``"{parent_seed}/{key}"`` so
    that (a) different keys give statistically independent streams and
    (b) the mapping is stable across processes and Python versions (unlike
    the builtin ``hash``).

    Parameters
    ----------
    parent_seed:
        Any non-negative integer seed.
    key:
        A label identifying the consumer (e.g. ``"trial-7"``).

    Returns
    -------
    int
        A seed in ``[0, 2**63)``.
    """
    if parent_seed < 0:
        raise ValueError(f"parent_seed must be non-negative, got {parent_seed}")
    digest = hashlib.sha256(f"{parent_seed}/{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


def rng_from(seed: _SeedLike, key: Optional[str] = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer (optionally combined with ``key`` via
    :func:`derive_seed`), an existing generator (returned as-is; ``key`` is
    ignored), or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if key is not None:
        seed = derive_seed(int(seed), key)
    return np.random.default_rng(int(seed))


class SeedSequenceFactory:
    """Hands out reproducible, independent child seeds in call order.

    This is used where components are created in a loop (e.g. one seed per
    HPO trial): the ``n``-th call with the same base seed always yields the
    same child seed.

    Example
    -------
    >>> f = SeedSequenceFactory(123)
    >>> a, b = f.next_seed(), f.next_seed()
    >>> f2 = SeedSequenceFactory(123)
    >>> (a, b) == (f2.next_seed(), f2.next_seed())
    True
    """

    def __init__(self, base_seed: int):
        if base_seed < 0:
            raise ValueError(f"base_seed must be non-negative, got {base_seed}")
        self._base_seed = int(base_seed)
        self._counter = 0

    @property
    def base_seed(self) -> int:
        """The base seed this factory was created with."""
        return self._base_seed

    def next_seed(self) -> int:
        """Return the next child seed in the deterministic sequence."""
        seed = derive_seed(self._base_seed, f"seq-{self._counter}")
        self._counter += 1
        return seed

    def next_rng(self) -> np.random.Generator:
        """Return a generator seeded with :meth:`next_seed`."""
        return np.random.default_rng(self.next_seed())
