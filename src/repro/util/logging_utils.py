"""Logging configuration shared by the runtime and HPO layers.

The COMPSs runtime logs scheduling decisions, data transfers and fault
recovery; we mirror that with standard :mod:`logging` loggers under the
``"repro"`` namespace so users can dial verbosity per subsystem
(``repro.runtime``, ``repro.simcluster``, ``repro.hpo``).
"""

from __future__ import annotations

import logging
from typing import Optional

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("runtime.scheduler")`` → logger ``repro.runtime.scheduler``.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(level: int = logging.WARNING, stream=None) -> logging.Logger:
    """Configure the root ``repro`` logger with a plain formatter.

    Safe to call repeatedly; the handler is installed once.  Returns the
    root ``repro`` logger.
    """
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not any(getattr(h, "_repro_handler", False) for h in root.handlers):
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    return root


def set_verbosity(verbose: bool, debug: bool = False) -> None:
    """Convenience switch used by example scripts (``--verbose/--debug``)."""
    level: Optional[int] = None
    if debug:
        level = logging.DEBUG
    elif verbose:
        level = logging.INFO
    if level is not None:
        configure(level)
