"""ASCII plotting — the stand-in for the paper's matplotlib figures.

The paper plots accuracy-vs-epoch curves (Figs. 7–8) and time-vs-cores
series (Fig. 9) with matplotlib, which is not available offline.  These
renderers emit the same information as monospace text so benchmark output
and example scripts remain self-contained and diffable.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.util.validation import check_positive

# Characters used to distinguish series in a multi-series chart.
SERIES_MARKERS = "ox+*#@%&$~^"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    """Map ``value`` in [lo, hi] to a cell index in [0, size-1]."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(frac * (size - 1)))))


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII scatter/line chart.

    Parameters
    ----------
    series:
        Mapping from series name to a sequence of ``(x, y)`` points.
    width, height:
        Plot-area size in character cells.
    title, x_label, y_label:
        Annotations printed around the plot.

    Returns
    -------
    str
        A multi-line string; safe to ``print``.
    """
    check_positive("width", width)
    check_positive("height", height)
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for idx, (name, pts) in enumerate(series.items()):
        marker = SERIES_MARKERS[idx % len(SERIES_MARKERS)]
        prev_cell: Optional[Tuple[int, int]] = None
        for x, y in sorted(pts):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            if prev_cell is not None:
                # Draw a crude connecting segment so trends read as lines.
                pc, pr = prev_cell
                steps = max(abs(col - pc), abs(row - pr))
                for s in range(1, steps):
                    ic = pc + round((col - pc) * s / steps)
                    ir = pr + round((row - pr) * s / steps)
                    if grid[ir][ic] == " ":
                        grid[ir][ic] = "."
            grid[row][col] = marker
            prev_cell = (col, row)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} +" + "-" * width + "+")
    for r, row_cells in enumerate(grid):
        label = f"{y_lo + (y_hi - y_lo) * (height - 1 - r) / max(1, height - 1):>10.4g}" if r in (
            height // 2,
        ) else " " * 10
        lines.append(f"{label} |" + "".join(row_cells) + "|")
    lines.append(f"{y_lo:>10.4g} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_lo:<12.6g}{x_label:^{max(0, width - 24)}}{x_hi:>12.6g}")
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}  (y: {y_label})")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a horizontal bar chart of label → value.

    >>> print(bar_chart({"a": 2.0, "b": 4.0}, width=4))  # doctest: +SKIP
    """
    check_positive("width", width)
    if not values:
        return f"{title}\n(no data)"
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, val in values.items():
        n = _scale(val, 0.0, vmax, width) + (1 if val > 0 else 0)
        n = min(n, width)
        lines.append(f"{name:<{label_w}} | {'#' * n:<{width}} {val:.4g}{unit}")
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with 4 significant digits; everything else via
    ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [title] if title else []
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def histogram(
    data: Sequence[float], bins: int = 10, width: int = 40, title: str = ""
) -> str:
    """Render a histogram of ``data`` with ``bins`` equal-width buckets."""
    check_positive("bins", bins)
    if not data:
        return f"{title}\n(no data)"
    lo, hi = min(data), max(data)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in data:
        counts[_scale(v, lo, hi, bins)] += 1
    labels = {
        f"[{lo + (hi - lo) * i / bins:.3g}, {lo + (hi - lo) * (i + 1) / bins:.3g})": c
        for i, c in enumerate(counts)
    }
    return bar_chart({k: float(v) for k, v in labels.items()}, width=width, title=title)
