"""Small argument-validation helpers with uniform error messages.

Used at public API boundaries (runtime configuration, search spaces, layer
constructors) so invalid user input fails fast with a clear message instead
of surfacing as a numpy broadcasting error three layers down.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Type, Union

Number = Union[int, float]


def check_type(name: str, value: Any, types: Union[Type, Sequence[Type]]) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(types, (tuple, list)):
        types = (types,)
    if not isinstance(value, tuple(types)):
        expected = " or ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: Number) -> Number:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str, value: Number, low: Number, high: Number, inclusive: bool = True
) -> Number:
    """Raise :class:`ValueError` unless ``low <= value <= high``.

    With ``inclusive=False`` the bounds are exclusive.
    """
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_one_of(name: str, value: Any, options: Iterable[Any]) -> Any:
    """Raise :class:`ValueError` unless ``value`` is one of ``options``."""
    options = list(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value
