"""Reproduction of *Accelerating Hyperparameter Optimisation with PyCOMPSs*
(Kahira et al., ICPP 2019 workshops).

Subpackages
-----------
* :mod:`repro.pycompss_api` — the PyCOMPSs-compatible user API
  (``@task``, ``@constraint``, ``compss_wait_on`` …).
* :mod:`repro.runtime` — the COMPSs-equivalent runtime: dependency graph,
  schedulers, real and simulated executors, fault tolerance, tracing.
* :mod:`repro.simcluster` — discrete-event cluster simulator with
  MareNostrum 4 / MinoTauro / POWER9 presets and a calibrated cost model.
* :mod:`repro.ml` — a pure-numpy deep-learning framework (the TensorFlow
  stand-in) with synthetic MNIST-like / CIFAR-like datasets.
* :mod:`repro.hpo` — the paper's contribution: distributed hyperparameter
  optimisation (grid/random/Bayesian/TPE/Hyperband) over the runtime,
  plus sequential and process-pool baselines.

Quickstart
----------
>>> from repro.hpo import SearchSpace, GridSearch, PyCOMPSsRunner  # doctest: +SKIP
"""

__version__ = "1.0.0"
