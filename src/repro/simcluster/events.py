"""Minimal discrete-event simulation engine.

The engine keeps a virtual clock and a priority queue of timestamped
callbacks.  Ties are broken by insertion order so simulations are fully
deterministic.  The simulated executor
(:mod:`repro.runtime.executor.simulated`) schedules task completions,
data transfers and failures as events here.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.util.validation import check_non_negative

Action = Callable[..., Any]


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped (standard heapq idiom — removal from the middle of a heap is
    O(n), skipping is O(log n) amortised).
    """

    __slots__ = ("time", "seq", "action", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Action,
        label: str = "",
        args: Tuple[Any, ...] = (),
    ):
        self.time = time
        self.seq = seq
        self.action: Optional[Action] = action
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True
        self.action = None  # drop the reference so closures can be collected

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {self.label or 'event'}, {state})"


class DiscreteEventSimulator:
    """A virtual clock plus a future-event list.

    Example
    -------
    >>> sim = DiscreteEventSimulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        action: Action,
        label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``action`` to fire ``delay`` seconds from now.

        ``args`` are stored on the handle and passed positionally when the
        event fires — cheaper than closing over them in a lambda on hot
        paths that schedule millions of events.
        """
        check_non_negative("delay", delay)
        return self.schedule_at(self._now + delay, action, label, args)

    def schedule_at(
        self,
        time: float,
        action: Action,
        label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self._now}"
            )
        handle = EventHandle(time, next(self._seq), action, label, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when queue is empty."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.action is None:
                continue
            self._now = time
            action, handle.action = handle.action, None
            action(*handle.args)
            self._processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if the queue is empty.

        Skips (and discards) lazily-cancelled entries at the head so the
        answer reflects a live event.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].action is None:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def step_batch(self) -> int:
        """Fire *all* events sharing the earliest pending timestamp.

        Events fire strictly in ``(time, seq)`` order, one at a time, so
        this is observably identical to calling :meth:`step` repeatedly —
        including when a fired event schedules new work at the same
        timestamp (the new event has a larger seq and is picked up by the
        inner loop in order).  Returns the number of events fired (0 when
        the queue is empty).

        This is the k-way batch pop that lets callers amortise their
        per-wake bookkeeping over thousands of homogeneous same-timestamp
        completions instead of paying it per event.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        batch_time: Optional[float] = None
        while heap:
            if batch_time is not None and heap[0][0] != batch_time:
                break
            time, _, handle = pop(heap)
            if handle.action is None:
                continue
            if batch_time is None:
                batch_time = time
                self._now = time
            action, handle.action = handle.action, None
            action(*handle.args)
            fired += 1
        self._processed += fired
        return fired

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            If given, stop once the next event is strictly later than
            ``until`` (the clock is advanced to ``until``).
        max_events:
            Safety valve — raise :class:`RuntimeError` if more than this
            many events fire (guards against self-rescheduling loops).
        """
        fired = 0
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                break
            fired += 1
            if max_events is not None and fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}; "
                    "likely a self-rescheduling event loop"
                )
        if until is not None:
            self._now = max(self._now, until)

    def advance_to(self, time: float) -> None:
        """Advance the clock without firing events (time must not regress)."""
        if time < self._now:
            raise ValueError(f"cannot move clock backwards: {time} < {self._now}")
        self._now = time
