"""Discrete-event cluster simulator.

The paper evaluates on MareNostrum 4 (48-core CPU nodes), MinoTauro
(2 × K80 GPU nodes) and the CTE POWER9 cluster (4 × V100 nodes).  Those
machines are not available here, so this subpackage simulates them: a
virtual-time event engine (:mod:`repro.simcluster.events`), hardware
descriptions and presets (:mod:`~repro.simcluster.node`,
:mod:`~repro.simcluster.machines`), interconnect and storage models
(:mod:`~repro.simcluster.network`, :mod:`~repro.simcluster.storage`), a
training-task cost model calibrated to the durations the paper reports
(:mod:`~repro.simcluster.costmodel`), and failure injection
(:mod:`~repro.simcluster.failures`).

The substitution preserves the paper's observable behaviour because every
figure in the evaluation is a *scheduling* phenomenon — which task runs on
which core/node, when, and for how long — and those are fully determined by
the resource model + cost model + scheduler, all of which we implement.
"""

from repro.simcluster.events import DiscreteEventSimulator, EventHandle
from repro.simcluster.node import NodeSpec, ProcessorKind
from repro.simcluster.machines import (
    ClusterSpec,
    mare_nostrum4,
    minotauro,
    cte_power9,
    local_machine,
    heterogeneous,
)
from repro.simcluster.network import NetworkModel
from repro.simcluster.storage import (
    StorageModel,
    SharedParallelFilesystem,
    LocalDiskStaging,
)
from repro.simcluster.costmodel import (
    DatasetProfile,
    MNIST_LIKE,
    CIFAR10_LIKE,
    TrainingCostModel,
)
from repro.simcluster.failures import FailureInjector, FailurePlan, NodeFailure

__all__ = [
    "DiscreteEventSimulator",
    "EventHandle",
    "NodeSpec",
    "ProcessorKind",
    "ClusterSpec",
    "mare_nostrum4",
    "minotauro",
    "cte_power9",
    "local_machine",
    "heterogeneous",
    "NetworkModel",
    "StorageModel",
    "SharedParallelFilesystem",
    "LocalDiskStaging",
    "DatasetProfile",
    "MNIST_LIKE",
    "CIFAR10_LIKE",
    "TrainingCostModel",
    "FailureInjector",
    "FailurePlan",
    "NodeFailure",
]
