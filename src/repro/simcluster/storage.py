"""Storage models: shared parallel filesystem vs per-node staging.

The paper notes (§4) that when a Parallel File System such as IBM GPFS is
available, all tasks read/write it directly; otherwise COMPSs copies the
data a task needs to the node that runs it.  The two models here let the
simulated executor charge the appropriate staging cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.simcluster.network import NetworkModel
from repro.util.validation import check_non_negative, check_positive


class StorageModel(abc.ABC):
    """Abstract staging-cost model for task input data."""

    @abc.abstractmethod
    def staging_time(self, size_mb: float, node: str) -> float:
        """Seconds to make ``size_mb`` of input available on ``node``."""

    @abc.abstractmethod
    def register_write(self, size_mb: float, node: str) -> float:
        """Record ``node`` producing ``size_mb`` of output; returns write cost."""

    def describe(self) -> str:
        """Human-readable model name."""
        return type(self).__name__


@dataclass
class SharedParallelFilesystem(StorageModel):
    """GPFS-like PFS: every node sees the data; cost is read bandwidth.

    Attributes
    ----------
    read_bandwidth_mbps / write_bandwidth_mbps:
        Aggregate per-client streaming bandwidth.
    """

    read_bandwidth_mbps: float = 4000.0
    write_bandwidth_mbps: float = 2500.0

    def __post_init__(self) -> None:
        check_positive("read_bandwidth_mbps", self.read_bandwidth_mbps)
        check_positive("write_bandwidth_mbps", self.write_bandwidth_mbps)

    def staging_time(self, size_mb: float, node: str) -> float:
        check_non_negative("size_mb", size_mb)
        return size_mb / self.read_bandwidth_mbps

    def register_write(self, size_mb: float, node: str) -> float:
        check_non_negative("size_mb", size_mb)
        return size_mb / self.write_bandwidth_mbps


@dataclass
class LocalDiskStaging(StorageModel):
    """No PFS: data is copied over the network to the executing node once.

    Repeated accesses on the same node are free (the runtime reuses the
    local copy, mirroring COMPSs object reuse, paper §2.2).
    """

    network: NetworkModel = field(default_factory=NetworkModel)
    source_node: str = "master"

    def __post_init__(self) -> None:
        self._resident: Dict[str, Set[str]] = {}

    def staging_time(self, size_mb: float, node: str) -> float:
        check_non_negative("size_mb", size_mb)
        key = f"{size_mb:.6f}"
        nodes = self._resident.setdefault(key, {self.source_node})
        if node in nodes:
            return 0.0
        nodes.add(node)
        return self.network.transfer_time(size_mb, self.source_node, node)

    def register_write(self, size_mb: float, node: str) -> float:
        check_non_negative("size_mb", size_mb)
        # Output stays node-local; zero immediate cost.
        key = f"{size_mb:.6f}"
        self._resident.setdefault(key, set()).add(node)
        return 0.0

    def reset(self) -> None:
        """Forget all staged copies (used between simulated runs)."""
        self._resident.clear()
