"""Interconnect model.

COMPSs transfers task input/output objects between nodes when no shared
parallel filesystem is available (paper §4).  We model a transfer as
``latency + size / bandwidth``, which is the standard LogP-style
first-order model and sufficient for the paper's figures (data movement
is negligible next to multi-minute training tasks, but the model lets us
quantify exactly *how* negligible — and matters in ablations with large
synthetic datasets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point interconnect with uniform latency/bandwidth.

    Attributes
    ----------
    latency_s:
        One-way message latency in seconds.
    bandwidth_mbps:
        Sustained bandwidth in megabytes per second.
    """

    latency_s: float = 2e-6
    bandwidth_mbps: float = 12000.0  # ~100 Gbit/s Omni-Path, as on MN4

    def __post_init__(self) -> None:
        check_non_negative("latency_s", self.latency_s)
        check_positive("bandwidth_mbps", self.bandwidth_mbps)

    def transfer_time(self, size_mb: float, src: str, dst: str) -> float:
        """Seconds to move ``size_mb`` from node ``src`` to node ``dst``.

        Intra-node "transfers" are free (same memory space).
        """
        check_non_negative("size_mb", size_mb)
        if src == dst:
            return 0.0
        return self.latency_s + size_mb / self.bandwidth_mbps

    def broadcast_time(self, size_mb: float, n_destinations: int) -> float:
        """Seconds to fan ``size_mb`` out to ``n_destinations`` nodes.

        Modelled as a binomial tree: ``ceil(log2(n+1))`` sequential rounds.
        """
        check_non_negative("size_mb", size_mb)
        check_non_negative("n_destinations", n_destinations)
        if n_destinations == 0:
            return 0.0
        rounds = max(1, (n_destinations).bit_length())
        return rounds * (self.latency_s + size_mb / self.bandwidth_mbps)
