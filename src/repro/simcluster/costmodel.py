"""Calibrated duration model for training tasks.

The simulated executor charges each ``experiment`` task a duration from
this model instead of (or in addition to) actually running it.  The model
is first-order but captures every effect the paper's evaluation relies on:

* **epochs** scale time linearly (Fig. 5: "tasks take different times …
  due to the different number of epochs");
* **batch size** changes the number of optimiser steps and hence the
  per-step framework overhead (smaller batches → slower epochs);
* **optimiser** adds a small multiplicative factor (Adam > RMSprop > SGD);
* **multi-core speed-up** follows Amdahl's law with a serial fraction, so
  Fig. 9's diminishing returns appear naturally;
* **GPU path** is a two-stage pipeline: CPU preprocessing feeds the GPU;
  with one core the GPU starves (Fig. 9: "a powerful GPU with just a
  single core is irrelevant as it will be idle most of the time").

Calibration anchors from the paper's text:

* one MNIST task on one MareNostrum 4 core ≈ 29 min (Fig. 4);
* the 27-task MNIST grid on 24 usable cores ≈ 207 min (Fig. 5);
* the single-node time-vs-cores curve has its minimum at 4 cores/task
  (Fig. 9) — this emerges from the interaction of Amdahl speed-up and
  wave scheduling, not from a hard-coded constant;
* the whole CIFAR HPO on the 4 × V100 node drops below one hour at high
  core counts, yet is slower than the CPU node at one core per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.simcluster.node import NodeSpec
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DatasetProfile:
    """Workload description of a dataset as seen by the cost model.

    Attributes
    ----------
    name:
        Dataset label (matched against the task's ``dataset`` hyperparam).
    n_train_samples:
        Samples visited per epoch.
    size_mb:
        On-disk size, used by the storage/network models for staging.
    work_gflop_per_sample:
        Forward+backward GFLOP per sample for the reference model.
    preprocess_gflop_per_sample:
        CPU-side input-pipeline GFLOP per sample (decode/augment); on the
        GPU path this runs on the host cores.
    """

    name: str
    n_train_samples: int
    size_mb: float
    work_gflop_per_sample: float
    preprocess_gflop_per_sample: float

    def __post_init__(self) -> None:
        check_positive("n_train_samples", self.n_train_samples)
        check_positive("size_mb", self.size_mb)
        check_positive("work_gflop_per_sample", self.work_gflop_per_sample)
        check_non_negative(
            "preprocess_gflop_per_sample", self.preprocess_gflop_per_sample
        )


#: MNIST-scale workload: 60 k small greyscale images, light MLP/CNN.
MNIST_LIKE = DatasetProfile(
    name="mnist",
    n_train_samples=60_000,
    size_mb=52.0,
    work_gflop_per_sample=0.0074,
    preprocess_gflop_per_sample=0.0008,
)

#: CIFAR-10-scale workload: 50 k RGB images, small conv net — ~7× the
#: per-sample work of the MNIST model.
CIFAR10_LIKE = DatasetProfile(
    name="cifar10",
    n_train_samples=50_000,
    size_mb=170.0,
    work_gflop_per_sample=0.060,
    preprocess_gflop_per_sample=0.006,
)

#: Relative cost of one optimiser step (update math + extra state reads).
DEFAULT_OPTIMIZER_FACTORS: Dict[str, float] = {
    "SGD": 1.00,
    "RMSprop": 1.08,
    "Adam": 1.15,
}


def amdahl_speedup(cores: int, serial_fraction: float) -> float:
    """Amdahl's-law speed-up of ``cores`` with the given serial fraction.

    >>> round(amdahl_speedup(1, 0.08), 3)
    1.0
    >>> amdahl_speedup(48, 0.0)
    48.0
    """
    check_positive("cores", cores)
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial_fraction must be in [0, 1], got {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / cores)


@dataclass
class TrainingCostModel:
    """Turns (hyperparameters, dataset, resources) into a task duration.

    All knobs are public dataclass fields so the ablation benchmarks can
    sweep them (e.g. ``serial_fraction``) and show how the Fig. 9 curve
    shape depends on them.

    Attributes
    ----------
    serial_fraction:
        Amdahl serial fraction of the training compute.
    step_overhead_s:
        Fixed framework cost per optimiser step (graph dispatch, Python
        glue); does not parallelise.
    startup_s:
        Per-task one-off cost: worker spawn, framework import, model build.
    gpu_efficiency:
        Fraction of GPU peak the training kernels sustain.
    gpu_pipeline_overhead_s:
        Per-epoch host↔device synchronisation cost on the GPU path.
    optimizer_factors:
        Multiplicative per-optimiser cost factors.
    datasets:
        Known dataset profiles by name.
    """

    serial_fraction: float = 0.02
    step_overhead_s: float = 0.014
    startup_s: float = 25.0
    gpu_efficiency: float = 0.06
    gpu_pipeline_overhead_s: float = 0.5
    optimizer_factors: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_OPTIMIZER_FACTORS)
    )
    datasets: Mapping[str, DatasetProfile] = field(
        default_factory=lambda: {p.name: p for p in (MNIST_LIKE, CIFAR10_LIKE)}
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1], got {self.serial_fraction}"
            )
        check_non_negative("step_overhead_s", self.step_overhead_s)
        check_non_negative("startup_s", self.startup_s)
        check_positive("gpu_efficiency", self.gpu_efficiency)

    # ------------------------------------------------------------------
    # Per-epoch components
    # ------------------------------------------------------------------
    def cpu_epoch_seconds(
        self,
        dataset: DatasetProfile,
        node: NodeSpec,
        cpu_units: int,
        batch_size: int,
        optimizer: str = "SGD",
    ) -> float:
        """Seconds for one epoch on ``cpu_units`` cores of ``node``."""
        check_positive("cpu_units", cpu_units)
        check_positive("batch_size", batch_size)
        compute_gflop = dataset.n_train_samples * (
            dataset.work_gflop_per_sample + dataset.preprocess_gflop_per_sample
        )
        speedup = amdahl_speedup(cpu_units, self.serial_fraction)
        compute_s = compute_gflop / (node.core_gflops * speedup)
        steps = -(-dataset.n_train_samples // batch_size)  # ceil division
        overhead_s = steps * self.step_overhead_s
        return (compute_s + overhead_s) * self._optimizer_factor(optimizer)

    def gpu_epoch_seconds(
        self,
        dataset: DatasetProfile,
        node: NodeSpec,
        cpu_units: int,
        batch_size: int,
        optimizer: str = "SGD",
    ) -> float:
        """Seconds for one epoch with the GPU path (host cores preprocess).

        The epoch is a producer/consumer pipeline: throughput is set by
        the slower of CPU preprocessing and GPU compute.
        """
        check_positive("cpu_units", cpu_units)
        check_positive("batch_size", batch_size)
        if node.gpus == 0:
            raise ValueError(f"node {node.name!r} has no GPUs")
        gpu_gflop = dataset.n_train_samples * dataset.work_gflop_per_sample
        gpu_s = gpu_gflop / (node.gpu_gflops * self.gpu_efficiency)
        pre_gflop = dataset.n_train_samples * dataset.preprocess_gflop_per_sample
        pre_s = pre_gflop / (node.core_gflops * cpu_units)
        bottleneck = max(gpu_s, pre_s)
        return (
            bottleneck * self._optimizer_factor(optimizer)
            + self.gpu_pipeline_overhead_s
        )

    # ------------------------------------------------------------------
    # Whole-task duration
    # ------------------------------------------------------------------
    def task_duration(
        self,
        dataset: "DatasetProfile | str",
        node: NodeSpec,
        cpu_units: int,
        gpu_units: int,
        epochs: int,
        batch_size: int,
        optimizer: str = "SGD",
    ) -> float:
        """Total seconds for one training task (startup + epochs).

        ``dataset`` may be a profile or the name of a registered profile.
        """
        profile = self._resolve_dataset(dataset)
        check_positive("epochs", epochs)
        check_non_negative("gpu_units", gpu_units)
        if gpu_units > 0:
            epoch_s = self.gpu_epoch_seconds(
                profile, node, cpu_units, batch_size, optimizer
            )
        else:
            epoch_s = self.cpu_epoch_seconds(
                profile, node, cpu_units, batch_size, optimizer
            )
        return self.startup_s + epochs * epoch_s

    def duration_for_config(
        self,
        config: Mapping[str, object],
        node: NodeSpec,
        cpu_units: int,
        gpu_units: int,
        default_dataset: "DatasetProfile | str" = MNIST_LIKE,
    ) -> float:
        """Duration for an HPO-style config dict.

        Recognised keys (all optional): ``dataset``, ``num_epochs`` (or
        ``epochs``), ``batch_size``, ``optimizer`` — exactly the
        hyperparameters of the paper's Listing 1.
        """
        dataset = config.get("dataset", default_dataset)
        epochs = int(config.get("num_epochs", config.get("epochs", 20)))
        batch_size = int(config.get("batch_size", 32))
        optimizer = str(config.get("optimizer", "SGD"))
        return self.task_duration(
            dataset, node, cpu_units, gpu_units, epochs, batch_size, optimizer
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _optimizer_factor(self, optimizer: str) -> float:
        return float(self.optimizer_factors.get(optimizer, 1.0))

    def _resolve_dataset(self, dataset: "DatasetProfile | str") -> DatasetProfile:
        if isinstance(dataset, DatasetProfile):
            return dataset
        try:
            return self.datasets[str(dataset)]
        except KeyError:
            raise KeyError(
                f"unknown dataset {dataset!r}; known: {sorted(self.datasets)}"
            ) from None

    def register_dataset(self, profile: DatasetProfile) -> None:
        """Add (or replace) a dataset profile by name."""
        if not isinstance(self.datasets, dict):
            self.datasets = dict(self.datasets)
        self.datasets[profile.name] = profile
