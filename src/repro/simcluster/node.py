"""Hardware description of a cluster node.

A :class:`NodeSpec` is a pure description (no mutable state); slot
accounting during scheduling lives in :mod:`repro.runtime.resources`.
Specs carry enough detail for the cost model: per-core throughput,
per-GPU throughput, and host/device memory sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.util.validation import check_non_negative, check_positive


class ProcessorKind(str, enum.Enum):
    """Processor types a `@constraint` can request (paper §3, Listing 2)."""

    CPU = "CPU"
    GPU = "GPU"


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of one cluster node.

    Attributes
    ----------
    name:
        Unique node name, e.g. ``"mn4-0003"``.
    cpu_cores:
        Number of schedulable CPU computing units (hardware threads for
        SMT machines such as POWER9, physical cores otherwise — this
        matches how COMPSs counts ComputingUnits).
    gpus:
        Number of GPU computing units.
    memory_gb:
        Host memory available to tasks.
    core_gflops:
        Sustained throughput of one CPU computing unit, used by the cost
        model to turn work (GFLOP) into seconds.
    gpu_gflops:
        Sustained throughput of one GPU.
    gpu_memory_gb:
        Device memory per GPU.
    labels:
        Free-form key/value tags (e.g. ``{"arch": "power9"}``) that
        constraints may match on.
    """

    name: str
    cpu_cores: int
    gpus: int = 0
    memory_gb: float = 96.0
    core_gflops: float = 8.0
    gpu_gflops: float = 0.0
    gpu_memory_gb: float = 0.0
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        check_positive("cpu_cores", self.cpu_cores)
        check_non_negative("gpus", self.gpus)
        check_positive("memory_gb", self.memory_gb)
        check_positive("core_gflops", self.core_gflops)
        if self.gpus > 0:
            check_positive("gpu_gflops", self.gpu_gflops)
            check_positive("gpu_memory_gb", self.gpu_memory_gb)

    @property
    def total_gflops(self) -> float:
        """Aggregate peak throughput of the node (CPU + GPU)."""
        return self.cpu_cores * self.core_gflops + self.gpus * self.gpu_gflops

    def can_ever_satisfy(self, cpu_units: int, gpu_units: int, memory_gb: float) -> bool:
        """Whether a request could fit this node even when idle."""
        return (
            cpu_units <= self.cpu_cores
            and gpu_units <= self.gpus
            and memory_gb <= self.memory_gb
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        gpu = f", {self.gpus} GPU ({self.gpu_gflops:g} GF/GPU)" if self.gpus else ""
        return (
            f"{self.name}: {self.cpu_cores} cores ({self.core_gflops:g} GF/core)"
            f"{gpu}, {self.memory_gb:g} GB"
        )
