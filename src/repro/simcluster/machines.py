"""Cluster presets matching the machines in the paper's §5.

* **MareNostrum 4** — 2 × Intel Xeon Platinum 8160, 24 cores each → 48
  cores/node, 96 GB, no GPUs.
* **MinoTauro** — 2 × NVIDIA K80 cards and 2 × Xeon E5-2630 v3 8-core
  (16 cores/node).  A K80 card holds two GK210 dies; the paper schedules
  per-card, so we expose 2 GPU computing units.
* **CTE POWER9** — 2 × POWER9 8335-GTH (20 cores, 4 threads/core → 160
  hardware threads) and 4 × V100-16GB.

Throughput constants are rough public figures; absolute accuracy is not
needed because the cost model is calibrated end-to-end against the task
durations the paper reports (see :mod:`repro.simcluster.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.simcluster.network import NetworkModel
from repro.simcluster.node import NodeSpec
from repro.simcluster.storage import SharedParallelFilesystem, StorageModel
from repro.util.validation import check_positive


@dataclass
class ClusterSpec:
    """A set of nodes plus interconnect and storage models."""

    name: str
    nodes: List[NodeSpec]
    network: NetworkModel = field(default_factory=NetworkModel)
    storage: StorageModel = field(default_factory=SharedParallelFilesystem)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in cluster: {names}")

    def __iter__(self) -> Iterator[NodeSpec]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_cpu_cores(self) -> int:
        """Sum of CPU computing units across nodes."""
        return sum(n.cpu_cores for n in self.nodes)

    @property
    def total_gpus(self) -> int:
        """Sum of GPU computing units across nodes."""
        return sum(n.gpus for n in self.nodes)

    def node(self, name: str) -> NodeSpec:
        """Look a node up by name (KeyError if absent)."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"no node named {name!r} in cluster {self.name!r}")

    def describe(self) -> str:
        """Multi-line human-readable cluster summary."""
        lines = [
            f"cluster {self.name}: {len(self.nodes)} nodes, "
            f"{self.total_cpu_cores} cores, {self.total_gpus} GPUs "
            f"({self.storage.describe()})"
        ]
        lines.extend("  " + n.describe() for n in self.nodes)
        return "\n".join(lines)


def _make_nodes(
    prefix: str,
    n_nodes: int,
    cpu_cores: int,
    gpus: int,
    memory_gb: float,
    core_gflops: float,
    gpu_gflops: float,
    gpu_memory_gb: float,
    labels: Optional[dict] = None,
) -> List[NodeSpec]:
    check_positive("n_nodes", n_nodes)
    return [
        NodeSpec(
            name=f"{prefix}-{i:04d}",
            cpu_cores=cpu_cores,
            gpus=gpus,
            memory_gb=memory_gb,
            core_gflops=core_gflops,
            gpu_gflops=gpu_gflops,
            gpu_memory_gb=gpu_memory_gb,
            labels=dict(labels or {}),
        )
        for i in range(1, n_nodes + 1)
    ]


def mare_nostrum4(n_nodes: int = 1) -> ClusterSpec:
    """MareNostrum 4 general-purpose partition: 48-core Skylake nodes."""
    return ClusterSpec(
        name=f"MareNostrum4-{n_nodes}n",
        nodes=_make_nodes(
            "mn4", n_nodes, cpu_cores=48, gpus=0, memory_gb=96.0,
            core_gflops=8.0, gpu_gflops=0.0, gpu_memory_gb=0.0,
            labels={"arch": "skylake"},
        ),
    )


def minotauro(n_nodes: int = 1) -> ClusterSpec:
    """MinoTauro K80 partition: 16 Haswell cores + 2 K80 cards per node."""
    return ClusterSpec(
        name=f"MinoTauro-{n_nodes}n",
        nodes=_make_nodes(
            "mt", n_nodes, cpu_cores=16, gpus=2, memory_gb=128.0,
            core_gflops=6.0, gpu_gflops=2900.0, gpu_memory_gb=24.0,
            labels={"arch": "haswell", "gpu": "k80"},
        ),
    )


def cte_power9(n_nodes: int = 1) -> ClusterSpec:
    """CTE POWER9: 160 hardware threads + 4 × V100-16GB per node."""
    return ClusterSpec(
        name=f"CTE-POWER9-{n_nodes}n",
        nodes=_make_nodes(
            "p9", n_nodes, cpu_cores=160, gpus=4, memory_gb=512.0,
            core_gflops=4.0, gpu_gflops=7800.0, gpu_memory_gb=16.0,
            labels={"arch": "power9", "gpu": "v100"},
        ),
    )


def local_machine(cpu_cores: int = 4, gpus: int = 0, name: str = "local") -> ClusterSpec:
    """A single small node, used by tests and the local executor."""
    check_positive("cpu_cores", cpu_cores)
    node = NodeSpec(
        name=name,
        cpu_cores=cpu_cores,
        gpus=gpus,
        memory_gb=16.0,
        core_gflops=8.0,
        gpu_gflops=5000.0 if gpus else 0.0,
        gpu_memory_gb=8.0 if gpus else 0.0,
    )
    return ClusterSpec(name=f"local-{cpu_cores}c", nodes=[node])


def heterogeneous(
    cpu_nodes: int = 2, gpu_nodes: int = 1, name: str = "hetero"
) -> ClusterSpec:
    """A mixed CPU+GPU cluster (used by `@implement` / constraint tests)."""
    nodes: List[NodeSpec] = []
    nodes.extend(
        _make_nodes("cpu", cpu_nodes, 48, 0, 96.0, 8.0, 0.0, 0.0,
                    labels={"arch": "skylake"})
        if cpu_nodes else []
    )
    nodes.extend(
        _make_nodes("gpu", gpu_nodes, 160, 4, 512.0, 4.0, 7800.0, 16.0,
                    labels={"arch": "power9", "gpu": "v100"})
        if gpu_nodes else []
    )
    return ClusterSpec(name=name, nodes=nodes)
