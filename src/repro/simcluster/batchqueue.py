"""Batch-queue (SLURM-like) submission model.

The paper's §2.2 dismisses doing HPO "in existing job schedulers such as
slurm [which] requires multiple reservations and a serious developer's
effort".  To *quantify* that claim we model the job-queue alternative:
each training runs as its own batch job, paying a queue wait before it
starts.  Queue wait grows with the requested node count and with system
load — the standard backfill behaviour users experience on shared
clusters.

The model is deliberately simple (deterministic, three knobs) but captures
the two effects that matter for the comparison benchmark:

* every independent job pays its own wait, while a PyCOMPSs run pays one;
* wider jobs wait longer, so per-task reservations of whole nodes queue
  badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class QueueWaitModel:
    """Deterministic queue-wait estimate for one job submission.

    ``wait = base + per_node · nodes + congestion · jobs_ahead``

    Attributes
    ----------
    base_wait_s:
        Fixed scheduling latency of any job.
    per_node_s:
        Extra wait per requested node (wider jobs backfill worse).
    congestion_s:
        Extra wait per job already sitting in the user's queue — batch
        systems throttle per-user throughput, so the 27th simultaneous
        submission waits far longer than the 1st.
    """

    base_wait_s: float = 120.0
    per_node_s: float = 300.0
    congestion_s: float = 240.0

    def __post_init__(self) -> None:
        check_non_negative("base_wait_s", self.base_wait_s)
        check_non_negative("per_node_s", self.per_node_s)
        check_non_negative("congestion_s", self.congestion_s)

    def wait_for(self, nodes: int, jobs_ahead: int) -> float:
        """Queue wait for a job of ``nodes`` with ``jobs_ahead`` queued."""
        check_positive("nodes", nodes)
        check_non_negative("jobs_ahead", jobs_ahead)
        return (
            self.base_wait_s
            + self.per_node_s * nodes
            + self.congestion_s * jobs_ahead
        )


@dataclass
class BatchJob:
    """One batch submission: requested nodes + run duration."""

    nodes: int
    duration_s: float

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_non_negative("duration_s", self.duration_s)


def simulate_job_campaign(
    jobs: Sequence[BatchJob],
    wait_model: QueueWaitModel = QueueWaitModel(),
    max_concurrent_jobs: int = 8,
) -> Tuple[float, List[Tuple[float, float]]]:
    """Simulate submitting every job at t=0 to a shared batch system.

    The user-level concurrency cap (``max_concurrent_jobs``, a typical
    per-user running-job limit) plus the congestion term serialise large
    campaigns.  Returns ``(makespan, [(start, end)] per job)``.
    """
    check_positive("max_concurrent_jobs", max_concurrent_jobs)
    running_ends: List[float] = []
    schedule: List[Tuple[float, float]] = []
    for i, job in enumerate(jobs):
        wait = wait_model.wait_for(job.nodes, jobs_ahead=i)
        earliest = wait
        if len(running_ends) >= max_concurrent_jobs:
            # Must wait for a running-job slot too.
            running_ends.sort()
            earliest = max(earliest, running_ends.pop(0))
        start = earliest
        end = start + job.duration_s
        running_ends.append(end)
        schedule.append((start, end))
    makespan = max((end for _, end in schedule), default=0.0)
    return makespan, schedule


def hpo_as_job_campaign(
    task_durations: Sequence[float],
    nodes_per_job: int = 1,
    wait_model: QueueWaitModel = QueueWaitModel(),
    max_concurrent_jobs: int = 8,
) -> float:
    """Makespan of running an HPO study as one batch job per trial."""
    jobs = [BatchJob(nodes=nodes_per_job, duration_s=d) for d in task_durations]
    makespan, _ = simulate_job_campaign(jobs, wait_model, max_concurrent_jobs)
    return makespan


def hpo_as_single_reservation(
    pycompss_makespan_s: float,
    nodes: int,
    wait_model: QueueWaitModel = QueueWaitModel(),
) -> float:
    """Total time of the PyCOMPSs alternative: one reservation, one wait."""
    check_non_negative("pycompss_makespan_s", pycompss_makespan_s)
    return wait_model.wait_for(nodes, jobs_ahead=0) + pycompss_makespan_s
