"""Failure injection for fault-tolerance experiments.

The paper (§3/§4) describes COMPSs' two-level fault tolerance: a failed
task is first retried on the same node; if it fails again it is resubmitted
to a different node; other tasks are unaffected.  To exercise that code we
need controllable failures: a deterministic :class:`FailurePlan` (fail
attempt *k* of task *t*, or kill node *n* at time *T*) and a stochastic
:class:`FailureInjector` (per-attempt failure probability from a seeded
RNG).  Both are consumed by the executors in
:mod:`repro.runtime.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class NodeFailure:
    """A node that becomes unavailable at ``time`` (virtual seconds).

    With ``recovery_time`` set, the node rejoins the pool at that time.
    ``destroy_data`` (default True — real node loss takes its memory with
    it) makes the failure also destroy the data versions resident on the
    node, triggering lineage-based recovery; False models a clean drain
    where results were already shipped off.
    """

    node: str
    time: float
    recovery_time: Optional[float] = None
    destroy_data: bool = True

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        if self.recovery_time is not None and self.recovery_time <= self.time:
            raise ValueError(
                f"recovery_time ({self.recovery_time}) must be after "
                f"failure time ({self.time})"
            )


@dataclass
class FailurePlan:
    """A deterministic script of failures.

    Attributes
    ----------
    task_failures:
        Set of ``(task_label, attempt_index)`` pairs that must fail
        (attempts are numbered from 0).  E.g. ``{("experiment-3", 0)}``
        makes task ``experiment-3`` fail on its first try and succeed on
        the retry.
    node_failures:
        Scripted node outages for the simulated executor.
    task_hangs:
        ``(task_label, attempt_index)`` pairs whose attempt never
        completes — exercises the ``task_timeout_s`` deadline path.
    task_slowdowns:
        ``task_label → factor`` duration multipliers (straggler
        injection); speculative backup attempts are NOT slowed, modelling
        node-local slowness.
    output_corruptions:
        ``task_label → scope`` silent bit-flips applied to the task's
        sealed outputs right after it completes.  Scope ``"primary"``
        corrupts the consumer-facing copy only (a replica survives);
        ``"all"`` corrupts every copy, forcing a lineage recompute.
    transfer_failures:
        ``(consumer_label, attempt)`` pairs whose cross-node input
        transfer tears on that attempt (attempts numbered from 0 within
        one staging sequence) — exercises the transfer-retry path.
    link_slowdowns:
        ``(src, dst) → factor`` transfer-time multipliers (degraded
        links); applied on top of the network model.
    cache_corruptions:
        Task labels whose first reuse-cache publication is bit-rotted in
        place (payload flipped, sidecar digest intact) — exercises the
        verified-hit path: the next reader must detect the mismatch and
        recompute, never consume the bad bytes.
    cache_stalls:
        Task labels whose first reuse-cache publication is replaced by a
        wedged single-flight lease (no entry lands, lease file survives)
        — models a writer SIGKILLed mid-stage; waiters must expire the
        lease or time out and recompute.
    """

    task_failures: Set[Tuple[str, int]] = field(default_factory=set)
    node_failures: List[NodeFailure] = field(default_factory=list)
    task_hangs: Set[Tuple[str, int]] = field(default_factory=set)
    task_slowdowns: Dict[str, float] = field(default_factory=dict)
    output_corruptions: Dict[str, str] = field(default_factory=dict)
    transfer_failures: Set[Tuple[str, int]] = field(default_factory=set)
    link_slowdowns: Dict[Tuple[str, str], float] = field(default_factory=dict)
    cache_corruptions: Set[str] = field(default_factory=set)
    cache_stalls: Set[str] = field(default_factory=set)

    def fail_task(self, task_label: str, *attempts: int) -> "FailurePlan":
        """Schedule ``task_label`` to fail on the given attempt numbers."""
        for a in attempts:
            check_non_negative("attempt", a)
            self.task_failures.add((task_label, a))
        return self

    def fail_node(
        self,
        node: str,
        time: float,
        recovery_time: Optional[float] = None,
        destroy_data: bool = True,
    ) -> "FailurePlan":
        """Schedule node ``node`` to fail at virtual ``time``.

        ``destroy_data=False`` models a clean drain (results already
        shipped); the default also destroys resident data versions.
        """
        self.node_failures.append(
            NodeFailure(node, time, recovery_time, destroy_data)
        )
        return self

    def hang_task(self, task_label: str, *attempts: int) -> "FailurePlan":
        """Make the given attempts of ``task_label`` hang forever.

        A hung attempt only terminates through the runtime's deadline
        (``RuntimeConfig.task_timeout_s``), which converts it into a
        retryable failure.
        """
        for a in attempts:
            check_non_negative("attempt", a)
            self.task_hangs.add((task_label, a))
        return self

    def slow_task(self, task_label: str, factor: float) -> "FailurePlan":
        """Multiply ``task_label``'s duration by ``factor`` (straggler)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self.task_slowdowns[task_label] = float(factor)
        return self

    def corrupt_output(
        self, task_label: str, scope: str = "primary"
    ) -> "FailurePlan":
        """Silently corrupt ``task_label``'s output after it completes.

        ``scope="primary"`` leaves replicas intact (repair re-fetches);
        ``scope="all"`` destroys every copy (repair must recompute).
        """
        if scope not in ("primary", "all"):
            raise ValueError(f"scope must be 'primary' or 'all', got {scope!r}")
        self.output_corruptions[task_label] = scope
        return self

    def fail_transfer(self, consumer_label: str, *attempts: int) -> "FailurePlan":
        """Tear ``consumer_label``'s input transfer on the given attempts."""
        for a in attempts:
            check_non_negative("attempt", a)
            self.transfer_failures.add((consumer_label, a))
        return self

    def degrade_link(self, src: str, dst: str, factor: float) -> "FailurePlan":
        """Multiply ``src → dst`` transfer times by ``factor``."""
        if factor <= 0:
            raise ValueError(f"link factor must be > 0, got {factor}")
        self.link_slowdowns[(src, dst)] = float(factor)
        return self

    def corrupt_cache_entry(self, task_label: str) -> "FailurePlan":
        """Bit-rot ``task_label``'s first reuse-cache entry after publish.

        The payload is flipped in place while the ``.sum`` sidecar keeps
        the original digest, so the corruption is only discoverable at
        hit-verify time — exactly the bit-rot scenario the verified-hit
        contract exists for.
        """
        self.cache_corruptions.add(task_label)
        return self

    def stall_cache_lease(self, task_label: str) -> "FailurePlan":
        """Wedge ``task_label``'s first publication into a stuck lease.

        The stage completes but never publishes; its single-flight lease
        file is left behind as if the writer were SIGKILLed mid-write.
        Readers must break the lease once stale (or time out) and
        recompute.
        """
        self.cache_stalls.add(task_label)
        return self

    def should_fail(self, task_label: str, attempt: int) -> bool:
        """Whether this attempt of this task is scripted to fail."""
        return (task_label, attempt) in self.task_failures

    def should_hang(self, task_label: str, attempt: int) -> bool:
        """Whether this attempt of this task is scripted to hang."""
        return (task_label, attempt) in self.task_hangs

    def slow_factor(self, task_label: str) -> float:
        """Duration multiplier for ``task_label`` (1.0 = unaffected)."""
        return self.task_slowdowns.get(task_label, 1.0)

    def corruption_scope(self, task_label: str) -> Optional[str]:
        """Scripted corruption scope for ``task_label`` (None = none)."""
        return self.output_corruptions.get(task_label)

    def should_fail_transfer(self, consumer_label: str, attempt: int) -> bool:
        """Whether this staging attempt of this consumer is scripted to tear."""
        return (consumer_label, attempt) in self.transfer_failures

    def link_factor(self, src: str, dst: str) -> float:
        """Transfer-time multiplier for the ``src → dst`` link (1.0 = ok)."""
        return self.link_slowdowns.get((src, dst), 1.0)

    def cache_corruption(self, task_label: str) -> bool:
        """Whether ``task_label``'s cache entry is scripted to bit-rot."""
        return task_label in self.cache_corruptions

    def cache_stall(self, task_label: str) -> bool:
        """Whether ``task_label``'s publication is scripted to wedge."""
        return task_label in self.cache_stalls


@dataclass(frozen=True)
class PreemptionNotice:
    """A spot-style preemption: advance notice at ``time``, loss at
    ``time + lead_s``.

    The simulated executor honours the notice by draining the node
    (finish running tasks, no new placements, spill resident data); at
    the deadline an incomplete drain escalates to a data-destroying node
    failure, a complete one retires the node cleanly.  With ``rejoin_at``
    set the node elastically rejoins at that time.
    """

    node: str
    time: float
    lead_s: float = 60.0
    rejoin_at: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        if self.lead_s <= 0:
            raise ValueError(f"lead_s must be > 0, got {self.lead_s}")
        if self.rejoin_at is not None and self.rejoin_at <= self.time + self.lead_s:
            raise ValueError(
                f"rejoin_at ({self.rejoin_at}) must be after the preemption "
                f"deadline ({self.time + self.lead_s})"
            )


@dataclass(frozen=True)
class MassLoss:
    """A storm: ``k`` nodes lost at once with no notice (data destroyed)."""

    time: float
    nodes: Tuple[str, ...]
    rejoin_at: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        if not self.nodes:
            raise ValueError("a storm must name at least one node")
        if self.rejoin_at is not None and self.rejoin_at <= self.time:
            raise ValueError(
                f"rejoin_at ({self.rejoin_at}) must be after the storm "
                f"({self.time})"
            )


@dataclass(frozen=True)
class NodeRejoin:
    """A node (previously lost or retired) elastically rejoins at ``time``."""

    node: str
    time: float

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)


@dataclass
class ChurnPlan:
    """Cluster churn: scripted preemption notices, storms, and rejoins,
    plus an optional stochastic spot-churn component.

    Scripted events are built with :meth:`notice` / :meth:`storm` /
    :meth:`rejoin`.  The stochastic component (:meth:`stochastic`) models
    sustained spot-market churn: the horizon is cut into windows of
    ``interval_s`` and every node draws once per window — with
    probability ``preempt_prob`` it receives a preemption notice at a
    seeded offset inside the window, with ``lead_s`` of lead time and
    (when ``rejoin_delay_s`` is set) a rejoin that long after the loss.
    Draws are keyed by ``(seed, node, window)`` so the pattern is
    bit-reproducible and independent of execution order.
    """

    notices: List[PreemptionNotice] = field(default_factory=list)
    storms: List[MassLoss] = field(default_factory=list)
    rejoins: List[NodeRejoin] = field(default_factory=list)
    preempt_prob: float = 0.0
    interval_s: float = 300.0
    horizon_s: float = 0.0
    lead_s: float = 60.0
    rejoin_delay_s: Optional[float] = None
    seed: int = 0

    def notice(
        self,
        node: str,
        time: float,
        lead_s: float = 60.0,
        rejoin_at: Optional[float] = None,
    ) -> "ChurnPlan":
        """Schedule a preemption notice for ``node`` at ``time``."""
        self.notices.append(PreemptionNotice(node, time, lead_s, rejoin_at))
        return self

    def storm(
        self, time: float, *nodes: str, rejoin_at: Optional[float] = None
    ) -> "ChurnPlan":
        """Schedule a mass loss of ``nodes`` at ``time`` (no notice)."""
        self.storms.append(MassLoss(time, tuple(nodes), rejoin_at))
        return self

    def rejoin(self, node: str, time: float) -> "ChurnPlan":
        """Schedule ``node`` to elastically rejoin at ``time``."""
        self.rejoins.append(NodeRejoin(node, time))
        return self

    def stochastic(
        self,
        preempt_prob: float,
        interval_s: float,
        horizon_s: float,
        lead_s: float = 60.0,
        rejoin_delay_s: Optional[float] = None,
        seed: int = 0,
    ) -> "ChurnPlan":
        """Enable the seeded stochastic spot-churn component."""
        check_in_range("preempt_prob", preempt_prob, 0.0, 1.0)
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        check_non_negative("horizon_s", horizon_s)
        if lead_s <= 0:
            raise ValueError(f"lead_s must be > 0, got {lead_s}")
        if rejoin_delay_s is not None and rejoin_delay_s <= 0:
            raise ValueError(
                f"rejoin_delay_s must be > 0, got {rejoin_delay_s}"
            )
        self.preempt_prob = preempt_prob
        self.interval_s = float(interval_s)
        self.horizon_s = float(horizon_s)
        self.lead_s = float(lead_s)
        self.rejoin_delay_s = rejoin_delay_s
        self.seed = seed
        return self

    def materialize(self, node_names: List[str]) -> List[object]:
        """Scripted plus stochastically-drawn events, deterministically.

        The stochastic draws are pure functions of ``(seed, node,
        window)``, so the same plan over the same node set always yields
        the same event list regardless of when or how often this is
        called.
        """
        events: List[object] = list(self.notices) + list(self.storms)
        events += list(self.rejoins)
        if self.preempt_prob > 0.0 and self.horizon_s > 0.0:
            windows = int(self.horizon_s // self.interval_s)
            for node in sorted(node_names):
                for k in range(windows):
                    rng = rng_from(self.seed, f"churn/{node}/{k}")
                    if rng.random() >= self.preempt_prob:
                        continue
                    t = k * self.interval_s + rng.random() * (
                        self.interval_s - self.lead_s
                        if self.interval_s > self.lead_s
                        else self.interval_s
                    )
                    rejoin_at = None
                    if self.rejoin_delay_s is not None:
                        rejoin_at = t + self.lead_s + self.rejoin_delay_s
                    events.append(
                        PreemptionNotice(node, t, self.lead_s, rejoin_at)
                    )
        # Deterministic order: by time, then a stable type/node key.
        def _key(e: object):
            if isinstance(e, MassLoss):
                return (e.time, 0, ",".join(e.nodes))
            if isinstance(e, PreemptionNotice):
                return (e.time, 1, e.node)
            return (e.time, 2, e.node)

        return sorted(events, key=_key)


class FailureInjector:
    """Combines a deterministic plan with optional random task failures.

    Parameters
    ----------
    plan:
        Scripted failures (always honoured).
    task_failure_prob:
        Additional i.i.d. probability that any attempt fails.
    output_corrupt_prob:
        I.i.d. probability that a completed task's sealed output is
        silently bit-flipped (primary copy only — replicas survive, so
        repair paths stay reachable).  Each completion of a label draws
        afresh, so a recomputed writer is not doomed to re-corrupt.
    transfer_failure_prob:
        I.i.d. probability that one cross-node staging attempt tears.
        Each attempt (including retries and re-stagings) draws afresh.
    cache_corrupt_prob:
        I.i.d. probability that one reuse-cache publication is bit-rotted
        in place right after landing (sidecar digest intact).  Each
        publication of a label draws afresh, so a republished entry is
        not doomed to re-corrupt.
    seed:
        Seed for the random component; identical seeds reproduce the
        exact same failure pattern (attempts are counted, not timed, so
        reproduction is independent of execution order jitter).
    churn:
        Optional :class:`ChurnPlan` — preemption notices, storms, and
        elastic rejoins consumed by the simulated executor.
    """

    def __init__(
        self,
        plan: Optional[FailurePlan] = None,
        task_failure_prob: float = 0.0,
        seed: int = 0,
        output_corrupt_prob: float = 0.0,
        transfer_failure_prob: float = 0.0,
        churn: Optional[ChurnPlan] = None,
        cache_corrupt_prob: float = 0.0,
    ) -> None:
        check_in_range("task_failure_prob", task_failure_prob, 0.0, 1.0)
        check_in_range("output_corrupt_prob", output_corrupt_prob, 0.0, 1.0)
        check_in_range("transfer_failure_prob", transfer_failure_prob, 0.0, 1.0)
        check_in_range("cache_corrupt_prob", cache_corrupt_prob, 0.0, 1.0)
        self.plan = plan or FailurePlan()
        self.churn = churn
        self.task_failure_prob = task_failure_prob
        self.output_corrupt_prob = output_corrupt_prob
        self.transfer_failure_prob = transfer_failure_prob
        self.cache_corrupt_prob = cache_corrupt_prob
        self._seed = seed
        self._draws: Dict[Tuple[str, int], bool] = {}
        #: Per-label completion counter: the n-th completion of a label
        #: gets its own corruption draw (a recompute redraws).
        self._seal_counts: Dict[str, int] = {}
        #: Per-(consumer, producer) staging-attempt counter: every torn
        #: transfer retry and every re-staging redraws.
        self._transfer_counts: Dict[Tuple[str, str], int] = {}
        #: Scripted transfer tears fire once each (staging attempts are
        #: numbered within a sequence, which restarts after a recompute).
        self._transfer_script_used: Set[Tuple[str, int]] = set()
        #: Per-label reuse-publication counter: the n-th publication of a
        #: label gets its own corruption draw (a republish redraws).
        self._cache_pub_counts: Dict[str, int] = {}
        #: Scripted cache stalls fire on the first publication only (the
        #: recompute that follows must be allowed to land).
        self._cache_stalls_used: Set[str] = set()
        self.injected_failures: List[Tuple[str, int]] = []
        self.injected_hangs: List[Tuple[str, int]] = []
        self.injected_corruptions: List[str] = []
        self.injected_transfer_failures: List[Tuple[str, str]] = []
        self.injected_cache_corruptions: List[str] = []
        self.injected_cache_stalls: List[str] = []

    def should_fail(self, task_label: str, attempt: int) -> bool:
        """Decide (deterministically per (task, attempt)) whether to fail.

        The random draw for a ``(task_label, attempt)`` pair is derived
        from the seed and the pair itself (and cached), so the verdict is
        independent of the order in which attempts are asked about —
        executor scheduling jitter cannot change which tasks fail.
        """
        check_non_negative("attempt", attempt)
        if self.plan.should_fail(task_label, attempt):
            self._record(task_label, attempt)
            return True
        if self.task_failure_prob <= 0.0:
            return False
        key = (task_label, attempt)
        if key not in self._draws:
            rng = rng_from(self._seed, f"failure-injector/{task_label}/{attempt}")
            self._draws[key] = bool(rng.random() < self.task_failure_prob)
        if self._draws[key]:
            self._record(task_label, attempt)
        return self._draws[key]

    def _record(self, task_label: str, attempt: int) -> None:
        self.injected_failures.append((task_label, attempt))

    def should_hang(self, task_label: str, attempt: int) -> bool:
        """Whether this attempt is scripted to hang (never complete)."""
        check_non_negative("attempt", attempt)
        if self.plan.should_hang(task_label, attempt):
            self.injected_hangs.append((task_label, attempt))
            return True
        return False

    def slow_factor(self, task_label: str) -> float:
        """Scripted duration multiplier for ``task_label`` (1.0 = none)."""
        return self.plan.slow_factor(task_label)

    def corruption_scope(self, task_label: str) -> Optional[str]:
        """Corruption decision for one *completion* of ``task_label``.

        Returns ``"primary"`` / ``"all"`` / ``None``.  A scripted
        corruption fires on the label's first completion only, so an
        ``"all"``-scope corruption (which forces a recompute) converges
        once the writer re-executes.  The random component draws per
        completion — the n-th completion of a label has its own seeded
        verdict — so a recomputed writer can come back clean.
        """
        n = self._seal_counts.get(task_label, 0)
        self._seal_counts[task_label] = n + 1
        scripted = self.plan.corruption_scope(task_label)
        if scripted is not None and n == 0:
            # Scripted corruption hits the first completion only; the
            # recomputed output comes back clean (otherwise "all"-scope
            # corruption could never converge).
            self.injected_corruptions.append(task_label)
            return scripted
        if self.output_corrupt_prob <= 0.0:
            return None
        rng = rng_from(self._seed, f"corrupt-injector/{task_label}/{n}")
        if rng.random() < self.output_corrupt_prob:
            self.injected_corruptions.append(task_label)
            return "primary"
        return None

    def should_fail_transfer(
        self, consumer_label: str, producer_label: str, attempt: int
    ) -> bool:
        """Whether this staging attempt tears (scripted or random).

        ``attempt`` is the index within the current staging sequence
        (scripted tears consume one ``(consumer, attempt)`` pair each);
        the random component keys on a monotonic per-(consumer, producer)
        counter so every retry and every re-staging draws afresh.
        """
        check_non_negative("attempt", attempt)
        key = (consumer_label, attempt)
        if self.plan.should_fail_transfer(consumer_label, attempt) and (
            key not in self._transfer_script_used
        ):
            self._transfer_script_used.add(key)
            self.injected_transfer_failures.append((consumer_label, producer_label))
            return True
        if self.transfer_failure_prob <= 0.0:
            return False
        pair = (consumer_label, producer_label)
        n = self._transfer_counts.get(pair, 0)
        self._transfer_counts[pair] = n + 1
        rng = rng_from(
            self._seed,
            f"transfer-injector/{consumer_label}/{producer_label}/{n}",
        )
        if rng.random() < self.transfer_failure_prob:
            self.injected_transfer_failures.append((consumer_label, producer_label))
            return True
        return False

    def cache_corrupts(self, task_label: str) -> bool:
        """Whether this reuse-cache publication of ``task_label`` bit-rots.

        A scripted corruption fires on the label's first publication
        only (the recompute's republish lands clean, so the study
        converges).  The random component draws per publication with a
        seeded, order-independent verdict.
        """
        n = self._cache_pub_counts.get(task_label, 0)
        self._cache_pub_counts[task_label] = n + 1
        if self.plan.cache_corruption(task_label) and n == 0:
            self.injected_cache_corruptions.append(task_label)
            return True
        if self.cache_corrupt_prob <= 0.0:
            return False
        rng = rng_from(self._seed, f"cache-corrupt-injector/{task_label}/{n}")
        if rng.random() < self.cache_corrupt_prob:
            self.injected_cache_corruptions.append(task_label)
            return True
        return False

    def cache_lease_stalls(self, task_label: str) -> bool:
        """Whether this publication of ``task_label`` wedges its lease.

        Scripted only, first publication only: the stage's recompute (or
        another trial's unleased compute) must eventually publish, or
        the study would depend on lease expiry forever.
        """
        if (
            self.plan.cache_stall(task_label)
            and task_label not in self._cache_stalls_used
        ):
            self._cache_stalls_used.add(task_label)
            self.injected_cache_stalls.append(task_label)
            return True
        return False

    def link_factor(self, src: str, dst: str) -> float:
        """Scripted transfer-time multiplier for the link (1.0 = none)."""
        return self.plan.link_factor(src, dst)

    @property
    def node_failures(self) -> List[NodeFailure]:
        """Scripted node outages (from the plan)."""
        return list(self.plan.node_failures)

    def reset(self) -> None:
        """Forget cached draws and history (draws re-derive identically)."""
        self._draws.clear()
        self._seal_counts.clear()
        self._transfer_counts.clear()
        self._transfer_script_used.clear()
        self._cache_pub_counts.clear()
        self._cache_stalls_used.clear()
        self.injected_failures.clear()
        self.injected_hangs.clear()
        self.injected_corruptions.clear()
        self.injected_transfer_failures.clear()
        self.injected_cache_corruptions.clear()
        self.injected_cache_stalls.clear()
