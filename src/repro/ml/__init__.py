"""A minimal, vectorised deep-learning framework (the TensorFlow stand-in).

The paper trains small Keras/TensorFlow models inside each PyCOMPSs task.
TensorFlow is unavailable offline, so this subpackage provides the pieces
those experiments need, with a deliberately Keras-like surface:

* layers — :class:`~repro.ml.layers.Dense`, :class:`~repro.ml.layers.Conv2D`,
  :class:`~repro.ml.layers.MaxPool2D`, :class:`~repro.ml.layers.Flatten`,
  :class:`~repro.ml.layers.Dropout`, :class:`~repro.ml.layers.ReLU`, …
* optimisers — SGD, Adam, RMSprop (the paper's Listing 1 search space);
* :class:`~repro.ml.model.Sequential` with ``fit``/``evaluate``/``predict``
  and per-epoch history;
* callbacks including early stopping;
* deterministic synthetic datasets with MNIST-like and CIFAR-10-like
  difficulty profiles (:mod:`repro.ml.datasets`).

Everything is pure numpy and fully vectorised over the batch dimension
(no per-sample Python loops), following the HPC-Python guide idioms.
"""

from repro.ml.model import Sequential, History
from repro.ml.losses import CategoricalCrossentropy, MeanSquaredError, get_loss
from repro.ml.metrics import accuracy, top_k_accuracy
from repro.ml.callbacks import (
    Callback,
    EarlyStopping,
    TargetMetricStopping,
    LambdaCallback,
    PreemptionCheckpoint,
)
from repro.ml.optimizers import SGD, Adam, RMSprop, get_optimizer
from repro.ml.layers import (
    Layer,
    Dense,
    Conv2D,
    MaxPool2D,
    AveragePool2D,
    GlobalAveragePool2D,
    Flatten,
    Dropout,
    BatchNorm,
    ReLU,
    Sigmoid,
    Tanh,
    Softmax,
)
from repro.ml.schedules import (
    LearningRateScheduler,
    StepDecay,
    ExponentialDecay,
    CosineDecay,
)
from repro.ml.serialization import save_weights, load_weights
from repro.ml.models_zoo import create_model

__all__ = [
    "Sequential",
    "History",
    "CategoricalCrossentropy",
    "MeanSquaredError",
    "get_loss",
    "accuracy",
    "top_k_accuracy",
    "Callback",
    "EarlyStopping",
    "TargetMetricStopping",
    "LambdaCallback",
    "PreemptionCheckpoint",
    "SGD",
    "Adam",
    "RMSprop",
    "get_optimizer",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AveragePool2D",
    "GlobalAveragePool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "LearningRateScheduler",
    "StepDecay",
    "ExponentialDecay",
    "CosineDecay",
    "save_weights",
    "load_weights",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "create_model",
]
