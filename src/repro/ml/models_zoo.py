"""The ``create_model`` factory from the paper's Listing 2.

"New model created every time with different parameters.  Model parameters
can be set here from the config file (i.e. optimisers)."  The factory maps
an HPO config dict to a compiled :class:`~repro.ml.model.Sequential`: an
MLP for flat/small-greyscale inputs, a small CNN for multi-channel images.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
)
from repro.ml.model import Sequential
from repro.util.validation import check_positive


def _mlp(
    input_shape: Tuple[int, ...],
    n_classes: int,
    hidden_units: int,
    dropout: float,
    seed: int,
) -> Sequential:
    model = Sequential(seed=seed)
    model.add(Flatten())
    model.add(Dense(hidden_units))
    model.add(ReLU())
    if dropout > 0:
        model.add(Dropout(dropout))
    model.add(Dense(max(16, hidden_units // 2)))
    model.add(ReLU())
    model.add(Dense(n_classes))
    model.build(input_shape)
    return model


def _cnn(
    input_shape: Tuple[int, ...],
    n_classes: int,
    filters: int,
    dropout: float,
    seed: int,
    batch_norm: bool = False,
) -> Sequential:
    model = Sequential(seed=seed)
    model.add(Conv2D(filters, kernel_size=3, padding="same"))
    if batch_norm:
        model.add(BatchNorm())
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Conv2D(filters * 2, kernel_size=3, padding="same"))
    if batch_norm:
        model.add(BatchNorm())
    model.add(ReLU())
    model.add(MaxPool2D(2))
    model.add(Flatten())
    model.add(Dense(64))
    model.add(ReLU())
    if dropout > 0:
        model.add(Dropout(dropout))
    model.add(Dense(n_classes))
    model.build(input_shape)
    return model


def create_model(
    config: Mapping[str, object],
    input_shape: Tuple[int, ...],
    n_classes: int = 10,
    seed: Optional[int] = None,
) -> Sequential:
    """Build and compile a model for an HPO ``config``.

    Recognised config keys (all optional except none):

    * ``optimizer`` — ``"SGD"``/``"Adam"``/``"RMSprop"`` (Listing 1);
    * ``learning_rate`` — forwarded to the optimiser;
    * ``architecture`` — ``"mlp"``, ``"cnn"`` or ``"auto"`` (default:
      CNN for multi-channel images, MLP otherwise);
    * ``hidden_units`` (MLP) / ``filters`` (CNN) — width knobs;
    * ``batch_norm`` (CNN) — insert BatchNorm after each convolution;
    * ``dropout`` — dropout rate after the widest layer;
    * ``seed`` — overridden by the explicit ``seed`` argument if given.

    Returns a compiled :class:`Sequential` ready for ``fit``.
    """
    check_positive("n_classes", n_classes)
    if len(input_shape) not in (1, 3):
        raise ValueError(
            f"input_shape must be flat (f,) or image (h, w, c), got {input_shape}"
        )
    arch = str(config.get("architecture", "auto")).lower()
    if arch == "auto":
        is_image = len(input_shape) == 3
        arch = "cnn" if (is_image and int(input_shape[2]) > 1) else "mlp"
    model_seed = int(seed if seed is not None else config.get("seed", 0))
    dropout = float(config.get("dropout", 0.0))

    if arch == "mlp":
        hidden = int(config.get("hidden_units", 64))
        check_positive("hidden_units", hidden)
        model = _mlp(input_shape, n_classes, hidden, dropout, model_seed)
    elif arch == "cnn":
        if len(input_shape) != 3:
            raise ValueError("cnn architecture requires an image input_shape")
        filters = int(config.get("filters", 8))
        check_positive("filters", filters)
        batch_norm = bool(config.get("batch_norm", False))
        model = _cnn(
            input_shape, n_classes, filters, dropout, model_seed,
            batch_norm=batch_norm,
        )
    else:
        raise ValueError(f"unknown architecture {arch!r}; use mlp/cnn/auto")

    optimizer = str(config.get("optimizer", "SGD"))
    lr = config.get("learning_rate")
    model.compile(
        optimizer=optimizer,
        loss="categorical_crossentropy",
        learning_rate=float(lr) if lr is not None else None,
    )
    return model
