"""Adam optimiser (Kingma & Ba, 2015)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.optimizers.base import Optimizer
from repro.util.validation import check_in_range, check_positive


class Adam(Optimizer):
    """Adaptive moment estimation with bias correction.

    ``m ← β1·m + (1−β1)·g``, ``v ← β2·v + (1−β2)·g²``,
    ``p ← p − lr · m̂ / (√v̂ + ε)``.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        check_in_range("beta_1", beta_1, 0.0, 1.0, inclusive=False)
        check_in_range("beta_2", beta_2, 0.0, 1.0, inclusive=False)
        check_positive("epsilon", epsilon)
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        m = state.get("m")
        if m is None:
            m = state["m"] = np.zeros_like(param)
            state["v"] = np.zeros_like(param)
        v = state["v"]
        b1, b2 = self.beta_1, self.beta_2
        m *= b1
        m += (1.0 - b1) * grad
        v *= b2
        v += (1.0 - b2) * (grad * grad)
        t = self.iterations
        m_hat = m / (1.0 - b1**t)
        v_hat = v / (1.0 - b2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    @property
    def config(self) -> Dict[str, float]:
        return {
            "learning_rate": self.learning_rate,
            "beta_1": self.beta_1,
            "beta_2": self.beta_2,
            "epsilon": self.epsilon,
        }
