"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.optimizers.base import Optimizer
from repro.util.validation import check_in_range


class SGD(Optimizer):
    """``v ← μ·v − lr·g;  p ← p + v`` (plain ``p ← p − lr·g`` when μ=0).

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Classical momentum coefficient μ ∈ [0, 1).
    nesterov:
        Use Nesterov's lookahead variant.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(learning_rate)
        check_in_range("momentum", momentum, 0.0, 1.0)
        if momentum == 1.0:
            raise ValueError("momentum must be < 1.0")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = nesterov

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        lr = self.learning_rate
        if self.momentum == 0.0:
            param -= lr * grad
            return
        v = state.get("velocity")
        if v is None:
            v = state["velocity"] = np.zeros_like(param)
        v *= self.momentum
        v -= lr * grad
        if self.nesterov:
            param += self.momentum * v - lr * grad
        else:
            param += v

    @property
    def config(self) -> Dict[str, float]:
        return {
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "nesterov": float(self.nesterov),
        }
