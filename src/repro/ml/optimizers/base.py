"""Optimiser base class.

Optimisers receive ``(name, param, grad)`` triples each step and update the
parameter arrays **in place** (no reallocation on the hot path — the
in-place-operations idiom from the HPC guide).  Per-parameter state (moment
estimates etc.) is keyed by the qualified parameter name.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.util.validation import check_positive


class Optimizer(abc.ABC):
    """Abstract gradient-descent optimiser."""

    def __init__(self, learning_rate: float = 0.01):
        check_positive("learning_rate", learning_rate)
        self.learning_rate = float(learning_rate)
        self.iterations = 0
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def apply_gradients(
        self, params_and_grads: Iterable[Tuple[str, np.ndarray, np.ndarray]]
    ) -> None:
        """Apply one update step to all parameters (in place)."""
        self.iterations += 1
        for name, param, grad in params_and_grads:
            if param.shape != grad.shape:
                raise ValueError(
                    f"grad shape {grad.shape} != param shape {param.shape} "
                    f"for {name!r}"
                )
            state = self._state.setdefault(name, {})
            self._update(param, grad, state)

    @abc.abstractmethod
    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        """Update one parameter array in place."""

    def reset(self) -> None:
        """Drop all accumulated state (moments, step count)."""
        self.iterations = 0
        self._state.clear()

    @property
    def config(self) -> Dict[str, float]:
        """Hyperparameters of this optimiser (for logging/serialisation)."""
        return {"learning_rate": self.learning_rate}

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.config.items())
        return f"{type(self).__name__}({args})"
