"""RMSprop optimiser (Tieleman & Hinton, 2012)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.optimizers.base import Optimizer
from repro.util.validation import check_in_range, check_positive


class RMSprop(Optimizer):
    """``s ← ρ·s + (1−ρ)·g²;  p ← p − lr · g / (√s + ε)``."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        check_in_range("rho", rho, 0.0, 1.0, inclusive=False)
        check_positive("epsilon", epsilon)
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        s = state.get("s")
        if s is None:
            s = state["s"] = np.zeros_like(param)
        s *= self.rho
        s += (1.0 - self.rho) * (grad * grad)
        param -= self.learning_rate * grad / (np.sqrt(s) + self.epsilon)

    @property
    def config(self) -> Dict[str, float]:
        return {
            "learning_rate": self.learning_rate,
            "rho": self.rho,
            "epsilon": self.epsilon,
        }
