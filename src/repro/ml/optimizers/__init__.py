"""Optimisers — the paper's Listing 1 search space: SGD, Adam, RMSprop."""

from typing import Union

from repro.ml.optimizers.base import Optimizer
from repro.ml.optimizers.sgd import SGD
from repro.ml.optimizers.adam import Adam
from repro.ml.optimizers.rmsprop import RMSprop

_OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSprop,
}


def get_optimizer(optimizer: Union[str, Optimizer], **kwargs) -> Optimizer:
    """Resolve an optimiser by (case-insensitive) name or pass through.

    >>> get_optimizer("Adam", learning_rate=1e-3)  # doctest: +ELLIPSIS
    Adam(...)
    """
    if isinstance(optimizer, Optimizer):
        if kwargs:
            raise ValueError("cannot pass kwargs with an Optimizer instance")
        return optimizer
    key = str(optimizer).lower()
    try:
        cls = _OPTIMIZERS[key]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; known: {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(**kwargs)


__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "get_optimizer"]
