"""Classification metrics."""

from __future__ import annotations

import numpy as np


def _labels(y: np.ndarray) -> np.ndarray:
    """Collapse one-hot (2-D) targets/predictions to integer labels."""
    if y.ndim == 2:
        return y.argmax(axis=-1)
    if y.ndim == 1:
        return y
    raise ValueError(f"expected 1-D labels or 2-D one-hot/scores, got ndim={y.ndim}")


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Top-1 accuracy.  Accepts labels or one-hot/score matrices.

    >>> import numpy as np
    >>> accuracy(np.array([0, 1]), np.array([[0.9, 0.1], [0.2, 0.8]]))
    1.0
    """
    t = _labels(np.asarray(y_true))
    p = _labels(np.asarray(y_pred))
    if t.shape != p.shape:
        raise ValueError(f"label shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(t == p))


def top_k_accuracy(y_true: np.ndarray, y_scores: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is in the top-``k`` scores."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    t = _labels(np.asarray(y_true))
    scores = np.asarray(y_scores)
    if scores.ndim != 2:
        raise ValueError("y_scores must be a 2-D score matrix")
    k = min(k, scores.shape[1])
    # argpartition is O(n) per row vs full sort's O(n log n).
    topk = np.argpartition(scores, -k, axis=1)[:, -k:]
    return float(np.mean((topk == t[:, None]).any(axis=1)))
