"""MNIST-like dataset: easy, fast-converging 10-class image problem."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.data import one_hot
from repro.ml.datasets.synthetic import make_image_classification
from repro.util.seeding import derive_seed
from repro.util.validation import check_positive

#: Default image shape.  The real MNIST is 28×28×1; we default to a reduced
#: 10×10×1 so full HPO grids run in CI time, but the shape is a parameter.
DEFAULT_SHAPE: Tuple[int, int, int] = (10, 10, 1)

N_CLASSES = 10


def load_mnist_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    seed: int = 0,
    one_hot_labels: bool = True,
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Return ``((x_train, y_train), (x_test, y_test))``, Keras-style.

    Train and test are drawn from the same prototypes (same ``seed``
    stream) but with independent noise, so generalisation is meaningful.
    Low noise (0.5) means most hyperparameter configurations reach > 90 %
    validation accuracy within a few epochs — the Fig. 7 regime.
    """
    check_positive("n_train", n_train)
    check_positive("n_test", n_test)
    x, y = make_image_classification(
        n_train + n_test,
        image_shape=image_shape,
        n_classes=N_CLASSES,
        noise=0.5,
        class_overlap=0.0,
        seed=derive_seed(seed, "mnist-like"),
    )
    x_train, x_test = x[:n_train], x[n_train:]
    y_train, y_test = y[:n_train], y[n_train:]
    if one_hot_labels:
        y_train = one_hot(y_train, N_CLASSES)
        y_test = one_hot(y_test, N_CLASSES)
    return (x_train, y_train), (x_test, y_test)
