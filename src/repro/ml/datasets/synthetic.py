"""Synthetic image-classification generator.

Samples are noisy views of smooth per-class prototype images.  Difficulty
is controlled by the noise-to-signal ratio and by how much prototypes
overlap: low values give an MNIST-like, quickly-separable problem; high
values give a CIFAR-like, slowly-converging one.  Prototypes are smooth
(low-frequency) so convolutional models have real spatial structure to
exploit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_positive


def _smooth_prototypes(
    n_classes: int, shape: Tuple[int, int, int], rng: np.random.Generator
) -> np.ndarray:
    """Generate smooth class prototype images of ``shape`` (h, w, c).

    Smoothness comes from synthesising each prototype as a sum of a few
    random low-frequency 2-D cosine modes — cheap, fully vectorised, and
    structured enough for convolutions to pick up.
    """
    h, w, c = shape
    n_modes = 6
    ys = np.linspace(0.0, 1.0, h)[:, None]
    xs = np.linspace(0.0, 1.0, w)[None, :]
    protos = np.zeros((n_classes, h, w, c), dtype=np.float64)
    for k in range(n_classes):
        for ch in range(c):
            freq_y = rng.integers(1, 4, size=n_modes)
            freq_x = rng.integers(1, 4, size=n_modes)
            phase_y = rng.uniform(0, 2 * np.pi, size=n_modes)
            phase_x = rng.uniform(0, 2 * np.pi, size=n_modes)
            amp = rng.normal(0.0, 1.0, size=n_modes)
            img = np.zeros((h, w))
            for m in range(n_modes):
                img += amp[m] * np.cos(
                    2 * np.pi * freq_y[m] * ys + phase_y[m]
                ) * np.cos(2 * np.pi * freq_x[m] * xs + phase_x[m])
            protos[k, :, :, ch] = img
    # Normalise each prototype to unit RMS so difficulty is noise-controlled.
    rms = np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / np.maximum(rms, 1e-12)


def make_image_classification(
    n_samples: int,
    image_shape: Tuple[int, int, int] = (8, 8, 1),
    n_classes: int = 10,
    noise: float = 0.5,
    class_overlap: float = 0.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, labels)``.

    Parameters
    ----------
    n_samples:
        Number of images.
    image_shape:
        ``(height, width, channels)``.
    n_classes:
        Number of balanced classes.
    noise:
        Std of additive Gaussian noise relative to unit-RMS prototypes.
        ~0.5 is "easy" (MNIST-like); ~1.5 is "hard" (CIFAR-like).
    class_overlap:
        Fraction in [0, 1) of each prototype blended from a shared
        background image — raises Bayes error, further hardening the task.
    seed:
        Determinism seed.

    Returns
    -------
    (x, y):
        ``x`` is float64 in ``(n, h, w, c)``; ``y`` are int labels.
    """
    check_positive("n_samples", n_samples)
    check_positive("n_classes", n_classes)
    check_in_range("noise", noise, 0.0, 10.0)
    check_in_range("class_overlap", class_overlap, 0.0, 1.0, inclusive=True)
    if class_overlap == 1.0:
        raise ValueError("class_overlap must be < 1 (classes would be identical)")
    if len(image_shape) != 3:
        raise ValueError(f"image_shape must be (h, w, c), got {image_shape}")
    rng = rng_from(seed, "synthetic-images")
    protos = _smooth_prototypes(n_classes, tuple(image_shape), rng)
    if class_overlap > 0.0:
        shared = _smooth_prototypes(1, tuple(image_shape), rng)[0]
        protos = (1.0 - class_overlap) * protos + class_overlap * shared
    labels = rng.integers(0, n_classes, size=n_samples)
    x = protos[labels] + rng.normal(0.0, noise, size=(n_samples, *image_shape))
    return x, labels
