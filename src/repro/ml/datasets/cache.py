"""Per-process dataset cache.

An HPO grid loads the *same* dataset once per trial; on a PFS cluster
COMPSs reuses the staged copy (paper §4), and within one worker process
the equivalent optimisation is memoising the generated arrays.  Cached
arrays are returned **read-only** (``writeable=False``) so a task that
mutates its input fails loudly instead of corrupting sibling trials.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

_CACHE: Dict[tuple, tuple] = {}
_MAX_ENTRIES = 32


def _freeze(arrays):
    """Recursively mark ndarrays in a nested tuple structure read-only."""
    if isinstance(arrays, np.ndarray):
        arrays.setflags(write=False)
        return arrays
    if isinstance(arrays, tuple):
        return tuple(_freeze(a) for a in arrays)
    return arrays


def cached_dataset(loader: Callable, **kwargs):
    """Load via ``loader(**kwargs)`` with process-level memoisation.

    ``kwargs`` must be hashable (they are for all dataset loaders).  The
    cache holds at most ``_MAX_ENTRIES`` datasets (FIFO eviction).

    >>> from repro.ml.datasets import load_mnist_like
    >>> a = cached_dataset(load_mnist_like, n_train=64, n_test=16)
    >>> b = cached_dataset(load_mnist_like, n_train=64, n_test=16)
    >>> a[0][0] is b[0][0]
    True
    """
    key = (getattr(loader, "__module__", ""), getattr(loader, "__name__", ""),
           tuple(sorted(kwargs.items())))
    if key not in _CACHE:
        if len(_CACHE) >= _MAX_ENTRIES:
            _CACHE.pop(next(iter(_CACHE)))
        _CACHE[key] = _freeze(loader(**kwargs))
    return _CACHE[key]


def clear_dataset_cache() -> int:
    """Empty the cache; returns the number of evicted datasets."""
    n = len(_CACHE)
    _CACHE.clear()
    return n


def cache_size() -> int:
    """Number of datasets currently cached."""
    return len(_CACHE)
