"""CIFAR-10-like dataset: harder, slower-converging 10-class RGB problem."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.data import one_hot
from repro.ml.datasets.synthetic import make_image_classification
from repro.util.seeding import derive_seed
from repro.util.validation import check_positive

#: Default image shape.  Real CIFAR-10 is 32×32×3; the reduced 12×12×3
#: keeps the full grid tractable while preserving the harder regime.
DEFAULT_SHAPE: Tuple[int, int, int] = (12, 12, 3)

N_CLASSES = 10


def load_cifar_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_shape: Tuple[int, int, int] = DEFAULT_SHAPE,
    seed: int = 0,
    one_hot_labels: bool = True,
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Return ``((x_train, y_train), (x_test, y_test))``, Keras-style.

    Higher noise and prototype overlap make this problem converge slower
    and top out lower than the MNIST-like dataset — the Fig. 8 regime.
    """
    check_positive("n_train", n_train)
    check_positive("n_test", n_test)
    x, y = make_image_classification(
        n_train + n_test,
        image_shape=image_shape,
        n_classes=N_CLASSES,
        noise=1.4,
        class_overlap=0.35,
        seed=derive_seed(seed, "cifar-like"),
    )
    x_train, x_test = x[:n_train], x[n_train:]
    y_train, y_test = y[:n_train], y[n_train:]
    if one_hot_labels:
        y_train = one_hot(y_train, N_CLASSES)
        y_test = one_hot(y_test, N_CLASSES)
    return (x_train, y_train), (x_test, y_test)
