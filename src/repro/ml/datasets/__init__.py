"""Deterministic synthetic datasets.

The paper benchmarks on MNIST and CIFAR-10, which cannot be downloaded
offline.  These generators produce image-classification problems with the
two regimes the figures rely on:

* :func:`load_mnist_like` — easy, "generalises well after just a few
  epochs", most configs exceed 90 % validation accuracy (Fig. 7);
* :func:`load_cifar_like` — harder and slower to converge (Fig. 8).

Both are deterministic given a seed, so tests and figures are stable.
"""

from repro.ml.datasets.synthetic import make_image_classification
from repro.ml.datasets.mnist_like import load_mnist_like
from repro.ml.datasets.cifar_like import load_cifar_like
from repro.ml.datasets.cache import (
    cache_size,
    cached_dataset,
    clear_dataset_cache,
)

__all__ = [
    "make_image_classification",
    "load_mnist_like",
    "load_cifar_like",
    "cached_dataset",
    "clear_dataset_cache",
    "cache_size",
]
