"""Dataset utilities: one-hot encoding, splitting and batch iteration."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_positive


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows.

    >>> one_hot(np.array([0, 2]), 3).tolist()
    [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
    """
    labels = np.asarray(labels)
    check_positive("n_classes", n_classes)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels must be in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def train_val_split(
    x: np.ndarray,
    y: np.ndarray,
    val_fraction: float = 0.2,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (x_train, y_train, x_val, y_val).

    The split is deterministic for a given seed; pass ``seed=None`` to use
    OS entropy.
    """
    check_in_range("val_fraction", val_fraction, 0.0, 1.0, inclusive=False)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
    n = x.shape[0]
    n_val = max(1, int(round(n * val_fraction)))
    if n_val >= n:
        raise ValueError(f"val_fraction={val_fraction} leaves no training data")
    perm = rng_from(seed, "train-val-split").permutation(n)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


def iterate_batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches.

    Indexing with a permutation array copies each batch once — unavoidable
    for shuffling — but no additional copies are made.
    """
    check_positive("batch_size", batch_size)
    n = x.shape[0]
    if n != y.shape[0]:
        raise ValueError(f"x has {n} rows but y has {y.shape[0]}")
    if shuffle:
        rng = rng or np.random.default_rng()
        order = rng.permutation(n)
    else:
        order = None
    for start in range(0, n, batch_size):
        stop = start + batch_size
        if drop_last and stop > n:
            return
        if order is None:
            yield x[start:stop], y[start:stop]
        else:
            idx = order[start:stop]
            yield x[idx], y[idx]


def standardize(
    x: np.ndarray, mean: Optional[np.ndarray] = None, std: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Feature-wise standardisation; returns ``(z, mean, std)``.

    Pass the training-set mean/std when transforming validation or test
    data to avoid leakage.
    """
    if mean is None:
        mean = x.mean(axis=0)
    if std is None:
        std = x.std(axis=0)
    std_safe = np.where(std < 1e-12, 1.0, std)
    return (x - mean) / std_safe, mean, std
