"""The :class:`Sequential` model — a Keras-flavoured train/eval loop.

The model wires layers, a loss and an optimiser together and records a
per-epoch :class:`History` — exactly what the paper's ``experiment`` task
returns ("the result … can be a performance measure such as validation
loss or accuracy and training history", §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ml.callbacks import Callback
from repro.ml.data import iterate_batches
from repro.ml.layers.base import Layer, flat_param_list
from repro.ml.layers.activations import softmax
from repro.ml.losses import Loss, get_loss
from repro.ml.metrics import accuracy
from repro.ml.optimizers import Optimizer, get_optimizer
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


class History:
    """Per-epoch training history (mirrors ``keras.callbacks.History``).

    Attributes
    ----------
    epochs:
        List of completed epoch indices (0-based).
    metrics:
        Mapping from metric name (``loss``, ``accuracy``, ``val_loss``,
        ``val_accuracy``) to one value per completed epoch.
    """

    def __init__(self) -> None:
        self.epochs: List[int] = []
        self.metrics: Dict[str, List[float]] = {}

    def append(self, epoch: int, logs: Dict[str, float]) -> None:
        """Record one epoch's metrics."""
        self.epochs.append(epoch)
        for key, value in logs.items():
            self.metrics.setdefault(key, []).append(float(value))

    def best(self, metric: str, mode: str = "max") -> Tuple[int, float]:
        """Return ``(epoch, value)`` of the best recorded value of ``metric``."""
        values = self.metrics.get(metric)
        if not values:
            raise KeyError(f"no values recorded for metric {metric!r}")
        arr = np.asarray(values)
        idx = int(arr.argmax() if mode == "max" else arr.argmin())
        return self.epochs[idx], float(arr[idx])

    def final(self, metric: str) -> float:
        """Last recorded value of ``metric``."""
        values = self.metrics.get(metric)
        if not values:
            raise KeyError(f"no values recorded for metric {metric!r}")
        return values[-1]

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view (JSON-serialisable)."""
        return {"epochs": list(self.epochs), **{k: list(v) for k, v in self.metrics.items()}}

    def __len__(self) -> int:
        return len(self.epochs)


class Sequential:
    """A linear stack of layers.

    Parameters
    ----------
    layers:
        Layers in order; may also be added later with :meth:`add`.
    seed:
        Seed for weight init and shuffling (deterministic trials).

    Example
    -------
    >>> from repro.ml import Dense, ReLU
    >>> m = Sequential([Dense(16), ReLU(), Dense(3)], seed=0)
    >>> _ = m.compile(optimizer="sgd", loss="categorical_crossentropy")
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None, seed: int = 0):
        self.layers: List[Layer] = list(layers or [])
        self.seed = int(seed)
        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.built = False
        self.stop_training = False
        self._from_logits = True
        self.history: Optional[History] = None
        self._build_rng = None
        self._fit_rng = None
        self._pending_fit_rng_state = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (before :meth:`build`); returns self."""
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build all layers for ``input_shape`` (without the batch axis)."""
        if not self.layers:
            raise RuntimeError("model has no layers")
        rng = rng_from(self.seed, "model-init")
        # Retained so suspended trials can restore the shared build-time
        # generator (stochastic layers like Dropout keep drawing from it).
        self._build_rng = rng
        shape = tuple(int(d) for d in input_shape)
        for layer in self.layers:
            layer.build(shape, rng)
            assert layer.output_shape is not None
            shape = layer.output_shape
        self.built = True

    def compile(
        self,
        optimizer: Union[str, Optimizer] = "sgd",
        loss: Union[str, Loss] = "categorical_crossentropy",
        learning_rate: Optional[float] = None,
    ) -> "Sequential":
        """Attach an optimiser and a loss; returns self.

        ``learning_rate`` is a convenience forwarded to the optimiser
        factory when ``optimizer`` is a name.
        """
        kwargs = {}
        if learning_rate is not None and isinstance(optimizer, str):
            kwargs["learning_rate"] = learning_rate
        self.optimizer = get_optimizer(optimizer, **kwargs)
        self.loss = get_loss(loss)
        self._from_logits = getattr(self.loss, "from_logits", False)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns raw model output (logits)."""
        if not self.built:
            self.build(x.shape[1:])
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities for ``x`` (softmax applied if loss is logits-based)."""
        check_positive("batch_size", batch_size)
        outs = []
        for start in range(0, x.shape[0], batch_size):
            out = self.forward(x[start : start + batch_size], training=False)
            outs.append(softmax(out) if self._from_logits else out)
        return np.concatenate(outs, axis=0)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Dict[str, float]:
        """Return ``{"loss": …, "accuracy": …}`` over ``(x, y)``."""
        if self.loss is None:
            raise RuntimeError("call compile() before evaluate()")
        check_positive("batch_size", batch_size)
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on zero samples")
        total_loss = 0.0
        correct = 0.0
        for start in range(0, n, batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            out = self.forward(xb, training=False)
            total_loss += self.loss.value(yb, out) * xb.shape[0]
            correct += accuracy(yb, out) * xb.shape[0]
        return {"loss": total_loss / n, "accuracy": correct / n}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """One forward/backward/update step; returns batch loss & accuracy."""
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("call compile() before training")
        out = self.forward(x, training=True)
        loss_value = self.loss.value(y, out)
        grad = self.loss.gradient(y, out)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        self.optimizer.apply_gradients(flat_param_list(self.layers))
        return {"loss": loss_value, "accuracy": accuracy(y, out)}

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        shuffle: bool = True,
        verbose: bool = False,
        initial_epoch: int = 0,
        history: Optional[History] = None,
    ) -> History:
        """Train for epochs ``initial_epoch .. epochs-1``; returns the history.

        Honors ``self.stop_training`` set by callbacks (early stopping).
        ``initial_epoch``/``history`` let a resumed trial continue a prior
        run: after :meth:`restore_training_state` the shuffle stream picks
        up mid-sequence and the returned :class:`History` accumulates onto
        the restored epochs, so a suspended-then-resumed run is
        byte-identical to one that never stopped.
        """
        check_positive("epochs", epochs)
        check_positive("batch_size", batch_size)
        if initial_epoch < 0 or initial_epoch >= epochs:
            raise ValueError(
                f"initial_epoch must be in [0, {epochs}), got {initial_epoch}"
            )
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if not self.built:
            self.build(x.shape[1:])
        callbacks = list(callbacks or [])
        for cb in callbacks:
            cb.set_model(self)
        history = history if history is not None else History()
        self.history = history
        self.stop_training = False
        shuffle_rng = rng_from(self.seed, "fit-shuffle")
        if self._pending_fit_rng_state is not None:
            shuffle_rng.bit_generator.state = self._pending_fit_rng_state
            self._pending_fit_rng_state = None
        self._fit_rng = shuffle_rng
        for cb in callbacks:
            cb.on_train_begin()
        for epoch in range(initial_epoch, epochs):
            for cb in callbacks:
                cb.on_epoch_begin(epoch)
            epoch_loss = 0.0
            epoch_correct = 0.0
            n_seen = 0
            for xb, yb in iterate_batches(
                x, y, batch_size, shuffle=shuffle, rng=shuffle_rng
            ):
                logs = self.train_on_batch(xb, yb)
                epoch_loss += logs["loss"] * xb.shape[0]
                epoch_correct += logs["accuracy"] * xb.shape[0]
                n_seen += xb.shape[0]
            logs = {
                "loss": epoch_loss / n_seen,
                "accuracy": epoch_correct / n_seen,
            }
            if validation_data is not None:
                val = self.evaluate(*validation_data, batch_size=batch_size)
                logs["val_loss"] = val["loss"]
                logs["val_accuracy"] = val["accuracy"]
            history.append(epoch, logs)
            if verbose:
                rendered = " ".join(f"{k}={v:.4f}" for k, v in logs.items())
                print(f"epoch {epoch + 1}/{epochs}: {rendered}")
            for cb in callbacks:
                cb.on_epoch_end(epoch, logs)
            if self.stop_training:
                break
        for cb in callbacks:
            cb.on_train_end()
        return history

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy of all layer parameters (list aligned with ``self.layers``)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} weight dicts, got {len(weights)}"
            )
        for layer, w in zip(self.layers, weights):
            for key, value in w.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer.name!r} has no param {key!r}")
                layer.params[key][...] = value

    # ------------------------------------------------------------------
    # Suspend / resume
    # ------------------------------------------------------------------
    def capture_training_state(self, epoch: int, history: Optional[History] = None) -> Dict:
        """Everything needed to resume training mid-run, as a picklable dict.

        ``epoch`` is the cursor: the number of *completed* epochs (the
        resumed fit passes it as ``initial_epoch``).  Captures weights,
        the optimiser's step counter and moment state, both RNG streams
        (build-time — shared by stochastic layers — and shuffle), and the
        accumulated history, so a restore is byte-identical to having
        never stopped.
        """
        if not self.built or self.optimizer is None:
            raise RuntimeError("cannot capture state before build() and compile()")
        history = history if history is not None else self.history
        state: Dict = {
            "epoch": int(epoch),
            "weights": self.get_weights(),
            "optimizer_iterations": int(self.optimizer.iterations),
            "optimizer_state": {
                name: {k: v.copy() for k, v in slots.items()}
                for name, slots in self.optimizer._state.items()
            },
            "history": history.as_dict() if history is not None else None,
        }
        if self._build_rng is not None:
            state["build_rng_state"] = self._build_rng.bit_generator.state
        if self._fit_rng is not None:
            state["fit_rng_state"] = self._fit_rng.bit_generator.state
        return state

    def restore_training_state(self, state: Dict) -> Tuple[int, History]:
        """Load a :meth:`capture_training_state` dict; returns (epoch, history).

        The model must already be built and compiled with the same
        architecture and optimiser.  The returned pair is what the
        resumed ``fit`` call takes as ``initial_epoch``/``history``.
        """
        if not self.built or self.optimizer is None:
            raise RuntimeError("cannot restore state before build() and compile()")
        self.set_weights(state["weights"])
        self.optimizer.iterations = int(state["optimizer_iterations"])
        self.optimizer._state = {
            name: {k: np.asarray(v).copy() for k, v in slots.items()}
            for name, slots in state["optimizer_state"].items()
        }
        if state.get("build_rng_state") is not None and self._build_rng is not None:
            self._build_rng.bit_generator.state = state["build_rng_state"]
        if state.get("fit_rng_state") is not None:
            # Consumed by the next fit() call after it recreates the stream.
            self._pending_fit_rng_state = state["fit_rng_state"]
        history = History()
        dumped = state.get("history") or {}
        epochs = dumped.get("epochs", [])
        for i, ep in enumerate(epochs):
            logs = {
                k: vals[i]
                for k, vals in dumped.items()
                if k != "epochs" and i < len(vals)
            }
            history.append(ep, logs)
        self.history = history
        return int(state["epoch"]), history

    @property
    def n_params(self) -> int:
        """Total learnable parameter count."""
        return sum(layer.n_params for layer in self.layers)

    def summary(self) -> str:
        """Keras-style text summary of the architecture."""
        lines = [f"{'layer':<24}{'output shape':<20}{'params':>10}"]
        lines.append("-" * 54)
        for layer in self.layers:
            shape = str(layer.output_shape) if layer.built else "?"
            lines.append(f"{layer.name:<24}{shape:<20}{layer.n_params:>10}")
        lines.append("-" * 54)
        lines.append(f"total params: {self.n_params}")
        return "\n".join(lines)
