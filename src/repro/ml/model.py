"""The :class:`Sequential` model — a Keras-flavoured train/eval loop.

The model wires layers, a loss and an optimiser together and records a
per-epoch :class:`History` — exactly what the paper's ``experiment`` task
returns ("the result … can be a performance measure such as validation
loss or accuracy and training history", §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ml.callbacks import Callback
from repro.ml.data import iterate_batches
from repro.ml.layers.base import Layer, flat_param_list
from repro.ml.layers.activations import softmax
from repro.ml.losses import Loss, get_loss
from repro.ml.metrics import accuracy
from repro.ml.optimizers import Optimizer, get_optimizer
from repro.util.seeding import rng_from
from repro.util.validation import check_positive


class History:
    """Per-epoch training history (mirrors ``keras.callbacks.History``).

    Attributes
    ----------
    epochs:
        List of completed epoch indices (0-based).
    metrics:
        Mapping from metric name (``loss``, ``accuracy``, ``val_loss``,
        ``val_accuracy``) to one value per completed epoch.
    """

    def __init__(self) -> None:
        self.epochs: List[int] = []
        self.metrics: Dict[str, List[float]] = {}

    def append(self, epoch: int, logs: Dict[str, float]) -> None:
        """Record one epoch's metrics."""
        self.epochs.append(epoch)
        for key, value in logs.items():
            self.metrics.setdefault(key, []).append(float(value))

    def best(self, metric: str, mode: str = "max") -> Tuple[int, float]:
        """Return ``(epoch, value)`` of the best recorded value of ``metric``."""
        values = self.metrics.get(metric)
        if not values:
            raise KeyError(f"no values recorded for metric {metric!r}")
        arr = np.asarray(values)
        idx = int(arr.argmax() if mode == "max" else arr.argmin())
        return self.epochs[idx], float(arr[idx])

    def final(self, metric: str) -> float:
        """Last recorded value of ``metric``."""
        values = self.metrics.get(metric)
        if not values:
            raise KeyError(f"no values recorded for metric {metric!r}")
        return values[-1]

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view (JSON-serialisable)."""
        return {"epochs": list(self.epochs), **{k: list(v) for k, v in self.metrics.items()}}

    def __len__(self) -> int:
        return len(self.epochs)


class Sequential:
    """A linear stack of layers.

    Parameters
    ----------
    layers:
        Layers in order; may also be added later with :meth:`add`.
    seed:
        Seed for weight init and shuffling (deterministic trials).

    Example
    -------
    >>> from repro.ml import Dense, ReLU
    >>> m = Sequential([Dense(16), ReLU(), Dense(3)], seed=0)
    >>> _ = m.compile(optimizer="sgd", loss="categorical_crossentropy")
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None, seed: int = 0):
        self.layers: List[Layer] = list(layers or [])
        self.seed = int(seed)
        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.built = False
        self.stop_training = False
        self._from_logits = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (before :meth:`build`); returns self."""
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build all layers for ``input_shape`` (without the batch axis)."""
        if not self.layers:
            raise RuntimeError("model has no layers")
        rng = rng_from(self.seed, "model-init")
        shape = tuple(int(d) for d in input_shape)
        for layer in self.layers:
            layer.build(shape, rng)
            assert layer.output_shape is not None
            shape = layer.output_shape
        self.built = True

    def compile(
        self,
        optimizer: Union[str, Optimizer] = "sgd",
        loss: Union[str, Loss] = "categorical_crossentropy",
        learning_rate: Optional[float] = None,
    ) -> "Sequential":
        """Attach an optimiser and a loss; returns self.

        ``learning_rate`` is a convenience forwarded to the optimiser
        factory when ``optimizer`` is a name.
        """
        kwargs = {}
        if learning_rate is not None and isinstance(optimizer, str):
            kwargs["learning_rate"] = learning_rate
        self.optimizer = get_optimizer(optimizer, **kwargs)
        self.loss = get_loss(loss)
        self._from_logits = getattr(self.loss, "from_logits", False)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns raw model output (logits)."""
        if not self.built:
            self.build(x.shape[1:])
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities for ``x`` (softmax applied if loss is logits-based)."""
        check_positive("batch_size", batch_size)
        outs = []
        for start in range(0, x.shape[0], batch_size):
            out = self.forward(x[start : start + batch_size], training=False)
            outs.append(softmax(out) if self._from_logits else out)
        return np.concatenate(outs, axis=0)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Dict[str, float]:
        """Return ``{"loss": …, "accuracy": …}`` over ``(x, y)``."""
        if self.loss is None:
            raise RuntimeError("call compile() before evaluate()")
        check_positive("batch_size", batch_size)
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on zero samples")
        total_loss = 0.0
        correct = 0.0
        for start in range(0, n, batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            out = self.forward(xb, training=False)
            total_loss += self.loss.value(yb, out) * xb.shape[0]
            correct += accuracy(yb, out) * xb.shape[0]
        return {"loss": total_loss / n, "accuracy": correct / n}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """One forward/backward/update step; returns batch loss & accuracy."""
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("call compile() before training")
        out = self.forward(x, training=True)
        loss_value = self.loss.value(y, out)
        grad = self.loss.gradient(y, out)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        self.optimizer.apply_gradients(flat_param_list(self.layers))
        return {"loss": loss_value, "accuracy": accuracy(y, out)}

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` epochs; returns the :class:`History`.

        Honors ``self.stop_training`` set by callbacks (early stopping).
        """
        check_positive("epochs", epochs)
        check_positive("batch_size", batch_size)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if not self.built:
            self.build(x.shape[1:])
        callbacks = list(callbacks or [])
        for cb in callbacks:
            cb.set_model(self)
        history = History()
        self.stop_training = False
        shuffle_rng = rng_from(self.seed, "fit-shuffle")
        for cb in callbacks:
            cb.on_train_begin()
        for epoch in range(epochs):
            for cb in callbacks:
                cb.on_epoch_begin(epoch)
            epoch_loss = 0.0
            epoch_correct = 0.0
            n_seen = 0
            for xb, yb in iterate_batches(
                x, y, batch_size, shuffle=shuffle, rng=shuffle_rng
            ):
                logs = self.train_on_batch(xb, yb)
                epoch_loss += logs["loss"] * xb.shape[0]
                epoch_correct += logs["accuracy"] * xb.shape[0]
                n_seen += xb.shape[0]
            logs = {
                "loss": epoch_loss / n_seen,
                "accuracy": epoch_correct / n_seen,
            }
            if validation_data is not None:
                val = self.evaluate(*validation_data, batch_size=batch_size)
                logs["val_loss"] = val["loss"]
                logs["val_accuracy"] = val["accuracy"]
            history.append(epoch, logs)
            if verbose:
                rendered = " ".join(f"{k}={v:.4f}" for k, v in logs.items())
                print(f"epoch {epoch + 1}/{epochs}: {rendered}")
            for cb in callbacks:
                cb.on_epoch_end(epoch, logs)
            if self.stop_training:
                break
        for cb in callbacks:
            cb.on_train_end()
        return history

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy of all layer parameters (list aligned with ``self.layers``)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} weight dicts, got {len(weights)}"
            )
        for layer, w in zip(self.layers, weights):
            for key, value in w.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer.name!r} has no param {key!r}")
                layer.params[key][...] = value

    @property
    def n_params(self) -> int:
        """Total learnable parameter count."""
        return sum(layer.n_params for layer in self.layers)

    def summary(self) -> str:
        """Keras-style text summary of the architecture."""
        lines = [f"{'layer':<24}{'output shape':<20}{'params':>10}"]
        lines.append("-" * 54)
        for layer in self.layers:
            shape = str(layer.output_shape) if layer.built else "?"
            lines.append(f"{layer.name:<24}{shape:<20}{layer.n_params:>10}")
        lines.append("-" * 54)
        lines.append(f"total params: {self.n_params}")
        return "\n".join(lines)
