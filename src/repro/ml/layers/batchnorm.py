"""Batch normalisation (Ioffe & Szegedy, 2015).

Normalises over the batch (and spatial axes for image inputs), with
learnable scale/shift and running statistics for inference.  Included
because deeper CNN configs in the CIFAR-like regime train noticeably
better with it — one of the architecture knobs an HPO study sweeps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.layers.base import ParamLayer
from repro.util.validation import check_in_range, check_positive


class BatchNorm(ParamLayer):
    """Normalise activations to zero mean / unit variance per channel.

    Parameters
    ----------
    momentum:
        Running-statistics update factor (closer to 1 = slower).
    epsilon:
        Variance floor.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: Optional[str] = None,
    ):
        super().__init__(name)
        check_in_range("momentum", momentum, 0.0, 1.0)
        check_positive("epsilon", epsilon)
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self._axes: Tuple[int, ...] = (0,)
        self._cache = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        channels = int(input_shape[-1])
        # Normalise over batch (+ spatial dims for images).
        self._axes = tuple(range(len(input_shape)))  # with batch axis at 0
        self._axes = (0,) + tuple(i + 1 for i in range(len(input_shape) - 1))
        self._params = {
            "gamma": np.ones(channels, dtype=np.float64),
            "beta": np.zeros(channels, dtype=np.float64),
        }
        self.running_mean = np.zeros(channels, dtype=np.float64)
        self.running_var = np.ones(channels, dtype=np.float64)
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        assert self.running_mean is not None and self.running_var is not None
        gamma, beta = self._params["gamma"], self._params["beta"]
        if training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            m = self.momentum
            self.running_mean *= m
            self.running_mean += (1.0 - m) * mean
            self.running_var *= m
            self.running_var += (1.0 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std)
        return gamma * x_hat + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_hat, inv_std = self._cache
        gamma = self._params["gamma"]
        axes = self._axes
        n = float(np.prod([grad_out.shape[a] for a in axes]))
        self._grads = {
            "gamma": (grad_out * x_hat).sum(axis=axes),
            "beta": grad_out.sum(axis=axes),
        }
        # Standard batchnorm input gradient (vectorised over channels).
        dxhat = grad_out * gamma
        grad_in = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        ) * inv_std
        self._cache = None
        return grad_in
