"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.initializers import get_initializer
from repro.ml.layers.base import ParamLayer
from repro.util.validation import check_positive


class Dense(ParamLayer):
    """``y = x @ W + b`` over a flat feature axis.

    Parameters
    ----------
    units:
        Output dimensionality.
    kernel_initializer / bias_initializer:
        Initialiser names (see :mod:`repro.ml.initializers`).
    use_bias:
        Whether to learn an additive bias.
    """

    def __init__(
        self,
        units: int,
        kernel_initializer: str = "glorot_uniform",
        bias_initializer: str = "zeros",
        use_bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name)
        check_positive("units", units)
        self.units = int(units)
        self.kernel_initializer = kernel_initializer
        self.bias_initializer = bias_initializer
        self.use_bias = use_bias
        self._x: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat inputs (got shape {input_shape}); "
                "add a Flatten layer first"
            )
        in_features = int(input_shape[0])
        kinit = get_initializer(self.kernel_initializer)
        binit = get_initializer(self.bias_initializer)
        self._params = {"W": kinit((in_features, self.units), rng)}
        if self.use_bias:
            self._params["b"] = binit((self.units,), rng)
        self.input_shape = tuple(input_shape)
        self.output_shape = (self.units,)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._x = x
        y = x @ self._params["W"]
        if self.use_bias:
            y += self._params["b"]
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        x = self._x
        self._grads = {"W": x.T @ grad_out}
        if self.use_bias:
            self._grads["b"] = grad_out.sum(axis=0)
        grad_in = grad_out @ self._params["W"].T
        self._x = None  # release the cache promptly (memory hygiene)
        return grad_in
