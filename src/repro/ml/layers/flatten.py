"""Flatten layer: collapse all non-batch axes."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(batch, *dims)`` → ``(batch, prod(dims))``.

    Uses ``reshape`` which returns a view when the input is contiguous —
    no copy on the hot path.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._in_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        self.input_shape = tuple(input_shape)
        self.output_shape = (int(np.prod(input_shape)),)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        grad_in = grad_out.reshape(self._in_shape)
        self._in_shape = None
        return grad_in
