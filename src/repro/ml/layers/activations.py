"""Activation layers (stateless, shape-preserving)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.maximum(x, 0.0)
        if training:
            self._mask = x > 0.0
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward(training=True)")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in


class Sigmoid(Layer):
    """Logistic sigmoid, computed stably for large |x|."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Stable piecewise form: avoids exp overflow for very negative x.
        y = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        if training:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() before forward(training=True)")
        grad_in = grad_out * self._y * (1.0 - self._y)
        self._y = None
        return grad_in


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.tanh(x)
        if training:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() before forward(training=True)")
        grad_in = grad_out * (1.0 - self._y**2)
        self._y = None
        return grad_in


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class Softmax(Layer):
    """Softmax over the last axis.

    Note: when paired with :class:`~repro.ml.losses.CategoricalCrossentropy`
    the loss fuses the two gradients; the standalone backward here computes
    the full Jacobian-vector product for use with other losses.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = softmax(x)
        if training:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() before forward(training=True)")
        y = self._y
        # JVP of softmax: y * (g - sum(g*y)) — vectorised over the batch.
        dot = (grad_out * y).sum(axis=-1, keepdims=True)
        grad_in = y * (grad_out - dot)
        self._y = None
        return grad_in
