"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.layers.base import Layer


class Dropout(Layer):
    """Randomly zero a fraction ``rate`` of activations during training.

    Uses *inverted* dropout (scale by ``1/(1-rate)`` at train time) so
    inference is a no-op.  The mask RNG is supplied at build time to keep
    trials deterministic.
    """

    def __init__(self, rate: float, name: Optional[str] = None):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._mask: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None

    def build(self, input_shape, rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        self._rng = rng

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if not training or self.rate == 0.0:
            return x
        assert self._rng is not None
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self.rate == 0.0:
            return grad_out
        if self._mask is None:
            raise RuntimeError("backward() before forward(training=True)")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
