"""Neural-network layers (numpy, batch-vectorised)."""

from repro.ml.layers.base import Layer, ParamLayer
from repro.ml.layers.dense import Dense
from repro.ml.layers.conv import Conv2D
from repro.ml.layers.pool import MaxPool2D
from repro.ml.layers.flatten import Flatten
from repro.ml.layers.dropout import Dropout
from repro.ml.layers.batchnorm import BatchNorm
from repro.ml.layers.avgpool import AveragePool2D, GlobalAveragePool2D
from repro.ml.layers.activations import ReLU, Sigmoid, Tanh, Softmax

__all__ = [
    "Layer",
    "ParamLayer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AveragePool2D",
    "GlobalAveragePool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
]
