"""2-D convolution via im2col.

The convolution is lowered to one large GEMM per batch (the standard
im2col trick), which keeps the hot path inside BLAS instead of Python
loops — the central idiom of the HPC-Python guides.  Data layout is
channels-last ``(batch, height, width, channels)`` like Keras.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.initializers import get_initializer
from repro.ml.layers.base import ParamLayer
from repro.util.validation import check_one_of, check_positive


def _pair(v) -> Tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    a, b = v
    return (int(a), int(b))


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: Tuple[int, int], pad: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding patches of ``x`` as a 2-D matrix.

    Parameters
    ----------
    x:
        Input of shape ``(n, h, w, c)``.
    kh, kw:
        Kernel height/width.
    stride, pad:
        Stride and symmetric zero padding per spatial axis.

    Returns
    -------
    (cols, (oh, ow)):
        ``cols`` has shape ``(n * oh * ow, kh * kw * c)``; ``oh, ow`` are
        the output spatial dims.
    """
    n, h, w, c = x.shape
    sh, sw = stride
    ph, pw = pad
    if ph or pw:
        x = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    hp, wp = x.shape[1], x.shape[2]
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) larger than padded input ({hp}x{wp})"
        )
    sn, sh_, sw_, sc = x.strides
    # View of shape (n, oh, ow, kh, kw, c) without copying.
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kh, kw, c),
        strides=(sn, sh_ * sh, sw_ * sw, sh_, sw_, sc),
        writeable=False,
    )
    cols = np.ascontiguousarray(windows).reshape(n * oh * ow, kh * kw * c)
    return cols, (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: Tuple[int, int],
    pad: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add column gradients back to input layout (inverse of im2col)."""
    n, h, w, c = x_shape
    sh, sw = stride
    ph, pw = pad
    hp, wp = h + 2 * ph, w + 2 * pw
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    grads = cols.reshape(n, oh, ow, kh, kw, c)
    x_grad = np.zeros((n, hp, wp, c), dtype=cols.dtype)
    # Loop over the (small) kernel footprint only; each step is a strided
    # vectorised add over the whole batch.
    for i in range(kh):
        for j in range(kw):
            x_grad[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :] += grads[
                :, :, :, i, j, :
            ]
    if ph or pw:
        x_grad = x_grad[:, ph : ph + h, pw : pw + w, :]
    return x_grad


class Conv2D(ParamLayer):
    """2-D convolution (channels-last).

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        int or (kh, kw).
    strides:
        int or (sh, sw).
    padding:
        ``"valid"`` (no padding) or ``"same"`` (output spatial size equals
        ``ceil(input / stride)``).
    """

    def __init__(
        self,
        filters: int,
        kernel_size=3,
        strides=1,
        padding: str = "valid",
        kernel_initializer: str = "he_normal",
        bias_initializer: str = "zeros",
        use_bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name)
        check_positive("filters", filters)
        check_one_of("padding", padding, ["valid", "same"])
        self.filters = int(filters)
        self.kernel_size = _pair(kernel_size)
        self.strides = _pair(strides)
        self.padding = padding
        self.kernel_initializer = kernel_initializer
        self.bias_initializer = bias_initializer
        self.use_bias = use_bias
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._pad: Tuple[int, int] = (0, 0)

    def _compute_pad(self, h: int, w: int) -> Tuple[int, int]:
        if self.padding == "valid":
            return (0, 0)
        kh, kw = self.kernel_size
        sh, sw = self.strides
        # "same": total pad so that out = ceil(in / stride); we use the
        # symmetric half (sufficient for the odd kernels used here).
        ph = max(0, ((-h) % sh) + kh - sh) // 2 if sh > 1 else (kh - 1) // 2
        pw = max(0, ((-w) % sw) + kw - sw) // 2 if sw > 1 else (kw - 1) // 2
        return (ph, pw)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"Conv2D expects (h, w, c) inputs, got shape {input_shape}"
            )
        h, w, c = (int(d) for d in input_shape)
        kh, kw = self.kernel_size
        sh, sw = self.strides
        self._pad = self._compute_pad(h, w)
        ph, pw = self._pad
        oh = (h + 2 * ph - kh) // sh + 1
        ow = (w + 2 * pw - kw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"Conv2D kernel {self.kernel_size} with strides {self.strides} "
                f"does not fit input {input_shape}"
            )
        kinit = get_initializer(self.kernel_initializer)
        binit = get_initializer(self.bias_initializer)
        self._params = {"W": kinit((kh, kw, c, self.filters), rng)}
        if self.use_bias:
            self._params["b"] = binit((self.filters,), rng)
        self.input_shape = (h, w, c)
        self.output_shape = (oh, ow, self.filters)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        kh, kw = self.kernel_size
        cols, (oh, ow) = im2col(x, kh, kw, self.strides, self._pad)
        w_mat = self._params["W"].reshape(-1, self.filters)
        out = cols @ w_mat
        if self.use_bias:
            out += self._params["b"]
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return out.reshape(x.shape[0], oh, ow, self.filters)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        kh, kw = self.kernel_size
        n = grad_out.shape[0]
        g = grad_out.reshape(-1, self.filters)
        w_grad = (self._cols.T @ g).reshape(self._params["W"].shape)
        self._grads = {"W": w_grad}
        if self.use_bias:
            self._grads["b"] = g.sum(axis=0)
        cols_grad = g @ self._params["W"].reshape(-1, self.filters).T
        grad_in = col2im(
            cols_grad, self._x_shape, kh, kw, self.strides, self._pad
        )
        self._cols = None
        self._x_shape = None
        return grad_in
