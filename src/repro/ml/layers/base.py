"""Layer base classes.

The framework uses explicit forward/backward methods (no autograd): each
layer caches what it needs during ``forward`` and consumes it in
``backward``.  That keeps the arithmetic transparent and the memory
behaviour predictable — caches are plain ndarrays reused per batch.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np


class Layer(abc.ABC):
    """Abstract layer.

    Subclasses implement :meth:`forward` and :meth:`backward` and, if they
    have learnable state, override :attr:`params` / :attr:`grads`.

    Shapes use the Keras convention: the leading axis is the batch.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__.lower()
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters for ``input_shape`` (sans batch axis).

        Default: shape-preserving layer with no parameters.
        """
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        self.built = True

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for batch ``x``."""

    @abc.abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), populate parameter grads and return dL/d(input)."""

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Learnable parameter arrays by name (empty for stateless layers)."""
        return {}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient arrays matching :attr:`params` keys."""
        return {}

    @property
    def n_params(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.params.values()))

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(
                f"layer {self.name!r} used before build(); add it to a model "
                "or call build(input_shape, rng) first"
            )

    def __repr__(self) -> str:
        shape = self.output_shape if self.built else "?"
        return f"{type(self).__name__}(name={self.name!r}, out={shape})"


class ParamLayer(Layer):
    """Base for layers with learnable parameters.

    Provides dict-backed parameter/gradient storage; subclasses register
    arrays in :attr:`_params` during :meth:`build` and write matching
    entries in :attr:`_grads` during :meth:`backward`.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._params: Dict[str, np.ndarray] = {}
        self._grads: Dict[str, np.ndarray] = {}

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        return self._grads

    def set_params(self, new_params: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place (used by serialisation/tests)."""
        for key, value in new_params.items():
            if key not in self._params:
                raise KeyError(f"layer {self.name!r} has no parameter {key!r}")
            if self._params[key].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {self.name}.{key}: "
                    f"{self._params[key].shape} vs {value.shape}"
                )
            self._params[key][...] = value


def flat_param_list(layers: List[Layer]) -> List[Tuple[str, np.ndarray, np.ndarray]]:
    """Flatten (qualified name, param, grad) triples across ``layers``.

    Optimisers iterate this to apply updates; the qualified name
    (``layername/paramname``) keys per-parameter optimiser state.
    """
    out: List[Tuple[str, np.ndarray, np.ndarray]] = []
    for i, layer in enumerate(layers):
        for key, p in layer.params.items():
            g = layer.grads.get(key)
            if g is None:
                raise RuntimeError(
                    f"layer {layer.name!r} has param {key!r} but no gradient; "
                    "was backward() called?"
                )
            out.append((f"{i}:{layer.name}/{key}", p, g))
    return out
