"""Average pooling (+ global variant)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.layers.base import Layer


def _pair(v) -> Tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    a, b = v
    return (int(a), int(b))


class AveragePool2D(Layer):
    """Mean over pooling windows, channels-last.

    Like :class:`~repro.ml.layers.pool.MaxPool2D` but the gradient
    spreads uniformly over each window — fully vectorised via strided
    views.
    """

    def __init__(self, pool_size=2, strides=None, name: Optional[str] = None):
        super().__init__(name)
        self.pool_size = _pair(pool_size)
        self.strides = _pair(strides) if strides is not None else self.pool_size
        self._x_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"AveragePool2D expects (h, w, c) inputs, got {input_shape}"
            )
        h, w, c = (int(d) for d in input_shape)
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh = (h - ph) // sh + 1
        ow = (w - pw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(f"pool {self.pool_size} does not fit {input_shape}")
        self.input_shape = (h, w, c)
        self.output_shape = (oh, ow, c)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        n = x.shape[0]
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh, ow, c = self.output_shape  # type: ignore[misc]
        sn, sh_, sw_, sc = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, oh, ow, ph, pw, c),
            strides=(sn, sh_ * sh, sw_ * sw, sh_, sw_, sc),
            writeable=False,
        )
        if training:
            self._x_shape = x.shape
        return windows.mean(axis=(3, 4))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._x_shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh, ow, _ = self.output_shape  # type: ignore[misc]
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        share = grad_out / (ph * pw)
        for i in range(ph):
            for j in range(pw):
                grad_in[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :] += share
        self._x_shape = None
        return grad_in


class GlobalAveragePool2D(Layer):
    """Mean over all spatial positions: ``(n, h, w, c) → (n, c)``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"GlobalAveragePool2D expects (h, w, c), got {input_shape}"
            )
        self.input_shape = tuple(input_shape)
        self.output_shape = (int(input_shape[2]),)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._x_shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        n, h, w, c = self._x_shape
        grad_in = np.broadcast_to(
            grad_out[:, None, None, :] / (h * w), self._x_shape
        ).copy()
        self._x_shape = None
        return grad_in
