"""Max pooling."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.layers.base import Layer


def _pair(v) -> Tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    a, b = v
    return (int(a), int(b))


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) windows, channels-last.

    For the common case ``pool == stride`` and an evenly-divisible input,
    pooling is a pure reshape + max — no gather/scatter, fully vectorised.
    The general case falls back to a strided-view reduction.
    """

    def __init__(self, pool_size=2, strides=None, name: Optional[str] = None):
        super().__init__(name)
        self.pool_size = _pair(pool_size)
        self.strides = _pair(strides) if strides is not None else self.pool_size
        self._argmax: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"MaxPool2D expects (h, w, c) inputs, got {input_shape}"
            )
        h, w, c = (int(d) for d in input_shape)
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh = (h - ph) // sh + 1
        ow = (w - pw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"pool {self.pool_size} does not fit input {input_shape}"
            )
        self.input_shape = (h, w, c)
        self.output_shape = (oh, ow, c)
        self.built = True

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Strided view ``(n, oh, ow, ph, pw, c)`` over pooling windows."""
        n, h, w, c = x.shape
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh, ow, _ = self.output_shape  # type: ignore[misc]
        sn, sh_, sw_, sc = x.strides
        return np.lib.stride_tricks.as_strided(
            x,
            shape=(n, oh, ow, ph, pw, c),
            strides=(sn, sh_ * sh, sw_ * sw, sh_, sw_, sc),
            writeable=False,
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        windows = self._windows(x)
        n, oh, ow, ph, pw, c = windows.shape
        flat = windows.reshape(n, oh, ow, ph * pw, c)
        out = flat.max(axis=3)
        if training:
            self._argmax = flat.argmax(axis=3)
            self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        n, h, w, c = self._x_shape
        ph, pw = self.pool_size
        sh, sw = self.strides
        oh, ow, _ = self.output_shape  # type: ignore[misc]
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        # Decompose flat argmax back into (dy, dx) offsets.
        dy = self._argmax // pw
        dx = self._argmax % pw
        n_idx, oh_idx, ow_idx, c_idx = np.indices((n, oh, ow, c))
        rows = oh_idx * sh + dy
        cols_ = ow_idx * sw + dx
        np.add.at(grad_in, (n_idx, rows, cols_, c_idx), grad_out)
        self._argmax = None
        self._x_shape = None
        return grad_in
