"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so layer
construction is deterministic given a seed (bit-reproducible HPO trials).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv kernels.

    Dense kernels are ``(in, out)``; conv kernels are
    ``(kh, kw, in_ch, out_ch)`` where the receptive field multiplies both
    fans (Keras convention).
    """
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    if len(shape) == 4:
        receptive = int(shape[0]) * int(shape[1])
        return receptive * int(shape[2]), receptive * int(shape[3])
    n = int(np.prod(shape))
    return n, n


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(−l, l) with l = sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2 / fan_in)) — the ReLU-friendly initialiser."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float64)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape, dtype=np.float64)


_INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
}


def get_initializer(name: str) -> Initializer:
    """Look an initialiser up by name (``ValueError`` on unknown names)."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; known: {sorted(_INITIALIZERS)}"
        ) from None
