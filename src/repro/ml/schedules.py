"""Learning-rate schedules.

A schedule is attached to training via :class:`LearningRateScheduler`
(a callback) and mutates the optimiser's ``learning_rate`` at each epoch
start.  Decaying the rate is one of the standard hyperparameters an HPO
study can sweep — included for the extended search spaces.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.ml.callbacks import Callback
from repro.util.validation import check_in_range, check_positive


class LearningRateSchedule(abc.ABC):
    """Maps (epoch, base learning rate) → learning rate."""

    @abc.abstractmethod
    def __call__(self, epoch: int, base_lr: float) -> float:
        """Learning rate to use for ``epoch`` (0-based)."""


class ConstantLR(LearningRateSchedule):
    """No decay (the default behaviour without a scheduler)."""

    def __call__(self, epoch: int, base_lr: float) -> float:
        return base_lr


class StepDecay(LearningRateSchedule):
    """Multiply by ``factor`` every ``step_size`` epochs.

    >>> s = StepDecay(step_size=10, factor=0.5)
    >>> s(0, 1.0), s(10, 1.0), s(20, 1.0)
    (1.0, 0.5, 0.25)
    """

    def __init__(self, step_size: int = 10, factor: float = 0.5):
        check_positive("step_size", step_size)
        check_in_range("factor", factor, 0.0, 1.0, inclusive=False)
        self.step_size = int(step_size)
        self.factor = float(factor)

    def __call__(self, epoch: int, base_lr: float) -> float:
        return base_lr * self.factor ** (epoch // self.step_size)


class ExponentialDecay(LearningRateSchedule):
    """``lr = base · exp(−rate · epoch)``."""

    def __init__(self, rate: float = 0.05):
        check_positive("rate", rate)
        self.rate = float(rate)

    def __call__(self, epoch: int, base_lr: float) -> float:
        return float(base_lr * np.exp(-self.rate * epoch))


class CosineDecay(LearningRateSchedule):
    """Cosine annealing from ``base`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, total_epochs: int, min_lr: float = 0.0):
        check_positive("total_epochs", total_epochs)
        if min_lr < 0:
            raise ValueError(f"min_lr must be >= 0, got {min_lr}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def __call__(self, epoch: int, base_lr: float) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (base_lr - self.min_lr) * (
            1.0 + float(np.cos(np.pi * t))
        )


class LearningRateScheduler(Callback):
    """Callback applying a schedule (or plain function) each epoch.

    The base learning rate is captured at ``on_train_begin`` so the same
    optimiser can be reused across fits.
    """

    def __init__(self, schedule: "LearningRateSchedule | Callable[[int, float], float]"):
        self.schedule = schedule
        self._base_lr: Optional[float] = None
        self.history: list = []

    def on_train_begin(self, logs=None) -> None:
        if self.model.optimizer is None:
            raise RuntimeError("LearningRateScheduler needs a compiled model")
        self._base_lr = self.model.optimizer.learning_rate
        self.history = []

    def on_epoch_begin(self, epoch: int, logs=None) -> None:
        assert self._base_lr is not None
        lr = float(self.schedule(epoch, self._base_lr))
        if lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {lr} at epoch {epoch}")
        self.model.optimizer.learning_rate = lr
        self.history.append(lr)

    def on_train_end(self, logs=None) -> None:
        if self._base_lr is not None:
            self.model.optimizer.learning_rate = self._base_lr
