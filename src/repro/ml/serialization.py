"""Model weight serialisation (npz-based).

Long HPO studies need to persist the winning model ("for long running
applications … it's important to ensure continuity", paper §3); this
module saves/loads :class:`~repro.ml.model.Sequential` weights plus a
minimal architecture fingerprint so mismatched loads fail loudly instead
of silently mangling parameters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ml.model import Sequential

FORMAT_VERSION = 1


def _fingerprint(model: Sequential) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "layers": [
            {
                "type": type(layer).__name__,
                "name": layer.name,
                "params": {k: list(v.shape) for k, v in layer.params.items()},
            }
            for layer in model.layers
        ],
    }


def save_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Save all weights of a built model to ``path`` (``.npz``)."""
    if not model.built:
        raise ValueError("cannot save an unbuilt model; call build()/fit() first")
    path = Path(path)
    arrays = {}
    for i, layer in enumerate(model.layers):
        for key, value in layer.params.items():
            arrays[f"{i}:{key}"] = value
    arrays["__meta__"] = np.frombuffer(
        json.dumps(_fingerprint(model)).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    # np.savez appends .npz if missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_weights(model: Sequential, path: Union[str, Path]) -> Sequential:
    """Load weights saved by :func:`save_weights` into a built model.

    The model must have the same layer structure (type + parameter
    shapes); mismatches raise ``ValueError`` naming the first offender.
    """
    if not model.built:
        raise ValueError("build the model (same architecture) before loading")
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported weights format {meta.get('format_version')!r}"
            )
        saved_layers = meta["layers"]
        if len(saved_layers) != len(model.layers):
            raise ValueError(
                f"model has {len(model.layers)} layers but file has "
                f"{len(saved_layers)}"
            )
        for i, (layer, saved) in enumerate(zip(model.layers, saved_layers)):
            if type(layer).__name__ != saved["type"]:
                raise ValueError(
                    f"layer {i}: model has {type(layer).__name__}, file has "
                    f"{saved['type']}"
                )
            for key, shape in saved["params"].items():
                if key not in layer.params:
                    raise ValueError(f"layer {i}: file param {key!r} missing in model")
                if list(layer.params[key].shape) != shape:
                    raise ValueError(
                        f"layer {i} param {key!r}: shape {shape} in file vs "
                        f"{list(layer.params[key].shape)} in model"
                    )
                layer.params[key][...] = data[f"{i}:{key}"]
    return model
