"""Training callbacks.

The paper twice stresses early stopping: per-trial ("training doesn't have
to run all the way to the end", §4) and across trials ("the process can be
stopped as soon as one task achieves a specified accuracy", §6.1).  The
per-trial half lives here; the cross-trial half is
:mod:`repro.hpo.early_stopping`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np


class Callback:
    """Base callback; all hooks are optional no-ops.

    ``set_model`` is called once before training; hooks receive the 0-based
    epoch index and the dict of epoch-end logs (``loss``, ``accuracy``,
    ``val_loss``, ``val_accuracy`` when validation data is present).
    """

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self, logs: Optional[Dict[str, float]] = None) -> None:
        """Called once before the first epoch."""

    def on_epoch_begin(self, epoch: int, logs: Optional[Dict[str, float]] = None) -> None:
        """Called at the start of each epoch."""

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        """Called after each epoch with that epoch's metrics."""

    def on_train_end(self, logs: Optional[Dict[str, float]] = None) -> None:
        """Called once after the last epoch (or early stop)."""


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving.

    Parameters
    ----------
    monitor:
        Logs key to watch (e.g. ``"val_loss"`` or ``"val_accuracy"``).
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    mode:
        ``"min"`` (default for losses) or ``"max"`` (accuracies); ``"auto"``
        infers from the metric name.
    restore_best_weights:
        Restore the weights from the best epoch when stopping.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 3,
        min_delta: float = 0.0,
        mode: str = "auto",
        restore_best_weights: bool = False,
    ):
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        if mode not in ("auto", "min", "max"):
            raise ValueError(f"mode must be auto/min/max, got {mode!r}")
        if mode == "auto":
            mode = "max" if "acc" in monitor else "min"
        self.monitor = monitor
        self.patience = patience
        self.min_delta = abs(float(min_delta))
        self.mode = mode
        self.restore_best_weights = restore_best_weights
        self.stopped_epoch: Optional[int] = None
        self.best: float = np.inf if mode == "min" else -np.inf
        self._wait = 0
        self._best_weights = None

    def _improved(self, value: float) -> bool:
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_train_begin(self, logs=None) -> None:
        self.best = np.inf if self.mode == "min" else -np.inf
        self._wait = 0
        self.stopped_epoch = None
        self._best_weights = None

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        if self.monitor not in logs:
            raise KeyError(
                f"EarlyStopping monitors {self.monitor!r} but epoch logs only "
                f"have {sorted(logs)}; pass validation data to fit()?"
            )
        value = float(logs[self.monitor])
        if self._improved(value):
            self.best = value
            self._wait = 0
            if self.restore_best_weights:
                self._best_weights = self.model.get_weights()
        else:
            self._wait += 1
            if self._wait > self.patience:
                self.stopped_epoch = epoch
                self.model.stop_training = True
                if self.restore_best_weights and self._best_weights is not None:
                    self.model.set_weights(self._best_weights)


class TargetMetricStopping(Callback):
    """Stop as soon as a metric crosses a target value.

    Implements the paper's §6.1 observation for a single trial: "it makes
    no sense to continue … after one has achieved the desired accuracy".
    """

    def __init__(self, monitor: str = "val_accuracy", target: float = 0.9):
        self.monitor = monitor
        self.target = float(target)
        self.stopped_epoch: Optional[int] = None

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        value = logs.get(self.monitor)
        if value is not None and float(value) >= self.target:
            self.stopped_epoch = epoch
            self.model.stop_training = True


class PreemptionCheckpoint(Callback):
    """Cooperative suspension: poll a flag each checkpoint epoch, spill warm.

    Rides ``on_epoch_end`` so the cut is always on an epoch boundary: when
    ``should_suspend()`` answers True at a checkpoint epoch, the callback
    captures the model's full training state (weights, optimiser, RNG
    streams, history) with the epoch *cursor* pointing at the next epoch
    to run, hands it to ``spill`` (atomic write + checksum sidecar), and
    stops training.  The owner detects the stop via ``suspended_epoch``
    and requeues the trial as a resumable task.

    Parameters
    ----------
    should_suspend:
        Zero-arg predicate polled once per checkpoint epoch (e.g.
        ``PreemptContext.should_suspend``).
    spill:
        Called with the captured state dict when suspending.
    every:
        Checkpoint-epoch cadence (poll every ``every``-th epoch end);
        maps from ``RuntimeConfig.preempt_checkpoint_epochs``.
    """

    def __init__(
        self,
        should_suspend: Callable[[], bool],
        spill: Callable[[Dict], object],
        every: int = 1,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.should_suspend = should_suspend
        self.spill = spill
        self.every = int(every)
        self.suspended_epoch: Optional[int] = None

    def on_train_begin(self, logs=None) -> None:
        self.suspended_epoch = None

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        if (epoch + 1) % self.every != 0:
            return
        if self.model.stop_training:  # an earlier callback already finished it
            return
        if not self.should_suspend():
            return
        state = self.model.capture_training_state(epoch + 1, self.model.history)
        self.spill(state)
        self.suspended_epoch = epoch
        self.model.stop_training = True


class LambdaCallback(Callback):
    """Adapter turning plain functions into a callback.

    >>> seen = []
    >>> cb = LambdaCallback(on_epoch_end=lambda e, logs: seen.append(e))
    """

    def __init__(
        self,
        on_train_begin: Optional[Callable] = None,
        on_epoch_begin: Optional[Callable] = None,
        on_epoch_end: Optional[Callable] = None,
        on_train_end: Optional[Callable] = None,
    ):
        self._on_train_begin = on_train_begin
        self._on_epoch_begin = on_epoch_begin
        self._on_epoch_end = on_epoch_end
        self._on_train_end = on_train_end

    def on_train_begin(self, logs=None) -> None:
        if self._on_train_begin:
            self._on_train_begin(logs)

    def on_epoch_begin(self, epoch, logs=None) -> None:
        if self._on_epoch_begin:
            self._on_epoch_begin(epoch, logs)

    def on_epoch_end(self, epoch, logs) -> None:
        if self._on_epoch_end:
            self._on_epoch_end(epoch, logs)

    def on_train_end(self, logs=None) -> None:
        if self._on_train_end:
            self._on_train_end(logs)
