"""Loss functions.

Each loss exposes ``value(y_true, y_pred)`` and ``gradient(y_true, y_pred)``
where the gradient is dL/d(model output), averaged over the batch.
:class:`CategoricalCrossentropy` supports ``from_logits=True`` which fuses
softmax + cross-entropy for numerical stability (the gradient collapses to
``(p − y) / n``).
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro.ml.layers.activations import softmax


class Loss(abc.ABC):
    """Abstract loss over batched predictions."""

    @abc.abstractmethod
    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        """dL/d(y_pred), already divided by the batch size."""

    @staticmethod
    def _check_shapes(y_true: np.ndarray, y_pred: np.ndarray) -> None:
        if y_true.shape != y_pred.shape:
            raise ValueError(
                f"y_true shape {y_true.shape} != y_pred shape {y_pred.shape}"
            )


class CategoricalCrossentropy(Loss):
    """Cross-entropy over one-hot targets.

    Parameters
    ----------
    from_logits:
        If True, ``y_pred`` are unnormalised logits and softmax is applied
        internally (the numerically-stable path used by the model zoo).
    eps:
        Probability floor used when ``from_logits=False``.
    """

    def __init__(self, from_logits: bool = True, eps: float = 1e-12):
        self.from_logits = from_logits
        self.eps = float(eps)

    def _probs(self, y_pred: np.ndarray) -> np.ndarray:
        if self.from_logits:
            return softmax(y_pred)
        return np.clip(y_pred, self.eps, 1.0)

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        self._check_shapes(y_true, y_pred)
        if self.from_logits:
            # log-softmax computed stably: x - max - log(sum(exp(x - max)))
            shifted = y_pred - y_pred.max(axis=-1, keepdims=True)
            log_probs = shifted - np.log(
                np.exp(shifted).sum(axis=-1, keepdims=True)
            )
            return float(-(y_true * log_probs).sum() / y_true.shape[0])
        probs = self._probs(y_pred)
        return float(-(y_true * np.log(probs)).sum() / y_true.shape[0])

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        self._check_shapes(y_true, y_pred)
        n = y_true.shape[0]
        if self.from_logits:
            return (softmax(y_pred) - y_true) / n
        probs = self._probs(y_pred)
        return (-y_true / probs) / n


class MeanSquaredError(Loss):
    """Mean squared error (per-element mean)."""

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        self._check_shapes(y_true, y_pred)
        diff = y_pred - y_true
        return float(np.mean(diff * diff))

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        self._check_shapes(y_true, y_pred)
        return 2.0 * (y_pred - y_true) / y_true.size


_LOSSES = {
    "categorical_crossentropy": lambda: CategoricalCrossentropy(from_logits=True),
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
}


def get_loss(loss: Union[str, Loss]) -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(loss, Loss):
        return loss
    try:
        return _LOSSES[loss]()
    except KeyError:
        raise ValueError(f"unknown loss {loss!r}; known: {sorted(_LOSSES)}") from None
