"""Trace recording (the Extrae stand-in).

The recorder is deliberately dumb — executors push
:class:`TaskRecord` intervals and point :class:`TraceEvent` flags into
lists — so that recording overhead is negligible and both the real and
the simulated executor share it.  Tracing is optional (the paper: "both
tracing and graph generation create a performance overhead … easily
turned off by a simple flag").

Zero-cost-when-off contract: executors must gate on
:attr:`TraceRecorder.enabled` *before* constructing a
:class:`TaskRecord`/:class:`TraceEvent`, so the traces-off fast path
pays neither object construction nor a method call per task.  The
recorder's own no-op guard remains only as a safety net for callers
outside the dispatch hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TaskRecord:
    """One task attempt's occupation of concrete resources."""

    task_label: str
    task_name: str
    node: str
    cpu_ids: Tuple[int, ...]
    gpu_ids: Tuple[int, ...]
    start: float
    end: float
    success: bool = True
    attempt: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"record for {self.task_label} ends before it starts "
                f"({self.end} < {self.start})"
            )


@dataclass(frozen=True)
class TraceEvent:
    """A point event (the paper's 'event flags'), e.g. a task start."""

    time: float
    kind: str
    task_label: str
    node: str


class TraceRecorder:
    """Collects task records and point events.

    Parameters
    ----------
    enabled:
        When False every record call is a no-op (the paper's traces-off
        mode used for the timing runs of Fig. 9).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TaskRecord] = []
        self.events: List[TraceEvent] = []

    def record_task(self, record: TaskRecord) -> None:
        """Store one completed (or failed) task attempt interval."""
        if self.enabled:
            self.records.append(record)

    def record_event(
        self, time: float, kind: str, task_label: str, node: str
    ) -> None:
        """Store one point event."""
        if self.enabled:
            self.events.append(TraceEvent(time, kind, task_label, node))

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.records.clear()
        self.events.clear()

    @property
    def makespan(self) -> float:
        """Latest end minus earliest start over all records (0 if empty)."""
        if not self.records:
            return 0.0
        start = min(r.start for r in self.records)
        end = max(r.end for r in self.records)
        return end - start

    def records_for_node(self, node: str) -> List[TaskRecord]:
        return [r for r in self.records if r.node == node]

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]
