"""Tracing: Extrae-style recording, Paraver-style export, analysis.

"When tracing is set (this is done using a simple flag), PyCOMPSs
generates a set of traces that help in application analysis … Paraver is
a powerful tool that provides detailed quantitative analysis" (paper §5).
The recorder captures per-core task intervals; the analysis module
recomputes everything the paper reads off its Paraver screenshots
(Figs. 4–6), and the exporter writes a Paraver-like ``.prv`` text file.
"""

from repro.runtime.tracing.extrae import TraceRecorder, TaskRecord, TraceEvent
from repro.runtime.tracing.analysis import TraceAnalysis
from repro.runtime.tracing.paraver import export_prv

__all__ = [
    "TraceRecorder",
    "TaskRecord",
    "TraceEvent",
    "TraceAnalysis",
    "export_prv",
]
