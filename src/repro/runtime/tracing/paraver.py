"""Paraver-style ``.prv`` export.

Writes a simplified Paraver trace: a header line plus one state record per
task attempt, ``1:node:core:task:start:end:state`` with times in
microseconds.  (Real Extrae traces carry far more event types; this keeps
the record structure — object hierarchy, begin/end, state — that the
paper's figures read.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.runtime.tracing.extrae import TraceRecorder

#: Paraver-ish state codes.
STATE_RUNNING = 1
STATE_FAILED = 5


def export_prv(recorder: TraceRecorder, path: Union[str, Path]) -> Path:
    """Write the trace to ``path``; returns the path.

    Node and core names are mapped to dense integer ids; the mapping is
    written as ``#`` comment lines so the file is self-describing.
    """
    path = Path(path)
    records = sorted(recorder.records, key=lambda r: (r.start, r.node))
    node_ids: Dict[str, int] = {}
    lines = []
    end_time = max((r.end for r in records), default=0.0)
    lines.append(f"#Paraver (repro-simplified):{int(end_time * 1e6)}us")
    for r in records:
        node_id = node_ids.setdefault(r.node, len(node_ids) + 1)
        state = STATE_RUNNING if r.success else STATE_FAILED
        for c in r.cpu_ids:
            lines.append(
                f"1:{node_id}:{c + 1}:{r.task_label}:"
                f"{int(r.start * 1e6)}:{int(r.end * 1e6)}:{state}"
            )
        for g in r.gpu_ids:
            lines.append(
                f"1:{node_id}:gpu{g + 1}:{r.task_label}:"
                f"{int(r.start * 1e6)}:{int(r.end * 1e6)}:{state}"
            )
    for node, nid in sorted(node_ids.items(), key=lambda kv: kv[1]):
        lines.append(f"# node {nid} = {node}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
