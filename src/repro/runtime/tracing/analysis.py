"""Trace analysis — the quantitative version of the paper's Paraver reads.

Given a :class:`~repro.runtime.tracing.extrae.TraceRecorder`, this module
computes makespan, per-core busy time and utilisation, concurrency
profiles ("24 tasks were started at the same time", Fig. 5), idle nodes
("the first node seems empty as it is used by the worker", Fig. 6a), and
renders an ASCII Gantt chart per core — the textual equivalent of the
Paraver timeline screenshots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.resilience import ResilienceEvent, ResilienceLog
from repro.runtime.tracing.extrae import TaskRecord, TraceRecorder
from repro.util.validation import check_positive

CoreKey = Tuple[str, str, int]  # (node, "cpu"|"gpu", index)


class TraceAnalysis:
    """Quantitative queries over a recorded trace.

    ``resilience`` (optional) is the runtime's :class:`ResilienceLog`;
    when present, resilience decisions (timeouts, speculation, node
    quarantine) are queryable alongside the trace and appear in
    :meth:`summary`.

    ``dispatch`` (optional) is the runtime's live
    :class:`~repro.runtime.dispatch.DispatchStats`; when present, the
    batching/scheduling counters are snapshotted at construction and
    queryable via :meth:`dispatch`.
    """

    def __init__(
        self,
        recorder: TraceRecorder,
        resilience: Optional[ResilienceLog] = None,
        dispatch=None,
    ):
        self.records: List[TaskRecord] = list(recorder.records)
        self.events = list(recorder.events)
        self.resilience: List[ResilienceEvent] = (
            list(resilience.events) if resilience is not None else []
        )
        self._dispatch: Dict[str, int] = (
            dispatch.snapshot() if dispatch is not None else {}
        )

    # ------------------------------------------------------------------
    # Basic aggregates
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End of last task minus start of first (0 for empty traces)."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records) - min(r.start for r in self.records)

    @property
    def t0(self) -> float:
        """Earliest recorded start."""
        return min((r.start for r in self.records), default=0.0)

    def per_core_busy(self) -> Dict[CoreKey, float]:
        """Total busy seconds per (node, kind, core-id)."""
        busy: Dict[CoreKey, float] = defaultdict(float)
        for r in self.records:
            for c in r.cpu_ids:
                busy[(r.node, "cpu", c)] += r.duration
            for g in r.gpu_ids:
                busy[(r.node, "gpu", g)] += r.duration
        return dict(busy)

    def utilization(self, total_cores: Optional[int] = None) -> float:
        """Busy core-seconds / (cores × makespan).

        ``total_cores`` defaults to the number of distinct CPU cores that
        appear in the trace (i.e. utilisation of *used* cores).
        """
        if not self.records:
            return 0.0
        busy = self.per_core_busy()
        cpu_busy = sum(v for (n, kind, c), v in busy.items() if kind == "cpu")
        if total_cores is None:
            total_cores = len([k for k in busy if k[1] == "cpu"])
        if total_cores == 0:
            return 0.0
        span = self.makespan
        return cpu_busy / (total_cores * span) if span > 0 else 0.0

    def cores_used(self, node: Optional[str] = None) -> List[CoreKey]:
        """Distinct cores that ran at least one task."""
        keys = set()
        for r in self.records:
            if node is not None and r.node != node:
                continue
            for c in r.cpu_ids:
                keys.add((r.node, "cpu", c))
            for g in r.gpu_ids:
                keys.add((r.node, "gpu", g))
        return sorted(keys)

    def nodes_used(self) -> List[str]:
        """Distinct nodes that ran at least one task."""
        return sorted({r.node for r in self.records})

    def idle_nodes(self, all_nodes: Sequence[str]) -> List[str]:
        """Nodes of ``all_nodes`` with no task record (Fig. 6a worker node)."""
        used = set(self.nodes_used())
        return [n for n in all_nodes if n not in used]

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------
    def concurrency_profile(self) -> List[Tuple[float, int]]:
        """Stepwise (time, #running-tasks) profile from record boundaries."""
        deltas: List[Tuple[float, int]] = []
        for r in self.records:
            deltas.append((r.start, +1))
            deltas.append((r.end, -1))
        deltas.sort()
        profile: List[Tuple[float, int]] = []
        running = 0
        for t, d in deltas:
            running += d
            if profile and profile[-1][0] == t:
                profile[-1] = (t, running)
            else:
                profile.append((t, running))
        return profile

    def max_concurrency(self) -> int:
        """Peak number of simultaneously-running tasks."""
        return max((n for _, n in self.concurrency_profile()), default=0)

    def per_node_utilization(self, cores_per_node: Optional[Dict[str, int]] = None):
        """Busy-core-seconds / (cores × makespan) per node.

        ``cores_per_node`` maps node name → CPU core count; without it,
        the denominator uses the cores each node actually exercised (so
        values read as utilisation of *used* cores).
        """
        span = self.makespan
        if span <= 0:
            return {}
        busy_per_node: Dict[str, float] = defaultdict(float)
        used_cores: Dict[str, set] = defaultdict(set)
        for r in self.records:
            busy_per_node[r.node] += r.duration * len(r.cpu_ids)
            used_cores[r.node].update(r.cpu_ids)
        out: Dict[str, float] = {}
        for node, busy in busy_per_node.items():
            denom = (
                cores_per_node.get(node, len(used_cores[node]))
                if cores_per_node
                else len(used_cores[node])
            )
            out[node] = busy / (denom * span) if denom else 0.0
        return out

    def busy_cores_timeline(
        self, n_points: int = 50
    ) -> List[Tuple[float, int]]:
        """Sampled (time, #busy CPU cores) series over the makespan.

        The utilisation-over-time view a Paraver user reads off the
        timeline colour density; drives utilisation plots in reports.
        """
        check_positive("n_points", n_points)
        if not self.records:
            return []
        t0 = self.t0
        t1 = t0 + self.makespan
        times = [t0 + (t1 - t0) * i / max(1, n_points - 1) for i in range(n_points)]
        out: List[Tuple[float, int]] = []
        for t in times:
            busy = sum(
                len(r.cpu_ids)
                for r in self.records
                if r.start <= t < r.end
            )
            out.append((t, busy))
        return out

    def started_within(self, window: float) -> int:
        """Tasks whose start lies within ``window`` seconds of the first.

        The Fig. 5 observation — "24 tasks were started at the same time"
        — is this count with a small window.
        """
        if not self.records:
            return 0
        t0 = min(r.start for r in self.records)
        return sum(1 for r in self.records if r.start - t0 <= window)

    def stragglers(self) -> List[TaskRecord]:
        """Records that started after the initial wave (start > t0)."""
        if not self.records:
            return []
        t0 = min(r.start for r in self.records)
        return sorted(
            (r for r in self.records if r.start > t0), key=lambda r: r.start
        )

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def resilience_counts(self) -> Dict[str, int]:
        """``event kind → occurrences`` over the resilience log."""
        out: Dict[str, int] = {}
        for e in self.resilience:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def worker_churn(self) -> Dict[str, int]:
        """Worker-pool lifecycle summary (``backend="workers"`` studies).

        Counts of crashes contained, deadline hard-kills, graceful
        recycles, and poison-task quarantines — the process-churn view of
        a supervised-pool run (all zero on other backends).
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "crashes": counts.get(rsl.WORKER_CRASH, 0),
            "hard_kills": counts.get(rsl.WORKER_KILLED, 0),
            "recycles": counts.get(rsl.WORKER_RECYCLED, 0),
            "poisoned_tasks": counts.get(rsl.POISON_TASK, 0),
        }

    def data_integrity(self) -> Dict[str, int]:
        """Data-plane integrity summary (``verify_outputs`` studies).

        Counts of detected corruptions, replica repairs, lineage
        recomputes, and transfer retries/failures — the end-to-end
        data-integrity view of a run (all zero when verification is off
        and no transfer chaos was injected).
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "corruptions": counts.get(rsl.DATA_CORRUPT, 0),
            "replica_repairs": counts.get(rsl.REPLICA_REPAIR, 0),
            "recomputes": counts.get(rsl.INTEGRITY_RECOMPUTE, 0),
            "transfer_retries": counts.get(rsl.TRANSFER_RETRY, 0),
            "transfer_failures": counts.get(rsl.TRANSFER_FAILED, 0),
        }

    def churn(self) -> Dict[str, int]:
        """Node-churn summary (elastic / spot-market studies).

        Counts of preemption notices received, graceful drains started
        and completed, drain deadlines that escalated to failures, nodes
        lost outright, nodes that rejoined, constraint classes that
        starved, and consumers cancelled because a producer died
        terminally — the cluster-elasticity view of a run (all zero on
        a static cluster).
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "preemption_notices": counts.get(rsl.PREEMPTION_NOTICE, 0),
            "drains_started": counts.get(rsl.NODE_DRAINING, 0),
            "drains_completed": counts.get(rsl.DRAIN_COMPLETE, 0),
            "drain_deadline_escalations": counts.get(rsl.DRAIN_DEADLINE, 0),
            "nodes_lost": counts.get(rsl.NODE_LOST, 0),
            "nodes_rejoined": counts.get(rsl.NODE_REJOINED, 0),
            "classes_starved": counts.get(rsl.CLASS_STARVED, 0),
            "upstream_cancellations": counts.get(rsl.UPSTREAM_CANCELLED, 0),
        }

    def service(self) -> Dict[str, int]:
        """Multi-tenant service summary (``repro serve`` daemons).

        Counts of studies admitted / completed / failed / cancelled /
        suspended and of load-shedding decisions — the tenancy view of a
        daemon life (all zero outside service mode).  Suspension is
        distinct from shedding: suspended studies parked warm and resume.
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "studies_admitted": counts.get(rsl.STUDY_ADMITTED, 0),
            "studies_completed": counts.get(rsl.STUDY_COMPLETED, 0),
            "studies_failed": counts.get(rsl.STUDY_FAILED, 0),
            "studies_cancelled": counts.get(rsl.STUDY_CANCELLED, 0),
            "studies_suspended": counts.get(rsl.STUDY_SUSPENDED, 0),
            "loads_shed": counts.get(rsl.LOAD_SHED, 0),
        }

    def preemption(self) -> Dict[str, int]:
        """Cooperative trial-preemption summary.

        Counts of trials flagged to suspend, suspend spills that landed
        on disk, trials resumed from their epoch cursor, async-ASHA rung
        promotions and whole-study suspensions — the warm pause/resume
        view of a run (all zero when preemption never triggered).
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "trials_suspended": counts.get(rsl.TRIAL_SUSPENDED, 0),
            "suspend_spills": counts.get(rsl.SUSPEND_SPILL, 0),
            "trials_resumed": counts.get(rsl.TRIAL_RESUMED, 0),
            "rung_promotions": counts.get(rsl.RUNG_PROMOTION, 0),
            "studies_suspended": counts.get(rsl.STUDY_SUSPENDED, 0),
        }

    def reuse(self) -> Dict[str, int]:
        """Cross-trial reuse-cache summary (verified stage memoisation).

        Counts of verified cache hits, misses, corrupt entries detected
        at verify time, LRU evictions and single-flight lease waits —
        the stage-reuse view of a run (all zero when the cache is off).
        """
        from repro.runtime import resilience as rsl

        counts = self.resilience_counts()
        return {
            "cache_hits": counts.get(rsl.CACHE_HIT, 0),
            "cache_misses": counts.get(rsl.CACHE_MISS, 0),
            "cache_corrupt": counts.get(rsl.CACHE_CORRUPT, 0),
            "cache_evictions": counts.get(rsl.CACHE_EVICT, 0),
            "lease_waits": counts.get(rsl.LEASE_WAIT, 0),
        }

    def dispatch(self) -> Dict[str, float]:
        """Dispatch/batching summary (batched scheduling observability).

        ``rounds`` is the number of scheduling rounds the engine ran;
        with wake batching on, one round drains *all* completions that
        arrived in a simulator wake, so ``avg_batch_size`` (tasks placed
        per round) ≫ 1 is the signature of batching paying off.
        ``wakes`` counts blocked constraint classes woken by freed
        capacity; ``full_wakes`` counts topology changes that re-probe
        every class.  All zero when no dispatch stats were captured.
        """
        d = self._dispatch
        rounds = d.get("rounds", 0)
        placed = d.get("placed", 0)
        return {
            "rounds": rounds,
            "placed": placed,
            "avg_batch_size": round(placed / rounds, 3) if rounds else 0.0,
            "wakes": d.get("wakes", 0),
            "full_wakes": d.get("full_wakes", 0),
            "placement_probes": d.get("placement_probes", 0),
            "blocked_skips": d.get("blocked_skips", 0),
            "fair_rounds": d.get("fair_rounds", 0),
            "quota_skips": d.get("quota_skips", 0),
        }

    def resilience_events(self, kind: Optional[str] = None) -> List[ResilienceEvent]:
        """Resilience events, optionally filtered to one kind."""
        if kind is None:
            return list(self.resilience)
        return [e for e in self.resilience if e.kind == kind]

    def resilience_timeline(self, max_rows: int = 40) -> str:
        """One line per resilience event, in decision order."""
        if not self.resilience:
            return "(no resilience events)"
        lines = [e.describe() for e in self.resilience[:max_rows]]
        if len(self.resilience) > max_rows:
            lines.append(f"... ({len(self.resilience) - max_rows} more events)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt(self, width: int = 78, max_rows: int = 64) -> str:
        """ASCII Gantt chart: one row per core, '#' where a task runs.

        The textual counterpart of the Paraver timelines in Figs. 4–6:
        X axis is time, Y axis is the resource.
        """
        check_positive("width", width)
        if not self.records:
            return "(empty trace)"
        t0 = self.t0
        span = max(self.makespan, 1e-9)
        rows: Dict[CoreKey, List[str]] = {}
        for key in self.cores_used():
            rows[key] = [" "] * width
        for r in self.records:
            c0 = int((r.start - t0) / span * (width - 1))
            c1 = max(c0, int((r.end - t0) / span * (width - 1)))
            mark = "#" if r.success else "x"
            for c in r.cpu_ids:
                row = rows[(r.node, "cpu", c)]
                for i in range(c0, c1 + 1):
                    row[i] = mark
            for g in r.gpu_ids:
                row = rows[(r.node, "gpu", g)]
                for i in range(c0, c1 + 1):
                    row[i] = mark
        lines = [f"gantt: {len(rows)} resources, makespan {span:.1f}s"]
        for i, (key, cells) in enumerate(sorted(rows.items())):
            if i >= max_rows:
                lines.append(f"... ({len(rows) - max_rows} more resources)")
                break
            node, kind, idx = key
            label = f"{node}/{kind}{idx:03d}"
            lines.append(f"{label:<18}|{''.join(cells)}|")
        return "\n".join(lines)

    def summary(self) -> str:
        """Multi-line text summary (makespan, utilisation, concurrency)."""
        text = (
            f"tasks: {len(self.records)}  makespan: {self.makespan:.1f}s  "
            f"peak concurrency: {self.max_concurrency()}  "
            f"utilisation(used cores): {self.utilization():.1%}  "
            f"nodes: {len(self.nodes_used())}"
        )
        if self.resilience:
            counts = self.resilience_counts()
            parts = ", ".join(f"{k}: {counts[k]}" for k in sorted(counts))
            text += f"\nresilience events: {parts}"
        return text
