"""Resource accounting: workers, slots, allocations, and the pool.

COMPSs enforces CPU/GPU affinity (paper §3, *Resource Management*): a task
constrained to one core gets exactly one core.  We model that with
explicit slot indices — an :class:`Allocation` names the concrete core and
GPU ids a task holds, which is also what makes per-core traces (Figs. 4–6)
possible.

The paper's deployments reserve cores for the COMPSs master/worker
processes ("the worker takes half of the cores in a node", §5); the pool
supports a per-node ``reserved_cores`` map for that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.pycompss_api.constraint import ResourceConstraint
from repro.simcluster.machines import ClusterSpec
from repro.simcluster.node import NodeSpec
from repro.util.validation import check_non_negative

#: Worker lifecycle states.  ``UP`` accepts placements; ``DRAINING``
#: finishes its running tasks but accepts no new ones (graceful
#: preemption); ``DOWN`` is dead (crashed or retired after a drain);
#: ``QUARANTINED`` is a *health* overlay rendered by ``describe()`` when
#: the NodeHealth tracker has benched an otherwise-up node.
UP = "up"
DRAINING = "draining"
DOWN = "down"
QUARANTINED = "quarantined"


class Allocation:
    """Concrete resources held by one running task.

    A ``__slots__`` class (was a frozen dataclass): one is created per
    placement, and the frozen-dataclass ``__init__`` — every field set
    via ``object.__setattr__`` — was measurable at 100k+ tasks.
    Instances are immutable by convention: nothing mutates an allocation
    after :meth:`Worker._take` builds it — except ``tenant``, which the
    dispatch engine stamps once at placement time (service mode) so the
    release path can decrement the owning tenant's slot count.
    """

    __slots__ = ("node", "cpu_ids", "gpu_ids", "memory_gb", "tenant")

    def __init__(
        self,
        node: str,
        cpu_ids: Tuple[int, ...],
        gpu_ids: Tuple[int, ...] = (),
        memory_gb: float = 0.0,
    ):
        self.node = node
        self.cpu_ids = cpu_ids
        self.gpu_ids = gpu_ids
        self.memory_gb = memory_gb
        self.tenant = ""

    @property
    def cpu_units(self) -> int:
        return len(self.cpu_ids)

    @property
    def gpu_units(self) -> int:
        return len(self.gpu_ids)

    def describe(self) -> str:
        gpu = f" gpus={list(self.gpu_ids)}" if self.gpu_ids else ""
        return f"{self.node} cores={list(self.cpu_ids)}{gpu}"

    def __repr__(self) -> str:
        return f"Allocation({self.describe()})"


class Worker:
    """Slot accounting for one node."""

    def __init__(self, spec: NodeSpec, reserved_cores: int = 0):
        check_non_negative("reserved_cores", reserved_cores)
        if reserved_cores >= spec.cpu_cores:
            raise ValueError(
                f"cannot reserve {reserved_cores} of {spec.cpu_cores} cores "
                f"on {spec.name}"
            )
        self.spec = spec
        self.reserved_cores = reserved_cores
        self._name = spec.name
        #: Core ids available for tasks: the runtime processes occupy the
        #: first ``reserved_cores`` ids.
        self._free_cpus = list(range(reserved_cores, spec.cpu_cores))
        self._free_gpus = list(range(spec.gpus))
        self._free_memory = spec.memory_gb
        self._state = UP

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def state(self) -> str:
        """Lifecycle state: UP, DRAINING, or DOWN."""
        return self._state

    @property
    def available(self) -> bool:
        """Whether the node accepts *new* placements (UP only)."""
        return self._state == UP

    @property
    def draining(self) -> bool:
        return self._state == DRAINING

    @property
    def free_cpu_units(self) -> int:
        return len(self._free_cpus)

    @property
    def free_gpu_units(self) -> int:
        return len(self._free_gpus)

    @property
    def task_capacity_cpus(self) -> int:
        """CPU units usable by tasks (total minus reserved)."""
        return self.spec.cpu_cores - self.reserved_cores

    def matches_labels(self, labels: Mapping[str, str]) -> bool:
        if not labels:
            return True
        spec_labels = self.spec.labels
        for k, v in labels.items():
            if spec_labels.get(k) != v:
                return False
        return True

    def can_host(self, rc: ResourceConstraint) -> bool:
        """Whether this worker can run the task *right now*."""
        # Millions of calls per large study: plain field reads, no
        # property hops.
        return (
            self._state == UP
            and rc.cpu_units <= len(self._free_cpus)
            and rc.gpu_units <= len(self._free_gpus)
            and rc.memory_gb <= self._free_memory
            and self.matches_labels(rc.node_labels)
        )

    def could_ever_host(self, rc: ResourceConstraint) -> bool:
        """Whether the constraint fits this worker when fully idle."""
        return (
            rc.cpu_units <= self.task_capacity_cpus
            and rc.gpu_units <= self.spec.gpus
            and rc.memory_gb <= self.spec.memory_gb
            and self.matches_labels(rc.node_labels)
        )

    def allocate(self, rc: ResourceConstraint) -> Allocation:
        """Take concrete slots; raises RuntimeError if they don't fit."""
        if not self.can_host(rc):
            raise RuntimeError(
                f"worker {self.name} cannot host {rc.describe()} now "
                f"(free: {self.free_cpu_units}CPU/{self.free_gpu_units}GPU)"
            )
        return self._take(rc)

    def _take(self, rc: ResourceConstraint) -> Allocation:
        """Take slots unchecked — caller must have verified ``can_host``."""
        cpus = tuple(self._free_cpus[: rc.cpu_units])
        del self._free_cpus[: rc.cpu_units]
        gpus = tuple(self._free_gpus[: rc.gpu_units])
        del self._free_gpus[: rc.gpu_units]
        self._free_memory -= rc.memory_gb
        return Allocation(self._name, cpus, gpus, rc.memory_gb)

    def release(self, alloc: Allocation) -> None:
        """Return an allocation's slots to the free lists."""
        if alloc.node != self.name:
            raise ValueError(f"allocation is for {alloc.node}, not {self.name}")
        self._free_cpus.extend(alloc.cpu_ids)
        self._free_cpus.sort()
        self._free_gpus.extend(alloc.gpu_ids)
        self._free_gpus.sort()
        self._free_memory += alloc.memory_gb

    def drain(self) -> None:
        """Stop accepting new placements; running tasks keep their slots."""
        if self._state == UP:
            self._state = DRAINING

    def fail(self) -> None:
        """Mark the node down (running allocations are handled by caller)."""
        self._state = DOWN

    def recover(self) -> None:
        """Bring the node back with all slots free."""
        self._state = UP
        self._free_cpus = list(range(self.reserved_cores, self.spec.cpu_cores))
        self._free_gpus = list(range(self.spec.gpus))
        self._free_memory = self.spec.memory_gb


class ResourcePool:
    """All workers of a cluster, with thread-safe allocation.

    Parameters
    ----------
    cluster:
        The cluster description.
    reserved_cores:
        Either an int applied to the *first* node only (the COMPSs
        master/worker node) or a mapping node-name → reserved cores.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        reserved_cores: "int | Mapping[str, int]" = 0,
    ):
        self.cluster = cluster
        self._lock = threading.Lock()
        #: Optional NodeHealth tracker (set by the runtime): quarantined
        #: nodes are deprioritised by the scheduler via blocked_nodes().
        self.health = None
        #: Optional capacity-change listener (the runtime's dispatch
        #: engine).  Must only buffer notifications — it is called with
        #: the pool lock held and must never call back into the pool.
        self.listener = None
        #: Constraint-class capacity index: class_key -> names of workers
        #: whose *static* capacity (idle node) fits the constraint.  Label
        #: and capacity specs never change after construction, so entries
        #: are invalidated only when a node is added.
        self._static_fit: Dict[Tuple, List[str]] = {}
        #: Same index as a set, for O(1) membership on the single-node
        #: restricted-probe fast path.
        self._static_fit_sets: Dict[Tuple, frozenset] = {}
        #: Per-tenant running-slot counts (service mode).  A "slot" is one
        #: in-flight placement: charged by the dispatch engine when it
        #: places a tenant's task, released automatically when the
        #: stamped allocation is returned.  Empty outside service mode.
        self._tenant_slots: Dict[str, int] = {}
        self.workers: Dict[str, Worker] = {}
        for i, spec in enumerate(cluster.nodes):
            if isinstance(reserved_cores, Mapping):
                reserve = int(reserved_cores.get(spec.name, 0))
            else:
                reserve = int(reserved_cores) if i == 0 else 0
            self.workers[spec.name] = Worker(spec, reserve)

    # ------------------------------------------------------------------
    def worker(self, name: str) -> Worker:
        return self.workers[name]

    def available_workers(self) -> List[Worker]:
        return [w for w in self.workers.values() if w.available]

    def static_candidates(self, rc: ResourceConstraint) -> List[str]:
        """Workers whose idle capacity fits ``rc``, from the class index.

        Availability is *not* considered (it changes with node failures);
        callers filter by ``Worker.available``.  Because specs are
        immutable, the answer is cached per constraint class and only
        invalidated when a node joins the pool.
        """
        key = rc.class_key
        names = self._static_fit.get(key)
        if names is None:
            per_node = rc.per_node()
            names = [
                w.name
                for w in self.workers.values()
                if w.could_ever_host(per_node)
            ]
            self._static_fit[key] = names
        return names

    def _static_fit_set(self, rc: ResourceConstraint) -> frozenset:
        key = rc.class_key
        members = self._static_fit_sets.get(key)
        if members is None:
            members = frozenset(self.static_candidates(rc))
            self._static_fit_sets[key] = members
        return members

    def try_allocate(
        self,
        rc: ResourceConstraint,
        preferred: Optional[Iterable[str]] = None,
        only: Optional[set] = None,
    ) -> Optional[Allocation]:
        """First-fit allocation, optionally trying ``preferred`` nodes first.

        Only workers in the constraint's static-fit candidate list are
        probed: a node whose idle capacity cannot hold ``rc`` can never
        satisfy ``can_host``, so skipping it is free.

        ``only`` restricts probing to the named nodes *and is pruned in
        place*: a node probed and found unable to host is discarded from
        the set (its free capacity can only shrink until the caller next
        observes a release on it, so re-probing it before then is wasted
        work).  Callers own the set and re-add nodes as releases land.
        """
        with self._lock:
            if only is not None:
                workers = self.workers
                if preferred:
                    for name in preferred:
                        if name in only and name in workers:
                            w = workers[name]
                            if w.can_host(rc):
                                alloc = w._take(rc)
                                if (
                                    rc.cpu_units > len(w._free_cpus)
                                    or rc.gpu_units > len(w._free_gpus)
                                    or rc.memory_gb > w._free_memory
                                ):
                                    # Exhausted by this very allocation:
                                    # prune now so the caller's next probe
                                    # short-circuits instead of re-probing.
                                    # (Capacity-only check: labels/state
                                    # cannot change under the pool lock.)
                                    only.discard(name)
                                return alloc
                            only.discard(name)
                if not only:
                    return None
                if len(only) == 1:
                    # One restricted node (a wake from a single release —
                    # the steady-state drain shape): first-fit order is
                    # irrelevant, so probe it directly.  A node outside
                    # the static-fit set is skipped but NOT pruned: its
                    # failure is specific to this constraint, and the
                    # caller's restrict set is shared across `@implement`
                    # alternatives with different constraints.
                    (name,) = only
                    if name not in self._static_fit_set(rc):
                        return None
                    w = workers.get(name)
                    if w is not None and w.can_host(rc):
                        alloc = w._take(rc)
                        if (
                            rc.cpu_units > len(w._free_cpus)
                            or rc.gpu_units > len(w._free_gpus)
                            or rc.memory_gb > w._free_memory
                        ):
                            only.discard(name)
                        return alloc
                    only.discard(name)
                    return None
                for name in self.static_candidates(rc):
                    if name in only:
                        w = workers[name]
                        if w.can_host(rc):
                            alloc = w._take(rc)
                            if (
                                rc.cpu_units > len(w._free_cpus)
                                or rc.gpu_units > len(w._free_gpus)
                                or rc.memory_gb > w._free_memory
                            ):
                                only.discard(name)
                            return alloc
                        only.discard(name)
                return None
            candidates = self.static_candidates(rc)
            order: List[Worker] = []
            seen = set()
            for name in preferred or ():
                w = self.workers.get(name)
                if w is not None and name not in seen:
                    order.append(w)
                    seen.add(name)
            order.extend(
                self.workers[n] for n in candidates if n not in seen
            )
            for w in order:
                if w.can_host(rc):
                    return w._take(rc)
        return None

    def release(self, alloc: Allocation) -> None:
        with self._lock:
            self.workers[alloc.node].release(alloc)
            if alloc.tenant:
                remaining = self._tenant_slots.get(alloc.tenant, 0) - 1
                if remaining > 0:
                    self._tenant_slots[alloc.tenant] = remaining
                else:
                    self._tenant_slots.pop(alloc.tenant, None)
                alloc.tenant = ""
            if self.listener is not None:
                self.listener.on_release(alloc.node)

    def charge_tenant(self, alloc: Allocation, tenant: str) -> None:
        """Stamp ``alloc`` as one running slot of ``tenant`` (service mode).

        Called by the dispatch engine at placement time; the matching
        decrement happens automatically in :meth:`release`.
        """
        with self._lock:
            alloc.tenant = tenant
            self._tenant_slots[tenant] = self._tenant_slots.get(tenant, 0) + 1

    def tenant_load(self, tenant: str) -> int:
        """Currently-running slots charged to ``tenant``."""
        with self._lock:
            return self._tenant_slots.get(tenant, 0)

    def tenant_loads(self) -> Dict[str, int]:
        """Snapshot of running slots per tenant (service status endpoint)."""
        with self._lock:
            return dict(self._tenant_slots)

    def blocked_nodes(self) -> List[str]:
        """Nodes the health tracker currently quarantines (may be empty)."""
        return self.health.blocked_nodes() if self.health is not None else []

    def anyone_could_ever_host(self, rc: ResourceConstraint) -> bool:
        """Whether any (available) worker could run this constraint when idle."""
        workers = self.workers
        return any(
            workers[n].available for n in self.static_candidates(rc)
        )

    def add_worker(self, spec: NodeSpec, reserved_cores: int = 0) -> Worker:
        """Grow the pool with a new node (cloud elasticity, paper §3).

        The node is also appended to the cluster description so traces
        and analyses see it.  Raises on duplicate names.
        """
        with self._lock:
            if spec.name in self.workers:
                raise ValueError(f"node {spec.name!r} already in the pool")
            worker = Worker(spec, reserved_cores)
            self.workers[spec.name] = worker
            self.cluster.nodes.append(spec)
            self._static_fit.clear()
            self._static_fit_sets.clear()
            if self.listener is not None:
                self.listener.on_topology_change()
            return worker

    def remove_worker(self, name: str) -> None:
        """Shrink the pool: the node stops accepting tasks.

        Running tasks are unaffected (their allocations stay valid until
        released); only *new* placements skip the node.  The node enters
        DRAINING — ``describe()`` keeps it distinguishable from a crash.
        """
        self.drain_worker(name)

    def drain_worker(self, name: str) -> None:
        """Put a node into DRAINING: no new placements, running tasks finish."""
        with self._lock:
            self.workers[name].drain()
            if self.listener is not None:
                self.listener.on_topology_change()

    def retire_worker(self, name: str) -> None:
        """Cleanly take a drained (or idle) node DOWN without data loss."""
        with self._lock:
            self.workers[name].fail()
            if self.listener is not None:
                self.listener.on_topology_change()

    def fail_node(self, name: str) -> None:
        with self._lock:
            self.workers[name].fail()
            if self.listener is not None:
                self.listener.on_topology_change()

    def recover_node(self, name: str) -> None:
        with self._lock:
            self.workers[name].recover()
            if self.listener is not None:
                self.listener.on_topology_change()

    @property
    def total_task_cpus(self) -> int:
        """Task-usable CPU units across available workers."""
        return sum(
            w.task_capacity_cpus for w in self.workers.values() if w.available
        )

    def describe(self) -> str:
        lines = [f"pool over {self.cluster.name}:"]
        quarantined = set(self.blocked_nodes())
        for w in self.workers.values():
            state = w.state
            if state == UP and w.name in quarantined:
                state = QUARANTINED
            if state != UP:
                state = state.upper()
            lines.append(
                f"  {w.name} [{state}] free {w.free_cpu_units}/"
                f"{w.task_capacity_cpus} cores, {w.free_gpu_units} GPUs"
            )
        return "\n".join(lines)
