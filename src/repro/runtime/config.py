"""Runtime configuration.

One :class:`RuntimeConfig` captures everything ``runcompss`` takes on the
command line in real COMPSs — which cluster to run on, scheduler choice,
tracing/graph flags (paper §5: "both tracing and graph generation create
a performance overhead … easily turned off by a simple flag"), fault
policy, and the simulation knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.runtime.fault import RetryPolicy
from repro.simcluster.costmodel import MNIST_LIKE, DatasetProfile, TrainingCostModel
from repro.simcluster.failures import FailureInjector
from repro.simcluster.machines import ClusterSpec, local_machine


@dataclass
class RuntimeConfig:
    """Configuration for :class:`~repro.runtime.runtime.COMPSsRuntime`.

    Attributes
    ----------
    cluster:
        Cluster to run on.  Defaults to a small local node.
    scheduler:
        ``"fifo"`` / ``"priority"`` / ``"locality"`` or a Scheduler object.
    executor:
        ``"local"`` (real threads/processes) or ``"simulated"`` (virtual
        time over the cluster model), or an Executor object.
    backend:
        Local executor body backend: ``"threads"`` or ``"processes"``.
    max_parallel:
        Cap on concurrent bodies for the local executor.
    tracing:
        Record Extrae-style traces (Figs. 4–6).
    graph:
        Record dependency-edge labels for DOT export (Fig. 3).
    reserved_cores:
        Cores reserved for the COMPSs master/worker processes: an int
        (applied to the first node, like the paper's "the worker takes
        half of the cores") or a node-name → cores mapping.
    retry_policy:
        Fault-tolerance budgets (and retry backoff schedule).
    failure_injector:
        Optional failure injection (tests/ablations).
    task_timeout_s:
        Per-attempt deadline: an attempt still running after this many
        seconds (wall-clock on the local executor, virtual on the
        simulated one) is killed and treated as a retryable failure.
        ``None`` disables deadlines.
    speculation_multiplier:
        Straggler threshold: a task running past ``multiplier × median``
        of its task name's completed durations gets a speculative backup
        attempt on another node; the first finisher wins.  ``None``
        disables speculation.
    speculation_min_samples:
        Completed attempts of a task name required before its median is
        trusted for straggler detection.
    quarantine_threshold:
        Per-node failure-rate threshold in ``(0, 1]`` above which a node
        is quarantined (the scheduler stops placing tasks there).
        ``None`` disables node-health tracking.
    quarantine_window:
        Number of most-recent attempt outcomes per node considered for
        the failure rate.
    quarantine_min_events:
        Minimum outcomes on a node before it can be quarantined.
    quarantine_cooldown_s:
        Quarantine duration; afterwards the node is probed back in.
    max_trial_retries:
        Study-level fail-soft: a FAILED HPO trial is re-asked this many
        times with a fresh task before it counts as lost
        (:class:`~repro.hpo.runner.PyCOMPSsRunner`).
    cost_model:
        Duration model for the simulated executor.
    execute_bodies:
        Simulated executor: also run real task bodies for results.
    duration_fn:
        Simulated executor: override durations entirely.
    default_dataset:
        Dataset profile assumed when a task config names none.
    """

    cluster: ClusterSpec = field(default_factory=lambda: local_machine(4))
    scheduler: Union[str, object] = "fifo"
    executor: Union[str, object] = "local"
    backend: str = "threads"
    max_parallel: Optional[int] = None
    tracing: bool = True
    graph: bool = True
    reserved_cores: Union[int, Mapping[str, int]] = 0
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    failure_injector: Optional[FailureInjector] = None
    task_timeout_s: Optional[float] = None
    speculation_multiplier: Optional[float] = None
    speculation_min_samples: int = 3
    quarantine_threshold: Optional[float] = None
    quarantine_window: int = 10
    quarantine_min_events: int = 4
    quarantine_cooldown_s: float = 300.0
    max_trial_retries: int = 0
    cost_model: TrainingCostModel = field(default_factory=TrainingCostModel)
    execute_bodies: bool = False
    duration_fn: Optional[object] = None
    default_dataset: Union[DatasetProfile, str] = MNIST_LIKE
