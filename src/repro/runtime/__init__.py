"""The COMPSs-equivalent task runtime.

Builds the dynamic dependency graph from ``@task`` calls, schedules tasks
over resource-constrained workers, executes them (really, on threads or
processes; or virtually, on a simulated cluster), retries failures, and
records Extrae-style traces.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import COMPSsRuntime, current_runtime
from repro.runtime.future import Future, is_future
from repro.runtime.fault import RetryPolicy, FaultAction, TaskFailedError
from repro.runtime.task_definition import TaskDefinition, TaskInvocation, TaskState
from repro.runtime.graph import TaskGraph
from repro.runtime.resources import Allocation, ResourcePool, Worker
from repro.runtime.dot import export_dot, render_dot
from repro.runtime.tracing import TraceAnalysis, TraceRecorder, export_prv
from repro.runtime.stats import TaskStats, compute_stats, render_stats

__all__ = [
    "RuntimeConfig",
    "COMPSsRuntime",
    "current_runtime",
    "Future",
    "is_future",
    "RetryPolicy",
    "FaultAction",
    "TaskFailedError",
    "TaskDefinition",
    "TaskInvocation",
    "TaskState",
    "TaskGraph",
    "Allocation",
    "ResourcePool",
    "Worker",
    "export_dot",
    "render_dot",
    "TraceAnalysis",
    "TraceRecorder",
    "export_prv",
    "TaskStats",
    "compute_stats",
    "render_stats",
]
