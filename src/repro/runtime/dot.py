"""DOT export of the task graph (the paper's Fig. 3).

Produces a GraphViz digraph with one node per task (numbered, coloured by
task name), edges labelled with the data versions that induce each
dependency (``d1v2`` style), and diamond ``sync`` nodes for every
``compss_wait_on`` synchronisation point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime.graph import TaskGraph

#: GraphViz fill colours cycled per distinct task name.
_COLORS = [
    "white", "lightblue", "lightpink", "lightyellow",
    "lightgreen", "lightgrey", "orange",
]


def render_dot(
    graph: TaskGraph,
    sync_points: Optional[Sequence[Tuple[int, List[int]]]] = None,
    title: str = "task_graph",
) -> str:
    """Render the graph as DOT text.

    Parameters
    ----------
    graph:
        The runtime's task graph.
    sync_points:
        ``(sync_id, [task_ids])`` pairs from ``compss_wait_on`` calls.
    title:
        DOT graph name.
    """
    colors: Dict[str, str] = {}
    lines = [f"digraph {title} {{", "  rankdir=TB;"]
    for task in graph.tasks():
        color = colors.setdefault(
            task.definition.name, _COLORS[len(colors) % len(_COLORS)]
        )
        lines.append(
            f'  t{task.task_id} [label="{task.task_id}" shape=circle '
            f'style=filled fillcolor={color} '
            f'tooltip="{task.label}"];'
        )
    for src, dst, label in graph.edges():
        lab = f' [label="{label}"]' if label else ""
        lines.append(f"  t{src.task_id} -> t{dst.task_id}{lab};")
    for sync_id, task_ids in sync_points or ():
        lines.append(
            f'  sync{sync_id} [label="sync" shape=diamond style=filled '
            "fillcolor=gainsboro];"
        )
        for tid in task_ids:
            lines.append(f"  t{tid} -> sync{sync_id};")
    legend = " | ".join(f"{name}={color}" for name, color in colors.items())
    if legend:
        lines.append(f'  legend [shape=box label="{legend}"];')
    lines.append("}")
    return "\n".join(lines)


def export_dot(
    graph: TaskGraph,
    path: Union[str, Path],
    sync_points: Optional[Sequence[Tuple[int, List[int]]]] = None,
) -> Path:
    """Write :func:`render_dot` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_dot(graph, sync_points), encoding="utf-8")
    return path
