"""Cross-trial computation reuse: a crash-safe content-addressed stage cache.

Trials in an HPO grid share huge work prefixes — the same data prep, the
same first N epochs when only ``num_epochs`` differs (a third of the
paper's 27-config grid is prefix-redundant).  The runner splits trials
into pipeline stages (see :mod:`repro.hpo.stages`) and the runtime
memoises each stage's output here, keyed by the *content key* the
checkpoint subsystem's :class:`~repro.runtime.checkpoint.TaskKeyer`
derives from the stage's name and canonicalised arguments.  Common
prefixes across trials — or across *tenants* of one ``repro serve``
daemon, since content keys are deliberately namespace-free — merge into
a stage tree: the second trial's prefix resolves from the cache instead
of re-executing.

A cache that returns a torn, stale or corrupt entry silently poisons
every downstream trial — worse than no cache at all — so the layer is
engineered robustness-first:

* **Verified hits.**  Every entry is a pickle with a ``.sum`` sha256
  sidecar (the same atomic-publication discipline as
  :class:`~repro.runtime.checkpoint.CheckpointStore`, which this class
  builds on).  A hit is only a hit after the bytes re-hash to the
  sidecar and unpickle cleanly; anything else is a *miss* (recompute),
  never a wrong restore.  Verifications are accounted through the
  runtime's :class:`~repro.runtime.integrity.IntegrityManager` so the
  chaos acceptance can assert zero unverified cache reads.
* **Quarantine.**  A key whose entry fails verification
  ``poison_threshold`` times is quarantined (a ``quarantine/<key>.bad``
  marker): something is systematically corrupting it, so the cache stops
  trusting *and* stops republishing it — the stage simply recomputes
  forever, which is always correct.
* **Atomic publication.**  Entries become visible only via
  ``os.replace`` of a fully-fsynced temp file; a SIGKILL mid-write
  leaves a ``.tmp`` no reader ever opens.
* **Single-flight leases.**  A writer claims ``<key>.lease`` with
  ``O_CREAT | O_EXCL`` before computing; concurrent identical stages
  (other tenant threads, other processes) wait with seeded-jitter
  backoff for the publication instead of duplicating the work.  Leases
  are judged stale by wall-clock age, so a crashed writer never wedges
  waiters: they break the stale lease and take over, or time out and
  recompute unleased.  Losing any race merely duplicates computation
  (first atomic publish wins); it can never corrupt a value.
* **Bounded disk.**  ``max_bytes`` caps the store; the evictor sheds
  entries LRU-by-atime (hits ``os.utime`` their entry) and never evicts
  a leased key — the writer that just claimed it is about to need it.

Every anomaly path — corrupt entry, vanished file, stale or wedged
lease, full disk, unpicklable value — degrades to recomputation, so a
study with the cache on produces byte-identical best-config results to
the same study with the cache off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Set, Union

from repro.runtime.checkpoint import CheckpointCorruptError, CheckpointStore
from repro.util.logging_utils import get_logger
from repro.util.seeding import rng_from
from repro.util.validation import check_non_negative, check_positive

_log = get_logger("runtime.reuse")

#: Sub-directory (inside the cache dir) holding poison markers.
QUARANTINE_DIR = "quarantine"

#: Sentinel distinguishing "miss — compute it" from a cached ``None``.
MISS = object()


class ReuseCache:
    """Content-addressed stage-output cache with verified hits.

    Parameters
    ----------
    directory:
        Cache root (created if missing).  Shared across studies,
        tenants and processes — everything coordination-relevant lives
        on disk.
    max_bytes:
        Disk ceiling; ``None`` = unbounded.  Publishing past the
        ceiling evicts LRU-by-atime until back under (leased keys are
        never evicted).
    lease_timeout_s:
        Wall-clock age past which a lease counts as crashed and may be
        broken by a waiter.
    lease_wait_s:
        How long a submitter waits on a busy lease before degrading to
        an unleased recompute.  ``0`` disables waiting (never blocks).
    poison_threshold:
        Verification failures before a key is quarantined.
    seed:
        Jitter seed for the lease-wait backoff (deterministic per
        ``(seed, key, attempt)``, order-independent).
    integrity:
        Optional :class:`~repro.runtime.integrity.IntegrityManager`
        that accounts hit-time verifications (``cache_verified`` /
        ``cache_corrupt`` counters).
    log / clock:
        Optional resilience log + timestamp source for
        ``cache_hit`` / ``cache_miss`` / ``cache_corrupt`` /
        ``cache_evict`` / ``lease_wait`` events.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_bytes: Optional[int] = None,
        lease_timeout_s: float = 60.0,
        lease_wait_s: float = 0.0,
        poison_threshold: int = 3,
        seed: int = 0,
        integrity=None,
        log=None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_bytes is not None:
            check_positive("ReuseCache.max_bytes", max_bytes)
        check_positive("ReuseCache.lease_timeout_s", lease_timeout_s)
        check_non_negative("ReuseCache.lease_wait_s", lease_wait_s)
        check_positive("ReuseCache.poison_threshold", poison_threshold)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / QUARANTINE_DIR).mkdir(exist_ok=True)
        self.max_bytes = max_bytes
        self.lease_timeout_s = float(lease_timeout_s)
        self.lease_wait_s = float(lease_wait_s)
        self.poison_threshold = int(poison_threshold)
        self.seed = int(seed)
        self.integrity = integrity
        self.log = log
        self.clock = clock or (lambda: 0.0)
        #: Entry storage: atomic temp+rename writes, ``.sum`` sidecars,
        #: checksum-verified loads — exactly the spill discipline.
        self.store = CheckpointStore(self.directory, cadence=1)
        # Concurrent submitters (daemon tenant threads) and completion
        # callbacks (executor worker threads) share the counters and the
        # held-lease set.
        self._lock = threading.Lock()
        #: Keys whose lease THIS process currently holds (so eviction
        #: and release don't have to re-read lease files we wrote).
        self._held: Set[str] = set()
        #: key -> verification failures seen this session (quarantine
        #: trips at ``poison_threshold``; markers persist across runs).
        self._corrupt_counts: Dict[str, int] = {}
        # ---- counters (stats() / study metadata / CLI report) ----
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0
        self.published = 0
        self.publish_skipped = 0
        self.evicted = 0
        self.evicted_bytes = 0
        self.lease_waits = 0
        self.lease_timeouts = 0
        self.lease_breaks = 0
        #: Hits returned without sidecar verification — zero by
        #: construction; the chaos acceptance asserts it stays zero.
        self.unverified_hits = 0
        #: Wall seconds spent verifying hits (the bench's overhead%).
        self.verify_time_s = 0.0
        self._bytes = self._scan_bytes()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _lease_path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    def _marker_path(self, key: str) -> Path:
        return self.directory / QUARANTINE_DIR / f"{key}.bad"

    def is_quarantined(self, key: str) -> bool:
        return self._marker_path(key).exists()

    def _scan_bytes(self) -> int:
        total = 0
        for p in self.directory.iterdir():
            if p.suffix in (".pkl", ".sum"):
                try:
                    total += p.stat().st_size
                except OSError:
                    pass
        return total

    def _event(self, kind: str, detail: str = "", key: str = "") -> None:
        if self.log is not None:
            self.log.record(
                self.clock(), kind, task_label=key and f"key={key}",
                detail=detail,
            )

    # ------------------------------------------------------------------
    # Hit path
    # ------------------------------------------------------------------
    def acquire(self, key: str) -> Any:
        """Resolve ``key``: a verified value, or :data:`MISS` to compute.

        On a miss the cache tries to claim the key's single-flight
        lease; whether or not the claim succeeds the caller computes the
        stage and calls :meth:`publish` (or :meth:`abandon` on failure)
        — an unleased compute merely duplicates work some other writer
        is doing, it never blocks correctness.  A busy lease is waited
        on for up to ``lease_wait_s`` (seeded-jitter backoff): the
        publication appearing turns the miss into a hit; a lease older
        than ``lease_timeout_s`` is broken (crashed writer); a timeout
        degrades to an unleased recompute.
        """
        from repro.runtime import resilience as rsl

        if self.is_quarantined(key):
            with self._lock:
                self.misses += 1
            self._event(rsl.CACHE_MISS, detail="quarantined", key=key)
            return MISS
        value = self._fetch_verified(key)
        if value is not MISS:
            return value
        if self._try_lease(key):
            with self._lock:
                self.misses += 1
            self._event(rsl.CACHE_MISS, detail="lease acquired", key=key)
            return MISS
        return self._wait_for_writer(key)

    def _fetch_verified(self, key: str) -> Any:
        """Verified load of ``key``; corrupt/truncated/absent == MISS."""
        from repro.runtime import resilience as rsl

        path = self.store._path(key)
        if not path.exists():
            return MISS
        started = time.perf_counter()
        try:
            value = self.store.load_verified(key)
        except CheckpointCorruptError as exc:
            self._note_corrupt(key, str(exc))
            return MISS
        except OSError:
            # Vanished between exists() and open (concurrent eviction):
            # an ordinary miss.
            return MISS
        elapsed = time.perf_counter() - started
        try:
            os.utime(path)  # LRU clock for the evictor
        except OSError:
            pass
        with self._lock:
            self.hits += 1
            self.verify_time_s += elapsed
        if self.integrity is not None:
            self.integrity.note_cache_verify(True)
        self._event(rsl.CACHE_HIT, key=key)
        return value

    def _note_corrupt(self, key: str, detail: str) -> None:
        """A verification failure: event, count, maybe quarantine."""
        from repro.runtime import resilience as rsl

        with self._lock:
            self.corrupt += 1
            self.misses += 1
            count = self._corrupt_counts.get(key, 0) + 1
            self._corrupt_counts[key] = count
        if self.integrity is not None:
            self.integrity.note_cache_verify(False)
        self._event(rsl.CACHE_CORRUPT, detail=detail, key=key)
        _log.warning("cache entry %s corrupt (%s); treating as miss", key, detail)
        # Drop the poisoned bytes so the next writer republishes cleanly
        # (save() keeps existing entries).
        self.store.remove(key)
        with self._lock:
            self._bytes = max(0, self._scan_bytes())
        if count >= self.poison_threshold and not self.is_quarantined(key):
            self._quarantine(key, count)

    def _quarantine(self, key: str, failures: int) -> None:
        from repro.runtime import resilience as rsl

        marker = self._marker_path(key)
        tmp = marker.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps({"key": key, "failures": failures, "time": time.time()})
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, marker)
        except OSError:  # pragma: no cover - marker write is best-effort
            return
        with self._lock:
            self.quarantined += 1
        self._event(
            rsl.CACHE_CORRUPT,
            detail=f"quarantined after {failures} verification failures",
            key=key,
        )
        _log.warning(
            "cache key %s quarantined after %d verification failures",
            key, failures,
        )

    # ------------------------------------------------------------------
    # Single-flight leases
    # ------------------------------------------------------------------
    def _lease_payload(self) -> bytes:
        return (
            json.dumps(
                {
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "time": time.time(),
                }
            )
            + "\n"
        ).encode("utf-8")

    def _try_lease(self, key: str) -> bool:
        """Claim the key's lease with O_CREAT|O_EXCL (crash-safe)."""
        path = self._lease_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable cache dir degrades to unleased computes.
            return False
        try:
            os.write(fd, self._lease_payload())
        finally:
            os.close(fd)
        with self._lock:
            self._held.add(key)
        return True

    def _lease_age(self, key: str) -> Optional[float]:
        """Seconds since the lease was written; None if no lease."""
        try:
            return max(0.0, time.time() - self._lease_path(key).stat().st_mtime)
        except OSError:
            return None

    def _break_lease(self, key: str) -> bool:
        """Atomically take over a stale lease (crashed writer)."""
        from repro.runtime import resilience as rsl

        path = self._lease_path(key)
        tmp = path.with_suffix(f".takeover-{os.getpid()}-{threading.get_ident()}")
        try:
            tmp.write_bytes(self._lease_payload())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self._held.add(key)
            self.lease_breaks += 1
        self._event(rsl.LEASE_WAIT, detail="broke stale lease", key=key)
        return True

    def _wait_for_writer(self, key: str) -> Any:
        """Someone else computes ``key``: wait, take over, or degrade."""
        from repro.runtime import resilience as rsl

        deadline = time.time() + self.lease_wait_s
        attempt = 0
        waited = self.lease_wait_s > 0.0
        if waited:
            with self._lock:
                self.lease_waits += 1
        while time.time() < deadline:
            attempt += 1
            # Deterministic per (seed, key, attempt) — same jitter in
            # any interleaving, so same-seed chaos reruns are stable.
            rng = rng_from(self.seed, f"lease/{key}/{attempt}")
            delay = min(0.25, 0.02 * (2.0 ** min(attempt, 4)))
            time.sleep(delay * (0.5 + rng.random()))
            value = self._fetch_verified(key)
            if value is not MISS:
                self._event(
                    rsl.LEASE_WAIT,
                    detail=f"hit after wait ({attempt} polls)", key=key,
                )
                return value
            age = self._lease_age(key)
            if age is None:
                # Writer released without publishing (failed/abandoned):
                # contend for the lease ourselves.
                if self._try_lease(key):
                    with self._lock:
                        self.misses += 1
                    self._event(
                        rsl.CACHE_MISS, detail="lease acquired after wait",
                        key=key,
                    )
                    return MISS
            elif age > self.lease_timeout_s and self._break_lease(key):
                with self._lock:
                    self.misses += 1
                self._event(
                    rsl.CACHE_MISS, detail="stale lease broken", key=key
                )
                return MISS
        with self._lock:
            self.misses += 1
            if waited:
                self.lease_timeouts += 1
        self._event(
            rsl.LEASE_WAIT if waited else rsl.CACHE_MISS,
            detail="timed out; recomputing unleased" if waited
            else "lease busy; recomputing unleased",
            key=key,
        )
        return MISS

    def release(self, key: str) -> None:
        """Drop the lease if this process holds it (idempotent)."""
        with self._lock:
            held = key in self._held
            self._held.discard(key)
        if held:
            try:
                self._lease_path(key).unlink()
            except OSError:
                pass

    def abandon(self, key: str) -> None:
        """The computation failed: free the lease so waiters can retry."""
        self.release(key)

    def holds_lease(self, key: str) -> bool:
        with self._lock:
            return key in self._held

    def release_all(self) -> None:
        """Drop every lease this process still holds (clean shutdown).

        A crashed process skips this by definition — its leases expire
        through the stale-age path instead.
        """
        with self._lock:
            held = list(self._held)
        for key in held:
            self.release(key)

    # ------------------------------------------------------------------
    # Publish + evict
    # ------------------------------------------------------------------
    def publish(self, key: str, value: Any) -> bool:
        """Atomically publish ``value`` under ``key``; release the lease.

        First publisher wins (entries are immutable); a quarantined key
        or an unpicklable value is skipped — callers lose nothing, the
        stage result is already in memory.
        """
        try:
            if self.is_quarantined(key):
                with self._lock:
                    self.publish_skipped += 1
                return False
            existed = self.store.has(key)
            if not self.store.save(key, value, overwrite=False):
                with self._lock:
                    self.publish_skipped += 1
                return False
            if not existed:
                size = 0
                for path in (self.store._path(key), self.store._sum_path(key)):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
                with self._lock:
                    self.published += 1
                    self._bytes += size
                self._evict_if_needed(protect=key)
            return True
        finally:
            self.release(key)

    def _evict_if_needed(self, protect: str = "") -> None:
        """Shed LRU entries until under ``max_bytes`` (leases pinned)."""
        from repro.runtime import resilience as rsl

        if self.max_bytes is None:
            return
        with self._lock:
            over = self._bytes > self.max_bytes
        if not over:
            return
        entries = []
        for path in self.directory.glob("*.pkl"):
            key = path.stem
            if key == protect:
                continue
            with self._lock:
                if key in self._held:
                    continue
            if self._lease_path(key).exists():
                continue  # an active writer/reader elsewhere pinned it
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_atime, st.st_size, key))
        entries.sort()
        for _, size, key in entries:
            with self._lock:
                if self._bytes <= self.max_bytes:
                    break
            sum_size = 0
            try:
                sum_size = self.store._sum_path(key).stat().st_size
            except OSError:
                pass
            self.store.remove(key)
            freed = size + sum_size
            with self._lock:
                self._bytes = max(0, self._bytes - freed)
                self.evicted += 1
                self.evicted_bytes += freed
            self._event(rsl.CACHE_EVICT, detail=f"freed {freed} B", key=key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Machine-readable counters (study metadata / CLI report)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "quarantined": self.quarantined,
                "published": self.published,
                "publish_skipped": self.publish_skipped,
                "evicted": self.evicted,
                "evicted_bytes": self.evicted_bytes,
                "lease_waits": self.lease_waits,
                "lease_timeouts": self.lease_timeouts,
                "lease_breaks": self.lease_breaks,
                "unverified_hits": self.unverified_hits,
                "verify_time_s": round(self.verify_time_s, 6),
                "bytes": self._bytes,
            }

    def describe(self) -> str:
        """One-line human summary for the CLI report."""
        s = self.stats()
        total = s["hits"] + s["misses"]
        rate = (100.0 * s["hits"] / total) if total else 0.0
        return (
            f"reuse: {s['hits']} hits / {s['misses']} misses "
            f"({rate:.0f}% hit rate), {s['corrupt']} corrupt, "
            f"{s['quarantined']} quarantined, {s['evicted']} evicted, "
            f"{s['lease_waits']} lease waits, {s['bytes']} B cached"
        )

    @staticmethod
    def scan(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
        """Offline cache-dir health scan (``repro recover`` / ``repro gc``).

        Returns ``None`` when ``directory`` does not exist; otherwise
        entry count, total bytes, corrupt sidecars found (full verify of
        every entry), live leases and quarantine markers.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return None
        store = CheckpointStore(directory, cadence=None)
        entries = corrupt = total_bytes = leases = stale = 0
        now = time.time()
        for path in sorted(directory.iterdir()):
            if path.suffix == ".pkl":
                entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                if store.verify(path.stem) == "corrupt":
                    corrupt += 1
            elif path.suffix == ".sum":
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
            elif path.suffix == ".lease":
                leases += 1
                try:
                    if now - path.stat().st_mtime > 60.0:
                        stale += 1
                except OSError:
                    pass
        quarantine = directory / QUARANTINE_DIR
        quarantined = (
            len(list(quarantine.glob("*.bad"))) if quarantine.is_dir() else 0
        )
        return {
            "directory": str(directory),
            "entries": entries,
            "bytes": total_bytes,
            "corrupt": corrupt,
            "leases": leases,
            "stale_leases": stale,
            "quarantined": quarantined,
        }

    @staticmethod
    def gc(
        directory: Union[str, Path],
        lease_timeout_s: float = 60.0,
        dry_run: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """Offline cache-dir sweep (``repro gc``).

        Removes what no running process will ever read again: stale
        lease files (older than ``lease_timeout_s`` — a crashed writer's
        leftovers), torn ``.tmp``/``.sumtmp`` publications (invisible to
        readers by the atomic-rename protocol) and entries whose payload
        fails sidecar verification (a reader would only quarantine them
        later).  *Fresh* leases are honoured — their writers may still
        publish.  Intact entries are never touched; capacity is the
        evictor's job, not gc's.  Returns ``None`` when ``directory``
        does not exist.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return None
        store = CheckpointStore(directory, cadence=None)
        now = time.time()
        stale_leases = torn = corrupt = 0
        freed = 0

        def _reap(path: Path) -> int:
            try:
                size = path.stat().st_size
            except OSError:
                return 0
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    return 0
            return size

        for path in sorted(directory.iterdir()):
            if path.suffix == ".lease":
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age > lease_timeout_s:
                    stale_leases += 1
                    freed += _reap(path)
            elif path.suffix in (".tmp", ".sumtmp") or ".takeover-" in path.name:
                torn += 1
                freed += _reap(path)
            elif path.suffix == ".pkl":
                if store.verify(path.stem) == "corrupt":
                    corrupt += 1
                    freed += _reap(path)
                    freed += _reap(store._sum_path(path.stem))
        return {
            "directory": str(directory),
            "stale_leases": stale_leases,
            "torn_temps": torn,
            "corrupt_entries": corrupt,
            "freed_bytes": freed,
            "dry_run": dry_run,
        }

    # ------------------------------------------------------------------
    # Chaos hooks (FailureInjector)
    # ------------------------------------------------------------------
    def corrupt_entry(self, key: str) -> bool:
        """Silently flip bytes in ``key``'s entry (chaos injection).

        The sidecar is left intact, so the corruption is exactly the
        bit-rot the verify path must catch at the next hit attempt.
        """
        path = self.store._path(key)
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return False
        if not data:
            return False
        data[len(data) // 2] ^= 0xFF
        # Deliberately NOT atomic-rename: chaos stands in for in-place
        # media rot, which is what sidecar verification exists to catch.
        path.write_bytes(bytes(data))
        return True

    def wedge_lease(self, key: str) -> bool:
        """Leave a lease behind with no writer (simulated SIGKILL).

        The holder keeps the on-disk lease file but forgets it ever held
        it — exactly the state a SIGKILLed writer leaves.  Waiters must
        stale-expire it or time out and recompute.
        """
        with self._lock:
            held = key in self._held
            self._held.discard(key)
        if not held:
            return self._try_lease(key) and self.wedge_lease(key)
        return True
