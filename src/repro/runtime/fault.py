"""Fault-tolerance policy (paper §3/§4).

"If a task fails for whatever reason (such as node failure), the runtime
tries to start the same task in the same node, if it fails again, it's
restarted in another node. … The failure of a task does not affect the
other tasks unless there are some dependencies."

:class:`RetryPolicy` encodes that two-stage behaviour with configurable
budgets; the executors consult :meth:`decide` after every failed attempt.
On top of the paper's scheme the policy carries an exponential-backoff
schedule with deterministic seeded jitter: the wait before attempt *k* is
a pure function of ``(task_label, k, backoff_seed)``, so retry timing is
bit-reproducible regardless of execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.runtime.task_definition import TaskInvocation
from repro.util.seeding import rng_from
from repro.util.validation import check_in_range, check_non_negative


class FaultAction(str, enum.Enum):
    """What to do after a failed attempt."""

    RETRY_SAME_NODE = "retry_same_node"
    RESUBMIT_OTHER_NODE = "resubmit_other_node"
    GIVE_UP = "give_up"


@dataclass(frozen=True)
class RetryPolicy:
    """Two-stage retry: same node first, then other nodes.

    Attributes
    ----------
    same_node_retries:
        Extra attempts on the original node after the first failure.
    resubmissions:
        Additional attempts on *different* nodes after same-node retries
        are exhausted.
    backoff_base_s:
        Wait before the first retry (seconds; 0 disables backoff waits,
        reproducing the paper's immediate-retry behaviour).
    backoff_multiplier:
        Exponential growth factor between consecutive retries.
    backoff_max_s:
        Cap on any single backoff wait.
    backoff_jitter:
        Fractional jitter in ``[0, 1)``: the wait is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    backoff_seed:
        Seed for the jitter draw.  The draw is keyed by
        ``(task_label, attempt)`` so it is independent of call order.
    """

    same_node_retries: int = 1
    resubmissions: int = 1
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 60.0
    backoff_jitter: float = 0.1
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        check_non_negative("same_node_retries", self.same_node_retries)
        check_non_negative("resubmissions", self.resubmissions)
        check_non_negative("backoff_base_s", self.backoff_base_s)
        check_non_negative("backoff_max_s", self.backoff_max_s)
        check_in_range("backoff_jitter", self.backoff_jitter, 0.0, 1.0)
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed (first try + retries + resubmissions)."""
        return 1 + self.same_node_retries + self.resubmissions

    def decide(self, task: TaskInvocation) -> FaultAction:
        """Choose the next action given ``task.attempts`` failures so far."""
        failures = task.attempts
        if failures <= 0:
            raise ValueError("decide() called with no recorded failure")
        if failures <= self.same_node_retries:
            return FaultAction.RETRY_SAME_NODE
        if failures < self.max_attempts:
            return FaultAction.RESUBMIT_OTHER_NODE
        return FaultAction.GIVE_UP

    def backoff_delay(self, task_label: str, failures: int) -> float:
        """Seconds to wait before retrying after ``failures`` failures.

        Deterministic: the same ``(task_label, failures, backoff_seed)``
        always yields the same delay, in any call order.
        """
        check_non_negative("failures", failures)
        if self.backoff_base_s <= 0.0 or failures <= 0:
            return 0.0
        delay = min(
            self.backoff_base_s * self.backoff_multiplier ** (failures - 1),
            self.backoff_max_s,
        )
        if self.backoff_jitter > 0.0:
            rng = rng_from(
                self.backoff_seed, f"backoff/{task_label}/{failures}"
            )
            delay *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return float(delay)


class TaskTimeoutError(RuntimeError):
    """A task attempt exceeded its deadline (``task_timeout_s``).

    Raised *internally* by the executors to convert a hung attempt into a
    retryable failure; it surfaces to the user (inside
    :class:`TaskFailedError`) only when the retry budget is exhausted.
    """


class WorkerCrashError(RuntimeError):
    """A task attempt died with its worker process.

    Raised by the process-isolated backends when the OS process hosting
    a task body disappears mid-attempt — segfault, OOM-kill, ``os._exit``,
    ``sys.exit``, or an external ``SIGKILL``.  Like
    :class:`TaskTimeoutError` it is *retryable*: the executor feeds it
    through the :class:`RetryPolicy`, so the task re-runs on a fresh
    worker and only surfaces (inside :class:`TaskFailedError`) once the
    budget is exhausted.  The crash never takes the pool down: the dead
    worker is replaced and every other slot keeps running.
    """

    def __init__(self, task_label: str, detail: str = ""):
        message = f"worker crashed while running {task_label}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.task_label = task_label
        self.detail = detail


class PoisonTaskError(RuntimeError):
    """A task was quarantined after killing too many workers.

    A body that deterministically crashes its host (a poison task) would
    otherwise burn the whole retry budget killing worker after worker.
    Once a task kills ``poison_threshold`` *consecutive* workers the
    supervised pool blacklists it and raises this **terminal** error:
    the retry policy is bypassed (straight to GIVE_UP) and the task
    fails immediately, while the rest of the study keeps running.
    """

    def __init__(self, task_label: str, worker_deaths: int, threshold: int):
        super().__init__(
            f"task {task_label} killed {worker_deaths} consecutive workers "
            f"(poison threshold {threshold}); blacklisted — no further retries"
        )
        self.task_label = task_label
        self.worker_deaths = worker_deaths
        self.threshold = threshold


class UnsatisfiableError(RuntimeError):
    """No node can currently host a task — a structured condition.

    ``permanent=True`` means the constraint fits no node in the cluster
    even when idle (a sizing error): it surfaces to the user at once.
    ``permanent=False`` means capable nodes exist but every one is dead
    or draining (*starvation*): the dispatch engine holds the task and
    arms the starvation watchdog instead of failing, so an elastic
    rejoin can still save it.
    """

    def __init__(
        self,
        message: str,
        task_label: str,
        constraint: str,
        permanent: bool,
    ):
        super().__init__(message)
        self.task_label = task_label
        self.constraint = constraint
        self.permanent = permanent


class ResourceStarvationError(RuntimeError):
    """A task's constraint class lost every candidate node.

    Raised by the starvation watchdog when all nodes that could host a
    task are dead or draining and none rejoined within
    ``starvation_timeout_s``.  A GPU task whose last GPU node was
    preempted, say, fails with this **terminal** error instead of
    hanging the study forever; the HPO layer treats it like any other
    task failure (fail-soft per trial via ``max_trial_retries``).
    """

    def __init__(self, task_label: str, constraint: str, waited_s: float):
        super().__init__(
            f"task {task_label} starved: no live node can host its "
            f"constraint ({constraint}) and none rejoined within "
            f"{waited_s:g} s (starvation_timeout_s)"
        )
        self.task_label = task_label
        self.constraint = constraint
        self.waited_s = waited_s


class UpstreamFailureError(RuntimeError):
    """A task was cancelled because a task it depends on failed terminally.

    "The failure of a task does not affect the other tasks unless there
    are some dependencies" — when a producer exhausts its retry budget
    (or starves), its transitive consumers can never become ready.
    Failing them eagerly with this error turns a would-be infinite wait
    into an immediate, attributable study failure.
    """

    def __init__(self, task_label: str, upstream_label: str, cause: BaseException):
        super().__init__(
            f"task {task_label} cancelled: upstream task "
            f"{upstream_label} failed terminally ({cause!r})"
        )
        self.task_label = task_label
        self.upstream_label = upstream_label
        self.upstream_cause = cause


class StudyAbandonedError(RuntimeError):
    """A task was cancelled because its whole study was terminated.

    Raised into the unfinished tasks of a study that the service layer
    abandons — failed-trial budget exhausted, cancelled by the tenant, or
    shed under memory pressure.  Terminal (never retried): the study is
    gone, so its in-flight work is worthless.  Other studies sharing the
    runtime are unaffected — that is the fault-isolation contract.
    """

    def __init__(self, task_label: str, study: str, reason: str = ""):
        message = f"task {task_label} cancelled: study {study!r} terminated"
        if reason:
            message += f" ({reason})"
        super().__init__(message)
        self.task_label = task_label
        self.study = study
        self.reason = reason


class TaskFailedError(RuntimeError):
    """Raised to the user when a task exhausts its retry budget.

    The message carries the per-attempt action history and the original
    exception is chained (``raise … from cause`` in the executors) so the
    user's traceback shows the root failure.
    """

    def __init__(self, task: TaskInvocation, cause: BaseException):
        history = "; ".join(task.attempt_history)
        message = (
            f"task {task.label} failed after {task.attempts} attempts "
            f"(nodes tried: {task.failed_nodes or ['?']}): {cause!r}"
        )
        if history:
            message += f" [history: {history}]"
        super().__init__(message)
        self.task = task
        self.cause = cause
        self.__cause__ = cause
