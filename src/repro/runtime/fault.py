"""Fault-tolerance policy (paper §3/§4).

"If a task fails for whatever reason (such as node failure), the runtime
tries to start the same task in the same node, if it fails again, it's
restarted in another node. … The failure of a task does not affect the
other tasks unless there are some dependencies."

:class:`RetryPolicy` encodes that two-stage behaviour with configurable
budgets; the executors consult :meth:`decide` after every failed attempt.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.runtime.task_definition import TaskInvocation
from repro.util.validation import check_non_negative


class FaultAction(str, enum.Enum):
    """What to do after a failed attempt."""

    RETRY_SAME_NODE = "retry_same_node"
    RESUBMIT_OTHER_NODE = "resubmit_other_node"
    GIVE_UP = "give_up"


@dataclass(frozen=True)
class RetryPolicy:
    """Two-stage retry: same node first, then other nodes.

    Attributes
    ----------
    same_node_retries:
        Extra attempts on the original node after the first failure.
    resubmissions:
        Additional attempts on *different* nodes after same-node retries
        are exhausted.
    """

    same_node_retries: int = 1
    resubmissions: int = 1

    def __post_init__(self) -> None:
        check_non_negative("same_node_retries", self.same_node_retries)
        check_non_negative("resubmissions", self.resubmissions)

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed (first try + retries + resubmissions)."""
        return 1 + self.same_node_retries + self.resubmissions

    def decide(self, task: TaskInvocation) -> FaultAction:
        """Choose the next action given ``task.attempts`` failures so far."""
        failures = task.attempts
        if failures <= 0:
            raise ValueError("decide() called with no recorded failure")
        if failures <= self.same_node_retries:
            return FaultAction.RETRY_SAME_NODE
        if failures < self.max_attempts:
            return FaultAction.RESUBMIT_OTHER_NODE
        return FaultAction.GIVE_UP


class TaskFailedError(RuntimeError):
    """Raised to the user when a task exhausts its retry budget."""

    def __init__(self, task: TaskInvocation, cause: BaseException):
        super().__init__(
            f"task {task.label} failed after {task.attempts} attempts "
            f"(nodes tried: {task.failed_nodes or ['?']}): {cause!r}"
        )
        self.task = task
        self.cause = cause
