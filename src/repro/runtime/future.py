"""Futures returned by task calls.

A :class:`Future` is an opaque placeholder for a task result; passing one
to another task creates a dependency edge, and ``compss_wait_on`` resolves
it to the actual value (paper §4).  Multi-return tasks yield one future
per return slot.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task_definition import TaskInvocation

_UNSET = object()


class Future:
    """Placeholder for the (``index``-th) result of a task invocation."""

    __slots__ = ("invocation", "index", "_value")

    def __init__(self, invocation: "TaskInvocation", index: int = 0):
        self.invocation = invocation
        self.index = index
        self._value: Any = _UNSET

    @property
    def done(self) -> bool:
        """Whether the producing task has completed successfully."""
        return self._value is not _UNSET

    def set_result(self, value: Any) -> None:
        """Fill the future (called by the runtime on task completion)."""
        self._value = value

    def invalidate(self) -> None:
        """Forget the resolved value (lineage recovery after data loss).

        The producing task is being re-executed; consumers resolving this
        future block again until the replacement value lands.
        """
        self._value = _UNSET

    def result(self) -> Any:
        """The resolved value; raises if the task has not completed."""
        if self._value is _UNSET:
            raise RuntimeError(
                f"future of {self.invocation.label} accessed before completion; "
                "use compss_wait_on()"
            )
        return self._value

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<Future {self.invocation.label}[{self.index}] {state}>"


def is_future(obj: Any) -> bool:
    """True if ``obj`` is a runtime future."""
    return isinstance(obj, Future)
