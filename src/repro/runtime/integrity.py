"""End-to-end data integrity: checksummed versions, repair, recompute.

The resilience stack (retries, lineage recovery, worker supervision)
fires when something *visibly* crashes.  This module covers the failure
mode that does not announce itself: a task output silently corrupted on
the wire or at rest.  Every :class:`~repro.runtime.access_processor.DataVersion`
a task produces is sealed with a content checksum at write time and
verified at every consume point — when another task stages it as an
input, when the driver resolves it through ``wait_on``, and when a
checkpoint spill is loaded (see :mod:`repro.runtime.checkpoint`).

Two sealing modes, matching the two executor families:

* **local** (threads / processes / workers): the checksum is a digest of
  the real pickled result bytes.  The pickled snapshot models the wire
  image of the output; the live driver-memory object is the authoritative
  source, so a corrupt snapshot repairs by re-pickling it (the local
  equivalent of a replica re-fetch).
* **simulated**: there are no real bytes, so the checksum is a
  deterministic digest of ``(label, size, seed)`` metadata and the data
  plane keeps one digest per node copy (primary +
  ``replication_factor - 1`` replicas).  Injected corruption flips a
  copy's digest; verification compares copies against the sealed value.

On an unrepairable mismatch (no good copy anywhere) the escalation path
is :func:`recover_corrupt_versions`: invalidate the writer's versions
through the access processor, invalidate its futures, and re-enter the
writer (plus any consumers caught mid-flight) into the graph — the same
minimal-lineage machinery node loss uses.

Everything is counted (:meth:`IntegrityManager.stats`) so a study can
state "N outputs verified, M repaired, 0 unverified reads".
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.runtime import resilience as rsl
from repro.runtime.access_processor import DataVersion
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.util.logging_utils import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import COMPSsRuntime

_log = get_logger("runtime.integrity")

#: Sealing modes (which executor family produced the bytes).
MODE_LOCAL = "local"
MODE_SIMULATED = "simulated"

_UNPICKLABLE = "<unpicklable>"


class IntegrityError(RuntimeError):
    """A consumed data version failed verification and could not be repaired."""


def checksum_bytes(payload: bytes) -> str:
    """Content digest of a byte string (truncated SHA-256)."""
    return hashlib.sha256(payload).hexdigest()[:16]


def pickle_value(value: Any) -> Optional[bytes]:
    """Pickle ``value`` for checksumming; None when it cannot be pickled.

    Unpicklable outputs (live handles, lambdas) simply stay unverified —
    degrading to today's behaviour, never to a false corruption alarm.
    """
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - any pickling failure means "skip"
        return None


def simulated_digest(label: str, size_mb: float, seed: int) -> str:
    """Deterministic stand-in digest for a simulated data version."""
    return checksum_bytes(f"{label}|{size_mb:.6f}|{seed}".encode("utf-8"))


class _VersionRecord:
    """Integrity bookkeeping for one sealed data version."""

    __slots__ = (
        "version", "checksum", "size_mb", "writer_label", "primary",
        "copies", "snapshot", "value", "has_value",
    )

    def __init__(
        self,
        version: DataVersion,
        checksum: str,
        size_mb: float,
        writer_label: str,
        primary: str,
    ):
        self.version = version
        self.checksum = checksum
        self.size_mb = size_mb
        self.writer_label = writer_label
        #: Node the consumer-facing copy lives on (simulated mode).
        self.primary = primary
        #: node -> digest of the copy as currently stored (simulated mode).
        self.copies: Dict[str, str] = {}
        #: Pickled wire image of the output (local mode).
        self.snapshot: Optional[bytearray] = None
        #: Live driver-memory object — the local repair source.
        self.value: Any = None
        self.has_value = False

    @property
    def label(self) -> str:
        return self.version.label


@dataclass
class VerifyOutcome:
    """Result of verifying one writer's sealed outputs."""

    ok: bool = True
    #: ``(label, source)`` pairs repaired from a surviving copy.
    repaired: List[Tuple[str, str]] = field(default_factory=list)
    #: Labels with no good copy left (writer must recompute).
    corrupt: List[str] = field(default_factory=list)


class IntegrityManager:
    """Seals, verifies, and repairs task-output data versions.

    Parameters
    ----------
    mode:
        ``"local"`` (checksums over real pickled bytes) or
        ``"simulated"`` (metadata digests + per-node copies).
    replication_factor:
        Copies per output in simulated mode (primary + replicas).
    seed:
        Seed folded into simulated digests, so two studies with different
        seeds have disjoint digest spaces.
    log:
        Resilience log receiving ``data_corrupt`` / ``replica_repair``
        events.
    clock:
        Zero-argument callable giving event timestamps (the executor's
        wall or virtual clock).
    """

    def __init__(
        self,
        mode: str,
        replication_factor: int = 1,
        seed: int = 0,
        log=None,
        clock=None,
    ):
        if mode not in (MODE_LOCAL, MODE_SIMULATED):
            raise ValueError(f"unknown integrity mode {mode!r}")
        self.mode = mode
        self.replication_factor = int(replication_factor)
        self.seed = int(seed)
        self.log = log
        self.clock = clock or (lambda: 0.0)
        self._records: Dict[str, _VersionRecord] = {}
        self._by_writer: Dict[int, List[_VersionRecord]] = {}
        # Local executors verify/repair from worker threads concurrently.
        self._lock = threading.Lock()
        # ---- counters (stats() / study metadata / CLI report) ----
        self.outputs_sealed = 0
        self.reads_verified = 0
        self.corruptions_detected = 0
        self.replica_repairs = 0
        self.recomputes = 0
        self.transfer_retries = 0
        self.transfer_failures = 0
        #: Consumed task-written versions with no verifiable record — the
        #: acceptance criterion is that a chaos study keeps this at 0.
        self.unverified_reads = 0
        #: Reuse-cache hit-time verifications routed through this manager
        #: (the cache refuses to return a value that did not pass — a
        #: failed verification is a miss, counted under cache_corrupt).
        self.cache_verified = 0
        self.cache_corrupt = 0

    # ------------------------------------------------------------------
    # Sealing (write time)
    # ------------------------------------------------------------------
    def seal_simulated(
        self,
        task: TaskInvocation,
        versions: Sequence[DataVersion],
        node: str,
        size_mb: float,
        replica_nodes: Sequence[str],
    ) -> None:
        """Record metadata digests for ``task``'s outputs on ``node``.

        Copies are placed on the producing node plus ``replica_nodes``
        (chosen by the runtime from ``replication_factor``).  Replication
        is modelled as off-critical-path (asynchronous) — it costs no
        virtual time; *fetching* from a replica during repair does.
        """
        with self._lock:
            records = self._by_writer.setdefault(task.task_id, [])
            for version in versions:
                digest = simulated_digest(version.label, size_mb, self.seed)
                record = _VersionRecord(
                    version, digest, size_mb, task.label, primary=node
                )
                record.copies[node] = digest
                for replica in replica_nodes:
                    record.copies[replica] = digest
                version.checksum = digest
                self._records[version.label] = record
                records.append(record)
                self.outputs_sealed += 1

    def seal_local(
        self,
        task: TaskInvocation,
        version_values: Sequence[Tuple[DataVersion, Any]],
    ) -> None:
        """Checksum the real pickled bytes of ``task``'s return values."""
        with self._lock:
            records = self._by_writer.setdefault(task.task_id, [])
            for version, value in version_values:
                payload = pickle_value(value)
                if payload is None:
                    version.checksum = _UNPICKLABLE
                    continue
                digest = checksum_bytes(payload)
                record = _VersionRecord(
                    version, digest, len(payload) / 1e6, task.label,
                    primary=task.node or "",
                )
                record.snapshot = bytearray(payload)
                record.value = value
                record.has_value = True
                version.checksum = digest
                self._records[version.label] = record
                records.append(record)
                self.outputs_sealed += 1

    def discard(self, task: TaskInvocation) -> None:
        """Drop ``task``'s sealed records (it is about to re-execute)."""
        with self._lock:
            for record in self._by_writer.pop(task.task_id, ()):
                self._records.pop(record.label, None)

    # ------------------------------------------------------------------
    # Corruption injection (FailureInjector hook)
    # ------------------------------------------------------------------
    def corrupt(self, task: TaskInvocation, scope: str = "primary") -> List[str]:
        """Silently corrupt ``task``'s sealed outputs; returns labels hit.

        ``scope="primary"`` flips the consumer-facing copy only (replicas
        survive, exercising the re-fetch path); ``scope="all"`` flips
        every copy (forcing the lineage-recompute path).
        """
        hit: List[str] = []
        with self._lock:
            for record in self._by_writer.get(task.task_id, ()):
                if self.mode == MODE_SIMULATED:
                    bad = checksum_bytes(
                        f"corrupt|{record.checksum}".encode("utf-8")
                    )
                    targets = (
                        list(record.copies)
                        if scope == "all"
                        else [record.primary]
                    )
                    for node in targets:
                        if node in record.copies:
                            record.copies[node] = bad
                else:
                    if record.snapshot:
                        record.snapshot[0] ^= 0xFF
                        if scope == "all":
                            # No independent copies locally: also sever the
                            # in-memory repair source.
                            record.value = None
                            record.has_value = False
                hit.append(record.label)
        return hit

    # ------------------------------------------------------------------
    # Verification (consume time)
    # ------------------------------------------------------------------
    def verify_writer(
        self,
        writer: TaskInvocation,
        versions: Sequence[DataVersion],
        consumer_label: str = "",
    ) -> VerifyOutcome:
        """Verify (and repair in place) every sealed output of ``writer``.

        ``versions`` is the writer's output lineage from the access
        processor; versions without a record count as unverified reads.
        Detected corruption repairs from a surviving copy when one
        exists (``replica_repair``); labels with no good copy are
        returned in ``outcome.corrupt`` for the caller to escalate.
        """
        outcome = VerifyOutcome()
        with self._lock:
            for version in versions:
                record = self._records.get(version.label)
                if record is None:
                    # Local mode seals return-value versions only: INOUT
                    # versions mutate caller objects in driver memory and
                    # never cross a wire.  In simulated mode every written
                    # version is sealed, so a missing record is a real
                    # unverified read.
                    if self.mode == MODE_SIMULATED and not version.invalidated:
                        self.unverified_reads += 1
                    continue
                if self._copy_ok(record):
                    self.reads_verified += 1
                    continue
                self.corruptions_detected += 1
                self._event(
                    rsl.DATA_CORRUPT, record.writer_label,
                    node=record.primary,
                    detail=f"{record.label} checksum mismatch "
                    f"(consumer {consumer_label or 'driver'})",
                )
                source = self._repair(record)
                if source is not None:
                    self.replica_repairs += 1
                    self.reads_verified += 1
                    outcome.repaired.append((record.label, source))
                    self._event(
                        rsl.REPLICA_REPAIR, record.writer_label, node=source,
                        detail=f"{record.label} re-fetched from {source}",
                    )
                else:
                    outcome.ok = False
                    outcome.corrupt.append(record.label)
        return outcome

    def _copy_ok(self, record: _VersionRecord) -> bool:
        if self.mode == MODE_SIMULATED:
            return record.copies.get(record.primary) == record.checksum
        if record.snapshot is None:
            return True
        return checksum_bytes(bytes(record.snapshot)) == record.checksum

    def _repair(self, record: _VersionRecord) -> Optional[str]:
        """Restore the consumer-facing copy; returns its source or None."""
        if self.mode == MODE_SIMULATED:
            for node in sorted(record.copies):
                if node != record.primary and record.copies[node] == record.checksum:
                    record.copies[record.primary] = record.checksum
                    return node
            return None
        if not record.has_value:
            return None
        payload = pickle_value(record.value)
        if payload is None or checksum_bytes(payload) != record.checksum:
            return None
        record.snapshot = bytearray(payload)
        return "driver-memory"

    def evacuate(self, node: str, targets: Sequence[str]) -> int:
        """Drain-time spill: copy ``node``'s *only-good* copies elsewhere.

        For every record whose copy on ``node`` is its last good one, a
        replica is placed on the first ``targets`` nodes (up to
        ``replication_factor`` total good copies, and at least one).
        Modelled off-critical-path like seal-time replication.  Returns
        the number of records evacuated.  Simulated mode only — local
        outputs live in driver memory and survive node churn.
        """
        if self.mode != MODE_SIMULATED or not targets:
            return 0
        moved = 0
        with self._lock:
            for label in sorted(self._records):
                record = self._records[label]
                if record.copies.get(node) != record.checksum:
                    continue
                good_elsewhere = [
                    n for n, d in record.copies.items()
                    if n != node and d == record.checksum
                ]
                if good_elsewhere:
                    continue
                want = max(1, self.replication_factor - 1)
                placed = False
                for target in targets[:want]:
                    if record.copies.get(target) != record.checksum:
                        record.copies[target] = record.checksum
                        placed = True
                if placed:
                    moved += 1
        return moved

    def reseed_node(self, node: str) -> int:
        """Rejoin-time re-seed: use ``node`` as a replica target again.

        Every record with fewer than ``replication_factor`` good copies
        gains a fresh one on the rejoined node.  (Records still naming a
        copy on the node are the ones that survived its loss via a
        verified checkpoint spill — lineage recovery discarded the rest —
        so those copies count as restored rather than stale.)  Returns
        the number of records re-seeded.
        """
        if self.mode != MODE_SIMULATED:
            return 0
        seeded = 0
        with self._lock:
            for label in sorted(self._records):
                record = self._records[label]
                good = [
                    n for n, d in record.copies.items() if d == record.checksum
                ]
                if not good:
                    continue  # nothing intact to copy from
                if node in good or len(good) >= self.replication_factor:
                    continue
                record.copies[node] = record.checksum
                seeded += 1
        return seeded

    def replica_source(
        self, writer: TaskInvocation, exclude: Sequence[str] = ()
    ) -> Optional[str]:
        """A node (not in ``exclude``) holding good copies of every output.

        The transfer path falls back here when the primary node's link is
        declared dead: the consumer re-fetches the whole output set from
        one surviving replica.
        """
        with self._lock:
            records = self._by_writer.get(writer.task_id)
            if not records:
                return None
            candidates: Optional[set] = None
            for record in records:
                good = {
                    node
                    for node, digest in record.copies.items()
                    if digest == record.checksum and node not in exclude
                }
                candidates = good if candidates is None else candidates & good
            if not candidates:
                return None
            return sorted(candidates)[0]

    def records_for(self, writer: TaskInvocation) -> List[_VersionRecord]:
        with self._lock:
            return list(self._by_writer.get(writer.task_id, ()))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _event(self, kind: str, task_label: str, node: str, detail: str) -> None:
        if self.log is not None:
            self.log.record(self.clock(), kind, task_label, node, detail=detail)

    def note_cache_verify(self, ok: bool) -> None:
        """Account one reuse-cache hit-time verification.

        The :class:`~repro.runtime.reuse.ReuseCache` proves every
        candidate hit against its ``.sum`` sidecar before returning it;
        routing the tally through the integrity manager keeps one ledger
        for *all* verified reads, so the chaos acceptance's "zero
        unverified reads" claim covers cache restores too.
        """
        with self._lock:
            if ok:
                self.cache_verified += 1
            else:
                self.cache_corrupt += 1
                self.corruptions_detected += 1

    def stats(self) -> Dict[str, int]:
        """Machine-readable counters (study metadata / CLI report)."""
        return {
            "outputs_sealed": self.outputs_sealed,
            "reads_verified": self.reads_verified,
            "corruptions_detected": self.corruptions_detected,
            "replica_repairs": self.replica_repairs,
            "recomputes": self.recomputes,
            "transfer_retries": self.transfer_retries,
            "transfer_failures": self.transfer_failures,
            "unverified_reads": self.unverified_reads,
            "cache_verified": self.cache_verified,
            "cache_corrupt": self.cache_corrupt,
        }

    def describe(self) -> str:
        """One-line human summary for the CLI report."""
        return (
            f"integrity: {self.outputs_sealed} outputs sealed, "
            f"{self.reads_verified} reads verified, "
            f"{self.corruptions_detected} corruptions detected, "
            f"{self.replica_repairs} replica repairs, "
            f"{self.recomputes} recomputes, "
            f"{self.transfer_retries} transfer retries "
            f"({self.transfer_failures} exhausted), "
            f"{self.unverified_reads} unverified reads"
        )


# ----------------------------------------------------------------------
# Escalation: lineage recompute of corrupt writers
# ----------------------------------------------------------------------
def recover_corrupt_versions(
    runtime: "COMPSsRuntime",
    writers: Sequence[TaskInvocation],
    extra_consumers: Sequence[TaskInvocation] = (),
) -> List[str]:
    """Re-execute ``writers`` whose outputs have no good copy left.

    Mirrors node-loss lineage recovery
    (:func:`repro.runtime.checkpoint.recover_lost_data`): the writers'
    data versions are invalidated through the access processor, their
    futures forget their values, RUNNING consumers that can be aborted
    are, and the whole batch re-enters the graph.  ``extra_consumers``
    are not-yet-running consumers the caller pulled back from dispatch
    (the simulated executor passes the task whose input staging detected
    the corruption).

    Returns the invalidated version labels.
    """
    graph = runtime.graph
    to_rerun: Dict[int, TaskInvocation] = {t.task_id: t for t in writers}
    aborted: Dict[int, TaskInvocation] = {}
    for t in to_rerun.values():
        for s in graph.successors(t):
            if (
                s.state == TaskState.RUNNING
                and s.task_id not in to_rerun
                and s.task_id not in aborted
                and runtime.executor.abort_task(s)
            ):
                aborted[s.task_id] = s
    labels = sorted(
        runtime.access.invalidate_versions_written_by(to_rerun.values())
    )
    integrity = runtime.integrity
    for t in to_rerun.values():
        if integrity is not None:
            integrity.discard(t)
        for fut in runtime.future_slots(t):
            fut.invalidate()
        t.result = None
        t.start_time = t.end_time = None
    batch = list(to_rerun.values())
    for consumer in extra_consumers:
        if consumer.task_id not in to_rerun and consumer.task_id not in aborted:
            batch.append(consumer)
    batch += list(aborted.values())
    graph.invalidate(batch)
    # Entries already handed to the dispatch engine cannot be removed
    # from the graph's ready deque above; tombstone them.
    runtime.dispatcher.purge([t for t in batch if t.state != TaskState.READY])
    now = runtime.executor.clock()
    for t in sorted(to_rerun.values(), key=lambda t: t.task_id):
        runtime.resilience.record(
            now, rsl.INTEGRITY_RECOMPUTE, t.label, t.node or "",
            detail=f"no good copy of {','.join(t.writes) or t.label}; "
            "re-executing writer",
        )
    if integrity is not None:
        integrity.recomputes += len(to_rerun)
    _log.info(
        "integrity: %d corrupt version(s) unrepairable; re-executing "
        "%d writer(s) (+%d aborted consumer(s))",
        len(labels), len(to_rerun), len(aborted),
    )
    return labels
