"""Task metadata: the static definition and per-call invocations."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.pycompss_api.constraint import ResourceConstraint
from repro.pycompss_api.parameter import ParameterSpec, normalize_param


class TaskKind(str, enum.Enum):
    """How the task body executes (paper §3's decorator family)."""

    PYTHON = "python"
    BINARY = "binary"
    MPI = "mpi"
    OMPSS = "ompss"


class TaskState(str, enum.Enum):
    """Lifecycle of a task invocation."""

    SUBMITTED = "submitted"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class TaskDefinition:
    """Static description created by ``@task`` (one per decorated function).

    Mutable fields (``constraint``, ``implementations``…) are filled in by
    the stacking decorators (``@constraint``, ``@implement``, …).
    """

    func: Callable
    name: str
    returns: Optional[object] = None
    n_returns: int = 1
    param_specs: Dict[str, ParameterSpec] = field(default_factory=dict)
    priority: bool = False
    constraint: ResourceConstraint = field(default_factory=ResourceConstraint)
    kind: TaskKind = TaskKind.PYTHON
    kind_details: Dict[str, Any] = field(default_factory=dict)
    #: Alternative implementations registered with ``@implement``; the
    #: scheduler picks whichever fits the chosen node.
    implementations: List["TaskDefinition"] = field(default_factory=list)
    #: Simulator hint: size (MB) of this task's result object.  The
    #: simulated executor charges a network transfer when a consumer runs
    #: on a different node than the producer (paper §3: the runtime is
    #: "transferring the data when needed").
    output_size_mb: float = 0.0

    def spec_for(self, param_name: str) -> ParameterSpec:
        """Direction spec for ``param_name`` (default: IN)."""
        from repro.pycompss_api.parameter import IN

        return self.param_specs.get(param_name, IN)

    def add_param_specs(self, specs: Dict[str, object]) -> None:
        """Normalise and record user-supplied direction hints."""
        for key, value in specs.items():
            self.param_specs[key] = normalize_param(value)

    def all_candidates(self) -> List["TaskDefinition"]:
        """This definition plus any ``@implement`` alternatives."""
        return [self, *self.implementations]

    def constraint_class(self) -> Tuple:
        """Hashable placement-equivalence key over all candidate constraints.

        Two tasks with equal constraint classes are interchangeable for
        *feasibility*: at any pool state, either both can be placed or
        neither can (which node is chosen may still differ, e.g. under
        locality preferences).  The dispatch fast path keeps one ready
        queue per class and probes only queue heads.

        The key is cached; the cache revalidates against the (mutable)
        ``constraint``/``implementations`` fields so stacked decorators
        applied before first use are picked up.
        """
        token = (id(self.constraint), len(self.implementations))
        cached = getattr(self, "_constraint_class_cache", None)
        if cached is not None and cached[0] == token:
            return cached[1]
        key = tuple(c.constraint.class_key for c in self.all_candidates())
        self._constraint_class_cache = (token, key)
        return key


_invocation_ids = itertools.count(1)


def reset_invocation_counter() -> None:
    """Restart task numbering (test isolation; graphs start at task 1)."""
    global _invocation_ids
    _invocation_ids = itertools.count(1)


@dataclass
class TaskInvocation:
    """One call of a task function — a node in the dependency graph."""

    definition: TaskDefinition
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    task_id: int = field(default_factory=lambda: next(_invocation_ids))
    state: TaskState = TaskState.SUBMITTED
    #: Data versions read / written (filled by the access processor).
    reads: List[str] = field(default_factory=list)
    writes: List[str] = field(default_factory=list)
    #: Execution bookkeeping.
    attempts: int = 0
    failed_nodes: List[str] = field(default_factory=list)
    #: One human-readable line per failed attempt ("attempt 1 on n1:
    #: RuntimeError(...) -> retry_same_node"); joined into the
    #: :class:`~repro.runtime.fault.TaskFailedError` message.
    attempt_history: List[str] = field(default_factory=list)
    result: Any = None
    error: Optional[BaseException] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    node: Optional[str] = None
    #: Deterministic cross-process id (name + param digest + occurrence),
    #: assigned by the checkpoint subsystem when journaling is on; stable
    #: across driver restarts, unlike ``task_id``.
    task_key: Optional[str] = None

    @property
    def label(self) -> str:
        """Stable human-readable id, e.g. ``experiment-7``."""
        return f"{self.definition.name}-{self.task_id}"

    @property
    def chosen_constraint(self) -> ResourceConstraint:
        """Constraint of the (possibly `@implement`-selected) definition."""
        return self.definition.constraint

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:
        return f"<TaskInvocation {self.label} {self.state.value}>"
