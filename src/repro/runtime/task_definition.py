"""Task metadata: the static definition and per-call invocations."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.pycompss_api.constraint import ResourceConstraint
from repro.pycompss_api.parameter import ParameterSpec, normalize_param


class TaskKind(str, enum.Enum):
    """How the task body executes (paper §3's decorator family)."""

    PYTHON = "python"
    BINARY = "binary"
    MPI = "mpi"
    OMPSS = "ompss"


class TaskState(str, enum.Enum):
    """Lifecycle of a task invocation."""

    SUBMITTED = "submitted"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class TaskDefinition:
    """Static description created by ``@task`` (one per decorated function).

    Mutable fields (``constraint``, ``implementations``…) are filled in by
    the stacking decorators (``@constraint``, ``@implement``, …).
    """

    func: Callable
    name: str
    returns: Optional[object] = None
    n_returns: int = 1
    param_specs: Dict[str, ParameterSpec] = field(default_factory=dict)
    priority: bool = False
    constraint: ResourceConstraint = field(default_factory=ResourceConstraint)
    kind: TaskKind = TaskKind.PYTHON
    kind_details: Dict[str, Any] = field(default_factory=dict)
    #: Alternative implementations registered with ``@implement``; the
    #: scheduler picks whichever fits the chosen node.
    implementations: List["TaskDefinition"] = field(default_factory=list)
    #: Simulator hint: size (MB) of this task's result object.  The
    #: simulated executor charges a network transfer when a consumer runs
    #: on a different node than the producer (paper §3: the runtime is
    #: "transferring the data when needed").
    output_size_mb: float = 0.0
    #: Declared deterministic-and-pure: same arguments, same result, no
    #: side effects — the opt-in that lets the cross-trial
    #: :class:`~repro.runtime.reuse.ReuseCache` memoise this task's
    #: outputs under a namespace-free content key.  False by default;
    #: ordinary tasks keep at-most-study-scoped identities.
    cacheable: bool = False

    def spec_for(self, param_name: str) -> ParameterSpec:
        """Direction spec for ``param_name`` (default: IN)."""
        from repro.pycompss_api.parameter import IN

        return self.param_specs.get(param_name, IN)

    def add_param_specs(self, specs: Dict[str, object]) -> None:
        """Normalise and record user-supplied direction hints."""
        for key, value in specs.items():
            self.param_specs[key] = normalize_param(value)

    def all_candidates(self) -> List["TaskDefinition"]:
        """This definition plus any ``@implement`` alternatives.

        Cached (and revalidated against ``implementations``, which
        stacked decorators extend before first use): the list is rebuilt
        once per decorator application instead of once per placement
        probe.  Callers treat the list as read-only.
        """
        cached = getattr(self, "_candidates_cache", None)
        if cached is not None and cached[0] == len(self.implementations):
            return cached[1]
        candidates = [self, *self.implementations]
        self._candidates_cache = (len(self.implementations), candidates)
        return candidates

    def constraint_class(self) -> Tuple:
        """Hashable placement-equivalence key over all candidate constraints.

        Two tasks with equal constraint classes are interchangeable for
        *feasibility*: at any pool state, either both can be placed or
        neither can (which node is chosen may still differ, e.g. under
        locality preferences).  The dispatch fast path keeps one ready
        queue per class and probes only queue heads.

        The key is cached; the cache revalidates against the (mutable)
        ``constraint``/``implementations`` fields so stacked decorators
        applied before first use are picked up.
        """
        token = (id(self.constraint), len(self.implementations))
        cached = getattr(self, "_constraint_class_cache", None)
        if cached is not None and cached[0] == token:
            return cached[1]
        key = tuple(c.constraint.class_key for c in self.all_candidates())
        self._constraint_class_cache = (token, key)
        return key


_invocation_ids = itertools.count(1)


def reset_invocation_counter() -> None:
    """Restart task numbering (test isolation; graphs start at task 1)."""
    global _invocation_ids
    _invocation_ids = itertools.count(1)


class TaskInvocation:
    """One call of a task function — a node in the dependency graph.

    A ``__slots__`` class with a hand-written ``__init__`` rather than a
    dataclass: one instance (plus its bookkeeping lists) is created per
    submission, and the generated 16-field ctor was a measurable slice
    of the hot path at 100k+ tasks.

    ``reads``/``writes`` are the data-version labels filled in by the
    access processor.  ``attempt_history`` keeps one human-readable line
    per failed attempt ("attempt 1 on n1: RuntimeError(...) ->
    retry_same_node"); joined into the
    :class:`~repro.runtime.fault.TaskFailedError` message.  ``task_key``
    is the deterministic cross-process id (name + param digest +
    occurrence) assigned by the checkpoint subsystem when journaling is
    on; stable across driver restarts, unlike ``task_id``.  ``study`` is
    the id of the study session that submitted the task (``""`` outside
    service mode); it routes journaling to the study's namespaced
    journal and gives the dispatch engine its fair-share dimension.
    """

    __slots__ = (
        "definition", "args", "kwargs", "task_id", "state", "reads",
        "writes", "attempts", "failed_nodes", "attempt_history", "result",
        "error", "start_time", "end_time", "node", "task_key", "study",
        "content_key",
    )

    def __init__(
        self,
        definition: TaskDefinition,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        task_id: Optional[int] = None,
        state: TaskState = TaskState.SUBMITTED,
    ):
        self.definition = definition
        self.args = args
        self.kwargs = {} if kwargs is None else kwargs
        self.task_id = next(_invocation_ids) if task_id is None else task_id
        self.state = state
        self.reads: List[str] = []
        self.writes: List[str] = []
        self.attempts = 0
        self.failed_nodes: List[str] = []
        self.attempt_history: List[str] = []
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.node: Optional[str] = None
        self.task_key: Optional[str] = None
        self.study: str = ""
        #: Namespace-free reuse-cache identity (cacheable tasks only);
        #: assigned by TaskKeyer.content_key_for on the submit path.
        self.content_key: Optional[str] = None

    @property
    def label(self) -> str:
        """Stable human-readable id, e.g. ``experiment-7``."""
        return f"{self.definition.name}-{self.task_id}"

    @property
    def chosen_constraint(self) -> ResourceConstraint:
        """Constraint of the (possibly `@implement`-selected) definition."""
        return self.definition.constraint

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:
        return f"<TaskInvocation {self.label} {self.state.value}>"
