"""Resilience subsystem: the failure-handling stack above plain retries.

The paper's fault-tolerance story (§3/§4) ends at "retry on the same
node, then resubmit elsewhere".  A long-running HPO service additionally
has to survive *hung* tasks (deadlines), *stragglers* (speculative
re-execution, the tail problem of Fig. 5 attacked at the executor level),
and *chronically flaky nodes* (health tracking with quarantine and
probe-back).  This module holds the executor-independent pieces:

- :class:`ResilienceEvent` / :class:`ResilienceLog` — a structured,
  deterministic record of every resilience decision, surfaced through
  ``runtime.analysis()`` and :mod:`repro.runtime.stats`.
- :class:`StragglerDetector` — running per-task-name medians; a task
  running past ``multiplier × median`` is a straggler.
- :class:`NodeHealth` — per-node failure/timeout accounting with a
  failure-rate quarantine, cool-down, and probation ("probe") re-entry.

Timeout/backoff policy lives on :class:`repro.runtime.fault.RetryPolicy`
and :class:`repro.runtime.config.RuntimeConfig`; the executors consume
all of it.
"""

from __future__ import annotations

import statistics
from bisect import insort
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.util.logging_utils import get_logger
from repro.util.validation import check_in_range, check_positive

_log = get_logger("runtime.resilience")

# Event kinds (module constants so call sites don't typo strings).
TIMEOUT = "timeout"
BACKOFF_WAIT = "backoff_wait"
SPECULATION_LAUNCHED = "speculation_launched"
SPECULATION_WON = "speculation_won"
SPECULATION_CANCELLED = "speculation_cancelled"
QUARANTINE = "quarantine"
PROBE = "probe"
TRIAL_RETRY = "trial_retry"
NODE_LOST = "node_lost"
LINEAGE_RECOVERY = "lineage_recovery"
JOURNAL_TRUNCATED = "journal_truncated"
CHECKPOINT_RESTORE = "checkpoint_restore"
#: Supervised worker-pool events (``backend="workers"``): a worker
#: process died under a task (crash containment), was hard-killed at the
#: task deadline, was retired after ``max_tasks_per_worker`` completions,
#: or a task was blacklisted for killing too many consecutive workers.
WORKER_CRASH = "worker_crash"
WORKER_KILLED = "worker_killed"
WORKER_RECYCLED = "worker_recycled"
POISON_TASK = "poison_task"
#: Data-integrity events: a consumed version's checksum mismatched its
#: write-time record, a cross-node transfer tore (with per-attempt
#: retries), a corrupt/unreachable output was re-fetched from a replica,
#: or — with no good copy left — its writer was re-executed through the
#: lineage machinery.
DATA_CORRUPT = "data_corrupt"
TRANSFER_FAILED = "transfer_failed"
TRANSFER_RETRY = "transfer_retry"
REPLICA_REPAIR = "replica_repair"
INTEGRITY_RECOMPUTE = "integrity_recompute"
#: Cluster-churn events: a node entered graceful drain (finish running
#: tasks, accept no new placements, spill resident data), finished
#: draining cleanly, blew its drain deadline (escalated to ``fail_node``
#: so lineage recovery takes over), received a spot-preemption notice,
#: rejoined the cluster after a loss, or a whole constraint class lost
#: its last candidate node (starvation watchdog armed).
NODE_DRAINING = "node_draining"
DRAIN_COMPLETE = "drain_complete"
DRAIN_DEADLINE = "drain_deadline"
PREEMPTION_NOTICE = "preemption_notice"
NODE_REJOINED = "node_rejoined"
CLASS_STARVED = "class_starved"
UPSTREAM_CANCELLED = "upstream_cancelled"
#: Multi-tenant service events: a study was admitted into the daemon, a
#: study finished cleanly, a study burned through its resilience budget
#: (poison tasks / retry exhaustion / starvation) and was terminated —
#: *that study only*, other tenants keep running — a study was cancelled
#: by its owner, or the admission watchdog shed load before a memory
#: ceiling.
STUDY_ADMITTED = "study_admitted"
STUDY_COMPLETED = "study_completed"
STUDY_FAILED = "study_failed"
STUDY_CANCELLED = "study_cancelled"
LOAD_SHED = "load_shed"
#: Cooperative-preemption events: a running trial was flagged to suspend
#: (it spills model + optimiser + epoch cursor at its next checkpoint
#: epoch and stops warm), its spilled training state landed on disk, a
#: suspended trial was resubmitted and resumed from its epoch cursor, an
#: asynchronous multi-fidelity scheduler promoted a config to its next
#: rung the moment the result landed (no barrier), or a whole running
#: study was suspended by the service's memory watchdog (distinct from
#: ``load_shed``, which discards *queued* work — suspension keeps the
#: warm state and re-queues the study for when pressure clears).
TRIAL_SUSPENDED = "trial_suspended"
TRIAL_RESUMED = "trial_resumed"
SUSPEND_SPILL = "suspend_spill"
RUNG_PROMOTION = "rung_promotion"
STUDY_SUSPENDED = "study_suspended"
#: Cross-trial reuse events: a stage resolved from the content-addressed
#: cache after sidecar verification (hit), missed and was computed, an
#: entry failed verification (corrupt/truncated — treated as a miss,
#: quarantined after ``poison_threshold`` failures), an entry was shed by
#: the LRU disk-pressure evictor, or a submitter waited on (or broke, or
#: timed out against) another writer's single-flight lease.
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
CACHE_CORRUPT = "cache_corrupt"
CACHE_EVICT = "cache_evict"
LEASE_WAIT = "lease_wait"

EVENT_KINDS = (
    TIMEOUT,
    BACKOFF_WAIT,
    SPECULATION_LAUNCHED,
    SPECULATION_WON,
    SPECULATION_CANCELLED,
    QUARANTINE,
    PROBE,
    TRIAL_RETRY,
    NODE_LOST,
    LINEAGE_RECOVERY,
    JOURNAL_TRUNCATED,
    CHECKPOINT_RESTORE,
    WORKER_CRASH,
    WORKER_KILLED,
    WORKER_RECYCLED,
    POISON_TASK,
    DATA_CORRUPT,
    TRANSFER_FAILED,
    TRANSFER_RETRY,
    REPLICA_REPAIR,
    INTEGRITY_RECOMPUTE,
    NODE_DRAINING,
    DRAIN_COMPLETE,
    DRAIN_DEADLINE,
    PREEMPTION_NOTICE,
    NODE_REJOINED,
    CLASS_STARVED,
    UPSTREAM_CANCELLED,
    STUDY_ADMITTED,
    STUDY_COMPLETED,
    STUDY_FAILED,
    STUDY_CANCELLED,
    LOAD_SHED,
    TRIAL_SUSPENDED,
    TRIAL_RESUMED,
    SUSPEND_SPILL,
    RUNG_PROMOTION,
    STUDY_SUSPENDED,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_CORRUPT,
    CACHE_EVICT,
    LEASE_WAIT,
)


@dataclass(frozen=True)
class ResilienceEvent:
    """One resilience decision, timestamped in the executor's clock."""

    time: float
    kind: str
    task_label: str = ""
    node: str = ""
    detail: str = ""

    def describe(self) -> str:
        parts = [f"t={self.time:.1f}", self.kind]
        if self.task_label:
            parts.append(self.task_label)
        if self.node:
            parts.append(f"@{self.node}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


class ResilienceLog:
    """Bounded ring buffer of :class:`ResilienceEvent` records.

    Events are appended in decision order, which for the simulated
    executor is fully deterministic: two runs with the same seed produce
    identical logs (the chaos-test acceptance criterion).

    The buffer keeps the most recent ``maxlen`` events (default 10 000)
    so a multi-day study with chronic flakiness cannot grow the log
    without bound; evicted events are counted in :attr:`dropped` and
    surfaced by :meth:`counts` under ``"dropped_events"``.
    """

    DEFAULT_MAXLEN = 10_000

    def __init__(self, maxlen: Optional[int] = DEFAULT_MAXLEN) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self.events: Deque[ResilienceEvent] = deque(maxlen=maxlen)
        #: Events evicted from the ring buffer since the last clear().
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        task_label: str = "",
        node: str = "",
        detail: str = "",
    ) -> ResilienceEvent:
        """Append and return an event (evicting the oldest when full)."""
        event = ResilienceEvent(time, kind, task_label, node, detail)
        if self.maxlen is not None and len(self.events) == self.maxlen:
            self.dropped += 1
        self.events.append(event)
        _log.info("resilience: %s", event.describe())
        return event

    def of_kind(self, kind: str) -> List[ResilienceEvent]:
        """Retained events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """``kind → occurrences`` over retained events.

        When the ring buffer has evicted events, the count of evictions
        appears under ``"dropped_events"`` so dashboards can tell the
        totals are a window, not the full history.
        """
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        if self.dropped:
            out["dropped_events"] = self.dropped
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)


class StragglerDetector:
    """Running per-task-name duration medians for straggler detection.

    A task of name *n* still running after ``multiplier × median(n)``
    seconds is a straggler candidate; the executor launches a backup
    attempt on another node and keeps the first finisher.  The median is
    only trusted once ``min_samples`` successful attempts of that name
    completed (early in a study there is nothing to compare against).
    """

    def __init__(self, multiplier: float, min_samples: int = 3):
        check_positive("multiplier", multiplier)
        check_positive("min_samples", min_samples)
        self.multiplier = float(multiplier)
        self.min_samples = int(min_samples)
        self._durations: Dict[str, List[float]] = {}

    def observe(self, name: str, duration: float) -> None:
        """Record one successful attempt's duration."""
        if duration < 0:
            return
        insort(self._durations.setdefault(name, []), duration)

    def samples(self, name: str) -> int:
        return len(self._durations.get(name, ()))

    def median(self, name: str) -> Optional[float]:
        """Median duration, or None below ``min_samples`` observations."""
        durations = self._durations.get(name)
        if not durations or len(durations) < self.min_samples:
            return None
        return float(statistics.median(durations))

    def threshold(self, name: str) -> Optional[float]:
        """Straggler threshold (seconds), or None if not yet known."""
        median = self.median(name)
        return None if median is None else self.multiplier * median


class _NodeState:
    """Mutable health record for one node."""

    __slots__ = ("outcomes", "status", "quarantined_until", "failures", "timeouts")

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    PROBING = "probing"

    def __init__(self, window: int):
        self.outcomes: Deque[bool] = deque(maxlen=window)
        self.status = self.HEALTHY
        self.quarantined_until = 0.0
        self.failures = 0
        self.timeouts = 0


class NodeHealth:
    """Per-node failure accounting with quarantine and probe-back.

    A node whose failure rate over its last ``window`` attempts reaches
    ``threshold`` (with at least ``min_events`` attempts observed) is
    *quarantined*: the scheduler stops placing tasks there (see
    ``Scheduler._try_place``).  After ``cooldown_s`` the node moves to
    *probation*: it may host tasks again (a "probe"); the first failure
    re-quarantines it immediately, the first success restores it to
    healthy with a clean history.

    Parameters
    ----------
    threshold:
        Failure-rate threshold in ``(0, 1]``; ``None`` disables tracking.
    window:
        Number of most-recent attempt outcomes considered per node.
    min_events:
        Minimum outcomes before the rate is acted upon.
    cooldown_s:
        Quarantine duration (in the owning executor's clock).
    log:
        Optional :class:`ResilienceLog` receiving quarantine/probe events.
    clock:
        Zero-argument callable returning the current time; the runtime
        points this at the executor's (wall or virtual) clock.
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        window: int = 10,
        min_events: int = 4,
        cooldown_s: float = 300.0,
        log: Optional[ResilienceLog] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if threshold is not None:
            check_in_range("threshold", threshold, 0.0, 1.0)
            if threshold == 0.0:
                raise ValueError("threshold must be > 0 (use None to disable)")
        check_positive("window", window)
        check_positive("min_events", min_events)
        check_positive("cooldown_s", cooldown_s)
        self.threshold = threshold
        self.window = int(window)
        self.min_events = int(min_events)
        self.cooldown_s = float(cooldown_s)
        self.log = log
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._state: Dict[str, _NodeState] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def _node(self, node: str) -> _NodeState:
        state = self._state.get(node)
        if state is None:
            state = self._state[node] = _NodeState(self.window)
        return state

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_success(self, node: str) -> None:
        """A task attempt completed successfully on ``node``."""
        if not self.enabled:
            return
        state = self._node(node)
        state.outcomes.append(True)
        if state.status == _NodeState.PROBING:
            # Probe passed: full pardon.
            state.status = _NodeState.HEALTHY
            state.outcomes.clear()

    def record_failure(self, node: str, kind: str = "failure") -> None:
        """A task attempt failed (or timed out) on ``node``."""
        if not self.enabled:
            return
        state = self._node(node)
        state.outcomes.append(False)
        state.failures += 1
        if kind == "timeout":
            state.timeouts += 1
        if state.status == _NodeState.PROBING:
            self._quarantine(node, state, detail=f"probe failed ({kind})")
        elif state.status == _NodeState.HEALTHY and self._over_threshold(state):
            self._quarantine(
                node, state,
                detail=f"failure rate {self.failure_rate(node):.2f} "
                f">= {self.threshold:.2f}",
            )

    def _over_threshold(self, state: _NodeState) -> bool:
        if len(state.outcomes) < self.min_events:
            return False
        failures = sum(1 for ok in state.outcomes if not ok)
        return failures / len(state.outcomes) >= (self.threshold or 1.1)

    def _quarantine(self, node: str, state: _NodeState, detail: str) -> None:
        now = self.clock()
        state.status = _NodeState.QUARANTINED
        state.quarantined_until = now + self.cooldown_s
        state.outcomes.clear()
        if self.log is not None:
            self.log.record(now, QUARANTINE, node=node, detail=detail)

    # ------------------------------------------------------------------
    # Queries (scheduler side)
    # ------------------------------------------------------------------
    def is_blocked(self, node: str) -> bool:
        """Whether the scheduler should avoid ``node`` right now.

        Checking a node whose cool-down has expired transitions it to
        probation (and logs a ``probe`` event) as a side effect.
        """
        if not self.enabled:
            return False
        state = self._state.get(node)
        if state is None or state.status != _NodeState.QUARANTINED:
            return False
        now = self.clock()
        if now >= state.quarantined_until:
            state.status = _NodeState.PROBING
            state.outcomes.clear()
            if self.log is not None:
                self.log.record(now, PROBE, node=node, detail="cool-down expired")
            return False
        return True

    def blocked_nodes(self) -> List[str]:
        """Currently-quarantined nodes (triggers probe transitions)."""
        return [node for node in list(self._state) if self.is_blocked(node)]

    def failure_rate(self, node: str) -> float:
        """Failure rate over the node's current outcome window."""
        state = self._state.get(node)
        if state is None or not state.outcomes:
            return 0.0
        return sum(1 for ok in state.outcomes if not ok) / len(state.outcomes)

    def status(self, node: str) -> str:
        """``healthy`` / ``quarantined`` / ``probing`` for ``node``."""
        state = self._state.get(node)
        return state.status if state is not None else _NodeState.HEALTHY

    def describe(self) -> str:
        if not self._state:
            return "(no node-health records)"
        lines = ["node health:"]
        for node in sorted(self._state):
            state = self._state[node]
            lines.append(
                f"  {node}: {state.status}, {state.failures} failures "
                f"({state.timeouts} timeouts), window rate "
                f"{self.failure_rate(node):.2f}"
            )
        return "\n".join(lines)
