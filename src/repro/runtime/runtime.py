"""The COMPSs-equivalent runtime: ties graph, scheduler, executor together.

One :class:`COMPSsRuntime` instance corresponds to one ``runcompss``
session.  ``@task`` wrappers submit invocations here; the runtime detects
dependencies via the access processor, inserts the task into the graph,
and hands execution to the configured executor.  ``wait_on`` / ``barrier``
provide the synchronisation API of the paper's Listing 2.
"""

from __future__ import annotations

import gc
import inspect
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.runtime import checkpoint as ckpt
from repro.runtime import integrity as igr
from repro.runtime.access_processor import AccessProcessor
from repro.runtime.config import RuntimeConfig
from repro.runtime.dispatch import DispatchEngine
from repro.runtime.dot import export_dot, render_dot
from repro.runtime.executor.base import Executor
from repro.runtime.executor.local import LocalExecutor
from repro.runtime.executor.simulated import SimulatedExecutor
from repro.runtime.future import Future, is_future
from repro.runtime.graph import TaskGraph
from repro.runtime.fault import StudyAbandonedError, UpstreamFailureError
from repro.pycompss_api.task_group import record_submission
from repro.runtime.preemption import PreemptionController
from repro.runtime.reuse import MISS as _CACHE_MISS, ReuseCache
from repro.runtime.resilience import (
    CHECKPOINT_RESTORE,
    DRAIN_COMPLETE,
    NODE_DRAINING,
    NODE_REJOINED,
    STUDY_FAILED,
    UPSTREAM_CANCELLED,
    NodeHealth,
    ResilienceLog,
    StragglerDetector,
)
from repro.runtime.scheduler import Scheduler, get_scheduler
from repro.runtime.scheduler.locality import LocalityScheduler
from repro.runtime.task_definition import (
    TaskDefinition,
    TaskInvocation,
    TaskState,
    reset_invocation_counter,
)
from repro.runtime.tracing.analysis import TraceAnalysis
from repro.runtime.tracing.extrae import TraceRecorder
from repro.util.logging_utils import get_logger

_log = get_logger("runtime")

_current: Optional["COMPSsRuntime"] = None
_current_lock = threading.Lock()

#: Exact types that can never create a dependency edge: not trackable by
#: the access processor and never a FILE path (strings stay out — they
#: can name files).  Exact-type check on purpose: an int subclass falls
#: through to the full binder, which handles it like before.
_DEP_FREE_TYPES = frozenset((int, float, complex, bool, type(None)))


def current_runtime() -> Optional["COMPSsRuntime"]:
    """The active runtime, or None (sequential fallback mode)."""
    return _current


def set_current(runtime: Optional["COMPSsRuntime"]) -> None:
    """Install/clear the active runtime (used by compss_start/stop)."""
    global _current
    with _current_lock:
        if runtime is not None and _current is not None:
            raise RuntimeError(
                "a COMPSs runtime is already active; call compss_stop() first"
            )
        _current = runtime


class COMPSsRuntime:
    """One runtime session over a (real or simulated) cluster.

    Parameters
    ----------
    config:
        Runtime configuration (cluster, scheduler, resilience knobs, and
        — for crash consistency — ``checkpoint_dir``/``checkpoint_every``).
    resume_from:
        Path to a previous run's checkpoint directory (or its
        ``journal.jsonl``).  The journal is replayed before any task
        runs: submissions matching a journaled-complete task with a
        stored output are *restored* instead of executed (exactly-once
        for the replayed prefix), and journaling continues into the same
        directory so a chain of crashes keeps one history.
    """

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        resume_from: Optional[str] = None,
    ):
        from repro.runtime.resources import ResourcePool  # local import: cycle-free

        self.config = config or RuntimeConfig()
        self.cluster = self.config.cluster
        self.lock = threading.RLock()
        self._gc_managed = False
        self.graph = TaskGraph()
        self.access = AccessProcessor()
        self.tracer = TraceRecorder(enabled=self.config.tracing)
        self.pool = ResourcePool(self.cluster, self.config.reserved_cores)
        self.retry_policy = self.config.retry_policy
        self.failure_injector = self.config.failure_injector
        self.cost_model = self.config.cost_model
        #: Structured log of resilience decisions (timeouts, backoff
        #: waits, speculation, quarantine/probe) — see runtime/resilience.
        self.resilience = ResilienceLog()
        self.node_health = NodeHealth(
            threshold=self.config.quarantine_threshold,
            window=self.config.quarantine_window,
            min_events=self.config.quarantine_min_events,
            cooldown_s=self.config.quarantine_cooldown_s,
            log=self.resilience,
        )
        self.straggler: Optional[StragglerDetector] = (
            StragglerDetector(
                self.config.speculation_multiplier,
                self.config.speculation_min_samples,
            )
            if self.config.speculation_multiplier is not None
            else None
        )
        self.pool.health = self.node_health
        self.scheduler: Scheduler = (
            get_scheduler(self.config.scheduler)
            if isinstance(self.config.scheduler, str)
            else self.config.scheduler
        )
        #: The scheduler again when it wants dependency registration
        #: (locality policy), else None — avoids an isinstance per submit.
        self._locality: Optional[LocalityScheduler] = (
            self.scheduler
            if isinstance(self.scheduler, LocalityScheduler)
            else None
        )
        #: Incremental dispatch fast path shared by both executors: holds
        #: the per-constraint-class ready queues and is woken by the pool
        #: on capacity changes (event-driven partial rescheduling).
        self.dispatcher = DispatchEngine(self.scheduler, self.pool)
        self.pool.listener = self.dispatcher
        self.executor: Executor = self._make_executor()
        # Starvation watchdog wiring: the engine timestamps starved
        # constraint classes in the executor's clock and the executors
        # reap them after starvation_timeout_s.
        self.dispatcher.clock = self.executor.clock
        self.dispatcher.resilience = self.resilience
        self.dispatcher.starvation_timeout_s = self.config.starvation_timeout_s
        #: Cooperative trial preemption: flag registry + suspend/resume
        #: primitives (see runtime/preemption).  Always constructed; it
        #: only has work when the HPO runner registers preemptible trials.
        self.preemption = PreemptionController(
            log=self.resilience,
            clock=self.executor.clock,
            max_suspended=self.config.max_suspended_trials,
        )
        #: End-to-end data integrity (``config.verify_outputs``): seals a
        #: checksum on every data version at write time, verifies at
        #: consume time, repairs from replicas, escalates to lineage
        #: recompute.  ``None`` when verification is off (zero overhead).
        self.integrity: Optional[igr.IntegrityManager] = None
        if self.config.verify_outputs:
            mode = (
                igr.MODE_SIMULATED
                if isinstance(self.executor, SimulatedExecutor)
                else igr.MODE_LOCAL
            )
            self.integrity = igr.IntegrityManager(
                mode,
                replication_factor=self.config.replication_factor,
                seed=getattr(self.failure_injector, "_seed", 0) or 0,
                log=self.resilience,
                clock=self.executor.clock,
            )
        self._futures: Dict[int, List[Future]] = {}
        # Streaming mode: the graph frees fully-consumed completed tasks
        # and tells us to drop their registry entries, so memory tracks
        # the active frontier instead of the whole study.
        self.graph.stream_completed = self.config.stream_completed
        if self.config.stream_completed:
            self.graph.on_free = self._on_task_freed
        self.sync_points: List[Tuple[int, List[int]]] = []
        self._started = False
        # ---- Crash-consistency layer (write-ahead journal + store) ----
        resume_path: Optional[Path] = None
        if resume_from is not None:
            resume_path = Path(resume_from)
            if resume_path.name == ckpt.JOURNAL_FILE:
                resume_path = resume_path.parent
        checkpoint_dir = (
            Path(self.config.checkpoint_dir)
            if self.config.checkpoint_dir is not None
            else resume_path
        )
        self.recovery: Optional[ckpt.RecoveryManager] = (
            ckpt.RecoveryManager(resume_path, log=self.resilience)
            if resume_path is not None
            else None
        )
        self.keyer: Optional[ckpt.TaskKeyer] = None
        self.journal: Optional[ckpt.WriteAheadJournal] = None
        self.checkpoint_store: Optional[ckpt.CheckpointStore] = None
        if checkpoint_dir is not None:
            self.keyer = ckpt.TaskKeyer()
            self.journal = ckpt.WriteAheadJournal(
                checkpoint_dir / ckpt.JOURNAL_FILE,
                fsync=self.config.journal_fsync,
                buffer_records=self.config.journal_buffer_records,
            )
            self.checkpoint_store = ckpt.CheckpointStore(
                checkpoint_dir / ckpt.OUTPUTS_DIR,
                cadence=self.config.checkpoint_every,
            )
        # ---- Cross-trial reuse (content-addressed stage cache) ----
        #: One cache per runtime, shared by every study/tenant: content
        #: keys are namespace-free by design, so a stage one tenant
        #: computed is a verified hit for every other.  ``None`` when
        #: reuse is off (zero overhead).
        self.reuse: Optional[ReuseCache] = None
        if self.config.reuse_cache:
            if self.config.cache_dir is not None:
                cache_dir = Path(self.config.cache_dir)
            elif checkpoint_dir is not None:
                cache_dir = checkpoint_dir / "reuse"
            else:
                raise ValueError(
                    "RuntimeConfig.reuse_cache needs a home: set cache_dir, "
                    "or set checkpoint_dir (the cache then lives under "
                    "<checkpoint_dir>/reuse)"
                )
            self.reuse = ReuseCache(
                cache_dir,
                max_bytes=self.config.cache_max_bytes,
                lease_timeout_s=self.config.cache_lease_timeout_s,
                lease_wait_s=self.config.cache_lease_wait_s,
                poison_threshold=self.config.cache_poison_threshold,
                seed=getattr(self.failure_injector, "_seed", 0) or 0,
                integrity=self.integrity,
                log=self.resilience,
                clock=self.executor.clock,
            )
        #: Content-key canonicaliser for cacheable submissions.  Its own
        #: keyer (not the journal one): content keys touch no occurrence
        #: state and must exist even when journaling is off.
        self._content_keyer = ckpt.TaskKeyer()
        # ---- Multi-tenant service mode (repro serve) ----
        #: Per-study sessions: namespaced keyer/journal/checkpoint/recovery
        #: bundles keyed by study id.  Empty outside service mode, in which
        #: case every code path below falls back to the session-less
        #: attributes above and behaves exactly as before.
        self._sessions: Dict[str, ckpt.StudySession] = {}
        #: Thread-local submission scope: a study worker thread enters
        #: ``study_scope(session)`` so its submissions are keyed, journaled
        #: and restored against that study's namespace.
        self._study_local = threading.local()

    def _make_executor(self) -> Executor:
        ex = self.config.executor
        if isinstance(ex, Executor):
            return ex
        if ex == "local":
            if self.config.backend == "workers":
                from repro.runtime.executor.workers import WorkerPoolExecutor

                return WorkerPoolExecutor(
                    max_parallel=self.config.max_parallel,
                    max_tasks_per_worker=self.config.max_tasks_per_worker,
                    poison_threshold=self.config.poison_threshold,
                    heartbeat_s=self.config.worker_heartbeat_s,
                )
            return LocalExecutor(
                backend=self.config.backend, max_parallel=self.config.max_parallel
            )
        if ex == "simulated":
            return SimulatedExecutor(
                duration_fn=self.config.duration_fn,
                execute_bodies=self.config.execute_bodies,
                default_dataset=self.config.default_dataset,
            )
        raise ValueError(f"unknown executor {ex!r}; use 'local' or 'simulated'")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "COMPSsRuntime":
        """Activate this runtime (make @task calls asynchronous)."""
        if self._started:
            raise RuntimeError("runtime already started")
        reset_invocation_counter()
        self.executor.bind(self)
        # Quarantine cool-downs tick in the executor's clock (wall or
        # virtual), not the host's.
        self.node_health.clock = self.executor.clock
        set_current(self)
        self._started = True
        if self.config.manage_gc:
            # The runtime's own structures are cycle-free and reclaimed
            # by reference counting; the cycle collector only re-scans
            # the growing live-task heap (~30% of dispatch cost at 100k
            # tasks).  Freeze the baseline heap now and the accumulating
            # task history periodically (gc_checkpoint); unfrozen in
            # stop().
            self._gc_managed = True
            gc.freeze()
        if self.journal is not None:
            self.journal.open_session(
                cluster=self.cluster.name,
                resumed=self.recovery is not None,
            )
        _log.info("runtime started on %s", self.cluster.name)
        return self

    def gc_checkpoint(self) -> None:
        """Move the live heap out of the cycle collector's scan set.

        Called periodically by ``submit`` and the executors' wait loops
        (``gc.freeze`` is an O(1) generation-list splice, so frequent
        calls are fine).  Everything alive right now — dominated by the
        completed-task history — stops being re-scanned by every later
        generational sweep; reference counting still reclaims it the
        moment it dies.  No-op unless ``manage_gc`` froze at start.
        """
        if self._gc_managed:
            gc.freeze()

    def stop(self, wait: bool = True) -> None:
        """Deactivate; optionally waits for all outstanding tasks first."""
        if not self._started:
            return
        try:
            if wait:
                try:
                    self.barrier()
                except Exception as exc:  # noqa: BLE001 - cleanup must not re-raise
                    # A failed task surfaces where the user waits on it;
                    # re-raising from cleanup would mask/duplicate it.
                    _log.warning("outstanding task failed during stop(): %s", exc)
        finally:
            self.executor.shutdown()
            if self.reuse is not None:
                # Leases of never-completed stages would otherwise linger
                # until stale-age expiry in the next process.
                self.reuse.release_all()
            if self.journal is not None:
                self.journal.close()
            for session in list(self._sessions.values()):
                session.close()
            self._sessions.clear()
            set_current(None)
            self._started = False
            if self._gc_managed:
                self._gc_managed = False
                gc.unfreeze()
            _log.info("runtime stopped")

    def __enter__(self) -> "COMPSsRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't block on a barrier if the body raised.
        self.stop(wait=exc_type is None)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        definition: TaskDefinition,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> Union[Future, Tuple[Future, ...], None]:
        """Create an invocation, detect dependencies, enqueue it.

        Returns the task's future(s): one :class:`Future`, a tuple for
        multi-return tasks, or None for ``returns=0`` tasks.
        """
        if not self._started:
            raise RuntimeError("runtime not started")
        invocation = TaskInvocation(definition=definition, args=args, kwargs=kwargs)
        # Service mode: the submitting thread's study scope decides which
        # namespace keys/journals/restores this task.  ``None`` outside
        # service mode — the session-less attributes apply unchanged.
        session: Optional[ckpt.StudySession] = getattr(
            self._study_local, "session", None
        )
        if session is not None:
            invocation.study = session.study_id
            keyer, journal, recovery = (
                session.keyer, session.journal, session.recovery
            )
        else:
            keyer, journal, recovery = self.keyer, self.journal, self.recovery
        # Cross-trial reuse: resolve the stage's content key and consult
        # the cache BEFORE taking the runtime lock — a busy single-flight
        # lease may be waited on (bounded, seeded-jitter backoff), and
        # other studies' submissions/completions must keep flowing while
        # this thread waits.  Every outcome is safe under concurrency:
        # a verified value restores, anything else computes.
        reuse = self.reuse
        content_key: Optional[str] = None
        cached: Any = _CACHE_MISS
        if reuse is not None and definition.cacheable:
            content_key = self._content_keyer.content_key_for(invocation)
            if content_key is not None:
                cached = reuse.acquire(content_key)
        deps: Dict[int, TaskInvocation] = {}
        edge_labels: Dict[int, str] = {}
        restored: Any = ckpt._MISSING
        with self.lock:
            if not COMPSsRuntime._scan_free(definition, args, kwargs):
                for name, value, spec in self._iter_param_accesses(
                    definition, args, kwargs
                ):
                    access_deps, labels = self.access.process_access(
                        invocation, value, spec
                    )
                    label = labels[0] if labels else ""
                    for dep in access_deps:
                        deps[dep.task_id] = dep
                        if self.config.graph and label:
                            edge_labels[dep.task_id] = label
            futures = [Future(invocation, i) for i in range(definition.n_returns)]
            for fut in futures:
                # register_output_future minus the unused label return.
                self.access._info_for_future(fut)
            self._futures[invocation.task_id] = futures
            if keyer is not None:
                keyer.key_for(invocation)
                if recovery is not None:
                    restored = recovery.restored_result(invocation.task_key)
            cache_hit = False
            if restored is not ckpt._MISSING:
                # Journaled-complete with a stored output: restore instead
                # of executing (exactly-once for the replayed prefix).
                # If this thread also claimed a reuse lease (cache missed
                # but the journal had the value), publish the restored
                # result so other trials hit — and the lease is released.
                invocation.state = TaskState.DONE
                invocation.result = restored
                if content_key is not None and reuse.holds_lease(content_key):
                    reuse.publish(content_key, restored)
            elif cached is not _CACHE_MISS:
                # Verified cross-trial cache hit: same restore machinery
                # as a journal replay — the graph accepts DONE-at-add
                # tasks and never dispatches them.
                cache_hit = True
                restored = cached
                invocation.state = TaskState.DONE
                invocation.result = restored
            dep_list = list(deps.values())
            if self._locality is not None:
                self._locality.register_dependencies(invocation, dep_list)
            self.graph.add_task(invocation, dep_list, edge_labels)
            if restored is not ckpt._MISSING:
                Executor.fan_out_result(invocation, futures, restored)
                # Restored outputs verified at spill load; seal them so
                # consumers can verify them like freshly-produced ones.
                self._seal_outputs(invocation, restored)
                if not cache_hit:
                    # Cache hits already logged CACHE_HIT inside
                    # ReuseCache.acquire; a second record here would
                    # double-count hits vs. reuse.stats().
                    self.resilience.record(
                        self.executor.clock(),
                        CHECKPOINT_RESTORE,
                        invocation.label,
                        detail=f"key={invocation.task_key}",
                    )
            if journal is not None:
                journal.append(
                    ckpt.SUBMITTED, invocation.task_key, task=invocation.label
                )
                if restored is not ckpt._MISSING:
                    journal.append(
                        ckpt.COMPLETED, invocation.task_key,
                        task=invocation.label,
                        **({"cached": True} if cache_hit
                           else {"restored": True}),
                    )
        # Attach to any open TaskGroup (selective barriers).
        record_submission(invocation)
        if invocation.task_id & 0xFFF == 0:
            # Periodically stop the cycle collector re-scanning the
            # accumulated submission history (O(1), see gc_checkpoint).
            self.gc_checkpoint()
        if restored is ckpt._MISSING:
            self.executor.notify_submitted(invocation)
        if not futures:
            return None
        return futures[0] if len(futures) == 1 else tuple(futures)

    @staticmethod
    def _iter_param_accesses(
        definition: TaskDefinition,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ):
        """Yield (param_name, value, spec) for every argument.

        Variadic ``*args`` parameters yield one access per element.
        """
        # Fast path for plain positional calls against plain signatures
        # (the overwhelmingly common case on the submission hot path):
        # ``sig.bind`` costs ~15µs per call just to pair names with
        # values, so pair them with ``zip`` instead.  Only taken when it
        # provably binds the same way: no kwargs, no variadic parameters,
        # and the positional count fills every required parameter.
        fast = getattr(definition, "_positional_fast", False)
        if fast is False:
            fast = COMPSsRuntime._positional_fast_info(definition)
            definition._positional_fast = fast
        if fast is not None and not kwargs:
            names, n_required = fast
            if n_required <= len(args) <= len(names):
                skippable = _DEP_FREE_TYPES
                for name, value in zip(names, args):
                    if type(value) in skippable:
                        # Numbers/None can never carry a dependency (not
                        # trackable, not a file path): skip the access
                        # processor round-trip entirely.
                        continue
                    yield from COMPSsRuntime._expand_value(
                        name, value, definition.spec_for(name)
                    )
                return
        try:
            # inspect.signature is ~10µs per call and identical for every
            # invocation of a definition: cache it on the definition.
            sig = getattr(definition, "_signature_cache", None)
            if sig is None:
                sig = inspect.signature(definition.func)
                definition._signature_cache = sig
            bound = sig.bind(*args, **kwargs)
        except TypeError:
            # Signature mismatch surfaces when the body runs; fall back to
            # positional names so dependency detection still works.
            for i, value in enumerate(args):
                yield f"arg{i}", value, definition.spec_for(f"arg{i}")
            for key, value in kwargs.items():
                yield key, value, definition.spec_for(key)
            return
        for name, value in bound.arguments.items():
            param = sig.parameters[name]
            spec = definition.spec_for(name)
            if param.kind == inspect.Parameter.VAR_POSITIONAL:
                for item in value:
                    yield from COMPSsRuntime._expand_value(name, item, spec)
            elif param.kind == inspect.Parameter.VAR_KEYWORD:
                for key, item in value.items():
                    yield from COMPSsRuntime._expand_value(
                        key, item, definition.spec_for(key)
                    )
            else:
                yield from COMPSsRuntime._expand_value(name, value, spec)

    @staticmethod
    def _scan_free(
        definition: TaskDefinition,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> bool:
        """True when no argument can carry a dependency.

        A plainly-positional call whose every argument is a dep-free
        scalar needs no access scan at all — the generator in
        :meth:`_iter_param_accesses` would yield nothing, so ``submit``
        skips creating it (measurably cheaper at 100k+ tasks).
        """
        if kwargs:
            return False
        fast = getattr(definition, "_positional_fast", False)
        if fast is False:
            fast = COMPSsRuntime._positional_fast_info(definition)
            definition._positional_fast = fast
        if fast is None:
            return False
        names, n_required = fast
        if not (n_required <= len(args) <= len(names)):
            return False
        free = _DEP_FREE_TYPES
        for value in args:
            if type(value) not in free:
                return False
        return True

    @staticmethod
    def _positional_fast_info(definition: TaskDefinition):
        """``(names, n_required)`` when the signature is plainly positional.

        Returns ``None`` (fast path unusable) for signatures with
        variadic or keyword-only parameters.
        """
        sig = getattr(definition, "_signature_cache", None)
        if sig is None:
            try:
                sig = inspect.signature(definition.func)
            except (TypeError, ValueError):
                return None
            definition._signature_cache = sig
        names = []
        n_required = 0
        for name, param in sig.parameters.items():
            if param.kind not in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                return None
            names.append(name)
            if param.default is inspect.Parameter.empty:
                n_required += 1
        # Required params always precede defaults in these kinds, so
        # ``n_required <= len(args)`` means every required one is filled.
        return tuple(names), n_required

    @staticmethod
    def _expand_value(name: str, value: Any, spec):
        """Yield the value plus any futures nested in containers.

        A task receiving a list of futures (e.g. the paper's final
        ``plot(results)`` task) must depend on every producer.
        """
        yield name, value, spec
        if isinstance(value, (list, tuple, set)):
            items = value
        elif isinstance(value, dict):
            items = value.values()
        else:
            return
        from repro.pycompss_api.parameter import IN

        nested: List[Future] = []
        for item in items:
            COMPSsRuntime._collect_futures(item, nested)
        for fut in nested:
            yield name, fut, IN

    # ------------------------------------------------------------------
    # Completion (called by executors)
    # ------------------------------------------------------------------
    def complete_task(self, task: TaskInvocation, result: Any) -> None:
        """Fan the result into futures and unlock successors."""
        futures = self._futures.get(task.task_id, [])
        Executor.fan_out_result(task, futures, result)
        self.graph.mark_done(task)
        if self.access.any_invalidated:
            # Lineage recovery: a re-executed writer re-materialises its
            # data.  Skipped wholesale until a node loss ever happens.
            self.access.revalidate_versions_written_by(task)
        if self.integrity is not None:
            self._seal_outputs(task, result)
        session = self._sessions.get(task.study) if task.study else None
        journal = session.journal if session is not None else self.journal
        store = (
            session.checkpoint_store if session is not None
            else self.checkpoint_store
        )
        if journal is not None and task.task_key is not None:
            stored = False
            if store is not None and store.should_spill():
                stored = store.save(task.task_key, result)
            journal.append(
                ckpt.COMPLETED, task.task_key,
                task=task.label, node=task.node or "", stored=stored,
            )
        reuse = self.reuse
        if reuse is not None and task.content_key is not None:
            injector = self.failure_injector
            if injector is not None and injector.cache_lease_stalls(task.label):
                # Chaos: simulate a writer SIGKILLed mid-stage — its lease
                # file survives but no entry ever lands.  Waiters must
                # expire the lease or time out and recompute.
                reuse.wedge_lease(task.content_key)
            else:
                reuse.publish(task.content_key, result)
                if injector is not None and injector.cache_corrupts(task.label):
                    # Chaos: bit-rot the freshly-published entry in place
                    # (payload flipped, sidecar intact).  Detection happens
                    # at the next hit's verify — never silently consumed.
                    reuse.corrupt_entry(task.content_key)

    def _on_task_freed(self, task: TaskInvocation) -> None:
        """Streaming: drop registry entries of a graph-freed task."""
        tid = task.task_id
        self._futures.pop(tid, None)
        self.access.release_task(tid, task.definition.n_returns)

    def _seal_outputs(self, task: TaskInvocation, result: Any) -> None:
        """Checksum ``task``'s freshly-written data versions (integrity).

        Local mode snapshots the pickled return values; simulated mode
        derives digests from the modelled output size and registers the
        primary + replica copies.  After sealing, the failure injector
        gets a chance to silently corrupt the new copies (chaos testing)
        — detection happens later, at consume time.
        """
        integrity = self.integrity
        if integrity is None:
            return
        versions = self.access.versions_written_by(task)
        if not versions:
            return
        if integrity.mode == igr.MODE_SIMULATED:
            primary = task.node or ""
            integrity.seal_simulated(
                task,
                versions,
                primary,
                float(task.definition.output_size_mb),
                self._replica_nodes(primary),
            )
        else:
            futs = self.access.future_versions(task)
            if not futs:
                return
            if len(futs) == 1:
                items = [(futs[0][1], result)]
            else:
                try:
                    values = list(result)
                except TypeError:
                    values = []
                items = [
                    (version, values[i]) for i, version in futs if i < len(values)
                ]
            integrity.seal_local(task, items)
        injector = self.failure_injector
        if injector is not None:
            scope = injector.corruption_scope(task.label)
            if scope is not None:
                # Silent: no event at injection — the point of end-to-end
                # verification is that corruption surfaces at read time.
                integrity.corrupt(task, scope)

    def _replica_nodes(self, primary: str) -> List[str]:
        """Replica placements for a primary copy (simulated data plane).

        Only live (UP) workers receive replicas — a dead or draining node
        cannot accept the asynchronous copy.  Outputs written while the
        cluster is short-handed stay under-replicated until a node
        rejoins and :meth:`~repro.runtime.integrity.IntegrityManager.
        reseed_node` tops them back up.
        """
        extra = self.config.replication_factor - 1
        if extra <= 0:
            return []
        others = sorted(
            w.name
            for w in self.pool.workers.values()
            if w.available and w.name != primary
        )
        return others[:extra]

    def recompute_corrupt(self, writers, extra_consumers=()) -> List[str]:
        """Re-execute writers whose outputs have no intact copy left.

        Returns the labels of the invalidated data versions (see
        :func:`repro.runtime.integrity.recover_corrupt_versions`).
        """
        with self.lock:
            return igr.recover_corrupt_versions(self, writers, extra_consumers)

    def journal_task_event(
        self, task: TaskInvocation, kind: str, node: str = ""
    ) -> None:
        """Append a task lifecycle record (executors journal start/failure)."""
        if kind == ckpt.FAILED and self.reuse is not None:
            if task.content_key is not None:
                # A terminally-failed stage never publishes: surrender the
                # single-flight lease so waiters stop spinning on it.
                self.reuse.abandon(task.content_key)
        session = self._sessions.get(task.study) if task.study else None
        journal = session.journal if session is not None else self.journal
        if journal is None or task.task_key is None:
            return
        journal.append(
            kind, task.task_key, task=task.label, node=node or (task.node or "")
        )

    def fail_descendants(
        self, task: TaskInvocation, now: float
    ) -> List[TaskInvocation]:
        """Cancel every unfinished transitive consumer of a dead task.

        Called by the executors when ``task`` fails *terminally* (retry
        budget exhausted, or reaped by the starvation watchdog).  Its
        consumers can never become ready — without this they would sit
        in SUBMITTED forever and ``wait_for`` would hang (simulated: a
        "simulation stalled" crash) instead of surfacing the root
        failure.  Each victim fails with :class:`UpstreamFailureError`
        chained to the producer's error.
        """
        cause = task.error or RuntimeError("unknown")
        victims: List[TaskInvocation] = []
        with self.lock:
            for dep in self.graph.descendants(task):
                if dep.state in (TaskState.DONE, TaskState.FAILED):
                    continue
                exc = UpstreamFailureError(dep.label, task.label, cause)
                dep.attempt_history.append(f"cancelled: {exc}")
                dep.state = TaskState.FAILED
                dep.error = exc
                self.journal_task_event(dep, ckpt.FAILED, node="")
                self.resilience.record(
                    now, UPSTREAM_CANCELLED, dep.label, "",
                    detail=f"producer {task.label} failed terminally",
                )
                victims.append(dep)
        return victims

    # ------------------------------------------------------------------
    # Crash consistency / lineage recovery
    # ------------------------------------------------------------------
    def future_slots(self, task: TaskInvocation) -> List[Future]:
        """The future objects fed by ``task`` (lineage invalidation)."""
        return self._futures.get(task.task_id, [])

    def recover_lost_data(self, node: str) -> List[str]:
        """Node loss: invalidate resident data, re-run the minimal lineage.

        Returns the labels of the destroyed data versions (see
        :func:`repro.runtime.checkpoint.recover_lost_data`).
        """
        with self.lock:
            return ckpt.recover_lost_data(self, node)

    def resume_stats(self) -> Optional[Dict[str, Any]]:
        """Journal-replay summary for resumed sessions (else ``None``).

        In service mode the calling thread's study scope selects which
        study's recovery is summarised.
        """
        session: Optional[ckpt.StudySession] = getattr(
            self._study_local, "session", None
        )
        recovery = session.recovery if session is not None else self.recovery
        if recovery is None:
            return None
        stats = recovery.summary()
        stats["restored_this_session"] = recovery.restored
        return stats

    # ------------------------------------------------------------------
    # Multi-tenant study sessions (service mode)
    # ------------------------------------------------------------------
    def open_study(
        self,
        study_id: str,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        *,
        priority: int = 0,
        weight: float = 1.0,
        tenant: str = "",
        max_tenant_slots: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> ckpt.StudySession:
        """Open a fault-isolated session for one tenant study.

        The session bundles a task keyer salted with ``study_id`` (so two
        studies running the identical space never share task keys), its
        own write-ahead journal and checkpoint store under
        ``checkpoint_dir``, and — when that directory already holds a
        journal from a previous daemon life — a recovery manager that
        replays it, giving the study exactly-once resumption after a
        whole-daemon crash.  The study is also registered with the
        dispatch engine as a fair-share lane (``priority``/``weight``)
        under the tenant's slot quota.
        """
        if not study_id:
            raise ValueError("study_id must be non-empty")
        if study_id in self._sessions:
            raise ValueError(f"study {study_id!r} is already open")
        keyer = ckpt.TaskKeyer(namespace=study_id)
        journal: Optional[ckpt.WriteAheadJournal] = None
        store: Optional[ckpt.CheckpointStore] = None
        recovery: Optional[ckpt.RecoveryManager] = None
        if checkpoint_dir is not None:
            ckpt_path = Path(checkpoint_dir)
            if (ckpt_path / ckpt.JOURNAL_FILE).exists():
                # A journal from a previous daemon life: replay it so the
                # completed prefix restores instead of re-executing.
                recovery = ckpt.RecoveryManager(ckpt_path, log=self.resilience)
            journal = ckpt.WriteAheadJournal(
                ckpt_path / ckpt.JOURNAL_FILE,
                fsync=self.config.journal_fsync,
                buffer_records=self.config.journal_buffer_records,
            )
            store = ckpt.CheckpointStore(
                ckpt_path / ckpt.OUTPUTS_DIR,
                cadence=(
                    checkpoint_every if checkpoint_every is not None
                    else self.config.checkpoint_every
                ),
            )
            journal.open_session(
                cluster=self.cluster.name, resumed=recovery is not None,
            )
        session = ckpt.StudySession(
            study_id, keyer=keyer, journal=journal,
            checkpoint_store=store, recovery=recovery, tenant=tenant,
        )
        with self.lock:
            self._sessions[study_id] = session
            # Under the runtime lock: the dispatch engine's share table is
            # also read by scheduling rounds, which run under this lock.
            self.dispatcher.register_study(
                study_id, priority=priority, weight=weight,
                tenant=tenant, max_tenant_slots=max_tenant_slots,
            )
        return session

    def close_study(self, study_id: str) -> None:
        """Close a study session: flush its journal, drop its share lane."""
        with self.lock:
            session = self._sessions.pop(study_id, None)
            self.dispatcher.unregister_study(study_id)
        if session is not None:
            session.close()

    def study_session(self, study_id: str) -> Optional[ckpt.StudySession]:
        """The open session for ``study_id`` (None when unknown)."""
        return self._sessions.get(study_id)

    def preempt_spill_dir(self) -> Optional[Path]:
        """Directory for suspend spills in the calling thread's scope.

        Lives beside the checkpoint store's outputs directory (per-study
        in service mode, global otherwise) so suspend spills inherit the
        same crash-safety story and survive daemon generations at a
        stable path.  ``None`` — preemption disabled — when no checkpoint
        directory is configured, since warm suspension without a durable
        spill target would silently be a cold restart.
        """
        session = getattr(self._study_local, "session", None)
        store = (
            session.checkpoint_store if session is not None
            else self.checkpoint_store
        )
        if store is None:
            return None
        return store.directory.parent / "preempt"

    @contextmanager
    def study_scope(self, session: ckpt.StudySession) -> Iterator[None]:
        """Route this thread's submissions through ``session``.

        Worker threads of the service daemon wrap each study's runner in
        this scope; everything the study submits is keyed, journaled and
        restored against the study's namespace, while other threads (and
        session-less callers) are untouched.
        """
        previous = getattr(self._study_local, "session", None)
        self._study_local.session = session
        try:
            yield
        finally:
            self._study_local.session = previous

    def abandon_study(
        self, study_id: str, reason: str = "", kind: str = STUDY_FAILED
    ) -> int:
        """Terminate one study, leaving every other tenant untouched.

        Fails all of the study's unfinished tasks with
        :class:`StudyAbandonedError` (terminal — never retried), journals
        the failures into the study's own journal, tombstones its queued
        entries in the dispatch engine, and records one ``study_failed``
        resilience event (``kind`` selects ``study_cancelled`` for
        tenant-initiated cancellation).  Running attempts of the study
        resolve quietly: the executors' completion paths discard results
        for tasks that are no longer RUNNING.  Returns the number of
        tasks cancelled.
        """
        now = self.executor.clock()
        victims: List[TaskInvocation] = []
        with self.lock:
            for task in self.graph.tasks():
                if task.study != study_id:
                    continue
                if task.state in (TaskState.DONE, TaskState.FAILED):
                    continue
                exc = StudyAbandonedError(task.label, study_id, reason)
                task.attempt_history.append(f"study abandoned: {exc}")
                task.state = TaskState.FAILED
                task.error = exc
                self.journal_task_event(task, ckpt.FAILED, node="")
                victims.append(task)
            self.dispatcher.purge(victims)
        self.resilience.record(
            now, kind, detail=f"study={study_id} reason={reason} "
            f"cancelled={len(victims)}",
        )
        # Wake any waiter blocked on the study's tasks so the study's
        # worker thread observes the terminal failures promptly.
        self.executor.notify_task_resolutions()
        return len(victims)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def wait_on(self, obj: Any) -> Any:
        """Resolve futures inside ``obj`` (scalar, list, tuple, dict, nested).

        Blocks (in real or virtual time) until the producing tasks are
        done, then returns ``obj`` with futures replaced by values.
        """
        futures: List[Future] = []
        self._collect_futures(obj, futures)
        tasks = sorted({f.invocation for f in futures}, key=lambda t: t.task_id)
        if tasks:
            self._wait_verified(tasks)
            self.sync_points.append(
                (len(self.sync_points) + 1, [t.task_id for t in tasks])
            )
        return self._substitute(obj)

    def _wait_verified(self, tasks: List[TaskInvocation]) -> None:
        """Wait for ``tasks``, then verify what the driver is about to read.

        A corrupt output that cannot be repaired from a replica sends its
        writer back through the lineage machinery and the wait repeats;
        the loop is bounded so persistent corruption (e.g. a deterministic
        injector that re-corrupts every attempt) fails loudly instead of
        spinning forever.
        """
        self.executor.wait_for(tasks)
        if self.integrity is None:
            return
        for _ in range(25):
            bad: List[TaskInvocation] = []
            with self.lock:
                for task in tasks:
                    versions = self.access.versions_written_by(task)
                    if not versions:
                        continue
                    outcome = self.integrity.verify_writer(task, versions)
                    if not outcome.ok:
                        bad.append(task)
                if bad:
                    igr.recover_corrupt_versions(self, bad)
            if not bad:
                return
            self.executor.notify_topology_change()
            self.executor.wait_for(tasks)
        raise igr.IntegrityError(
            "corrupt outputs persisted after 25 repair rounds: "
            + ", ".join(t.label for t in bad)
        )

    def barrier(self) -> None:
        """Wait for every submitted task to complete."""
        unfinished = self.graph.unfinished()
        if unfinished:
            self.executor.wait_for(unfinished)

    @classmethod
    def _collect_futures(cls, obj: Any, out: List[Future]) -> None:
        if is_future(obj):
            out.append(obj)
        elif isinstance(obj, (list, tuple, set)):
            for item in obj:
                cls._collect_futures(item, out)
        elif isinstance(obj, dict):
            for item in obj.values():
                cls._collect_futures(item, out)

    @classmethod
    def _substitute(cls, obj: Any) -> Any:
        if is_future(obj):
            return obj.result()
        if isinstance(obj, list):
            return [cls._substitute(i) for i in obj]
        if isinstance(obj, tuple):
            return tuple(cls._substitute(i) for i in obj)
        if isinstance(obj, set):
            return {cls._substitute(i) for i in obj}
        if isinstance(obj, dict):
            return {k: cls._substitute(v) for k, v in obj.items()}
        return obj

    # ------------------------------------------------------------------
    # Elasticity (paper §3: "grids, clusters, clouds")
    # ------------------------------------------------------------------
    def add_node(self, spec) -> None:
        """Grow the cluster mid-run; waiting tasks dispatch onto it."""
        self.pool.add_worker(spec)
        _log.info("node %s added to the pool", spec.name)
        # Kick the executor so queued work can use the new capacity (the
        # dispatch engine buffered the wake via the pool's listener).
        self.executor.notify_topology_change()

    def remove_node(self, name: str) -> None:
        """Stop placing new tasks on ``name`` (running ones finish)."""
        self.pool.remove_worker(name)
        _log.info("node %s drained from the pool", name)

    def drain_node(self, name: str, deadline_s: Optional[float] = None) -> None:
        """Gracefully drain ``name``: spill its resident data, finish its
        running tasks, accept no new placements, then retire it cleanly.

        At ``deadline_s`` (default ``config.drain_deadline_s``) an
        incomplete drain escalates to a node failure so lineage recovery
        takes over.
        """
        worker = self.pool.workers.get(name)
        if worker is None:
            raise ValueError(f"unknown node {name!r}")
        deadline = (
            deadline_s if deadline_s is not None
            else self.config.drain_deadline_s
        )
        if deadline <= 0:
            raise ValueError(f"drain deadline must be > 0, got {deadline}")
        if not worker.available:
            return  # already draining or down
        spilled = self._spill_node_data(name)
        self.pool.drain_worker(name)
        # Suspend-not-recompute: flag the node's resident preemptible
        # trials so they spill warm at their next checkpoint epoch and
        # resume elsewhere, instead of losing in-flight epochs to lineage
        # recompute when the deadline kills them.
        suspended = self.preemption.suspend_node(name, reason="drain")
        self.resilience.record(
            self.executor.clock(), NODE_DRAINING, node=name,
            detail=f"deadline_s={deadline:g} spilled={spilled}"
            + (f" suspended={suspended}" if suspended else ""),
        )
        self.executor.drain_node(name, deadline)

    def pause_study_dispatch(self, study_id: str) -> bool:
        """Stop placing a study's queued tasks (suspend-in-progress)."""
        with self.lock:
            return self.dispatcher.pause_study(study_id)

    def resume_study_dispatch(self, study_id: str) -> bool:
        """Re-enable a paused study's placements and wake the scheduler
        (a paused lane generates no completion events, so without the
        nudge its queued tasks would wait for an unrelated one)."""
        with self.lock:
            resumed = self.dispatcher.resume_study(study_id)
        if resumed:
            self.executor.notify_topology_change()
        return resumed

    def finish_drain(self, name: str) -> None:
        """Complete a drain: final spill pass, then retire the node.

        Called by the executor when the node's last running attempt
        finishes (or immediately for an idle node).
        """
        worker = self.pool.workers.get(name)
        if worker is None or not worker.draining:
            return
        spilled = self._spill_node_data(name)
        self.pool.retire_worker(name)
        self.resilience.record(
            self.executor.clock(), DRAIN_COMPLETE, node=name,
            detail=f"spilled={spilled}",
        )

    def recover_node(self, name: str) -> None:
        """Elastically rejoin a previously lost or retired node.

        The node comes back with all slots free, is re-seeded as a
        replica target for under-replicated data versions, and blocked
        (even starved) constraint classes are woken so queued tasks can
        place on it.
        """
        worker = self.pool.workers.get(name)
        if worker is None:
            raise ValueError(f"unknown node {name!r}")
        if worker.available or worker.draining:
            # Draining nodes may still have attempts in flight — resetting
            # their slots would corrupt the allocation accounting.  They
            # retire (or fail) first, and can rejoin afterwards.
            return
        self.pool.recover_node(name)
        reseeded = 0
        if self.integrity is not None:
            reseeded = self.integrity.reseed_node(name)
        self.resilience.record(
            self.executor.clock(), NODE_REJOINED, node=name,
            detail=f"reseeded={reseeded}" if reseeded else "",
        )
        self.executor.notify_topology_change()

    def _spill_node_data(self, node: str) -> int:
        """Persist data resident on ``node`` before it goes away.

        Two mechanisms, both best-effort: every DONE output produced on
        the node is spilled to the checkpoint store (when configured, and
        regardless of the spill cadence), and the simulated integrity
        manager copies the node's only-good copies onto other up nodes.
        Returns the number of task outputs protected.
        """
        protected = 0
        with self.lock:
            if self.checkpoint_store is not None or self._sessions:
                done_here = [
                    t for t in self.graph.tasks()
                    if t.state == TaskState.DONE and t.node == node
                ]
                for task in done_here:
                    session = (
                        self._sessions.get(task.study) if task.study else None
                    )
                    store = (
                        session.checkpoint_store if session is not None
                        else self.checkpoint_store
                    )
                    if (
                        store is not None
                        and task.task_key is not None
                        and store.save(task.task_key, task.result)
                    ):
                        protected += 1
            if self.integrity is not None:
                targets = [
                    w.name
                    for w in self.pool.workers.values()
                    if w.available and w.name != node
                ]
                protected += self.integrity.evacuate(node, targets)
        return protected

    # ------------------------------------------------------------------
    # Introspection / artefacts
    # ------------------------------------------------------------------
    def analysis(self) -> TraceAnalysis:
        """Trace analysis over everything recorded so far."""
        return TraceAnalysis(self.tracer, self.resilience, self.dispatcher.stats)

    def render_graph(self) -> str:
        """DOT text of the current task graph (Fig. 3)."""
        return render_dot(self.graph, self.sync_points)

    def export_graph(self, path) -> None:
        """Write the DOT graph to ``path``."""
        export_dot(self.graph, path, self.sync_points)

    @property
    def virtual_time(self) -> Optional[float]:
        """Current virtual time for simulated runs (None for local)."""
        if isinstance(self.executor, SimulatedExecutor):
            return self.executor.now
        return None
