"""Crash-consistent durability: write-ahead journal, checkpoint store, recovery.

PR 1's resilience stack covers *transient* failures — a task that dies is
retried, a flaky node is quarantined.  This module covers *hard* failures:
the driver process is SIGKILLed, or a node is lost together with the data
versions it held.  Three cooperating pieces:

* :class:`WriteAheadJournal` — an append-only JSONL file with one record
  per task lifecycle transition (``submitted`` / ``started`` /
  ``completed`` / ``failed``), fsync'd on commit records so a crash can
  lose at most the in-flight tail.  Tasks are keyed by
  :class:`TaskKeyer`'s deterministic ids (task name + parameter digest +
  occurrence index), which are stable across processes — re-running the
  same driver program regenerates the same keys in the same order.
* :class:`CheckpointStore` — spills completed task outputs to disk
  (pickle) at a configurable cadence (every task / every N / off), so a
  journaled-complete task can be *restored* instead of re-executed.
* :class:`RecoveryManager` — on restart, replays the journal (tolerating
  a torn final record from a mid-write crash), and answers "was this key
  already completed, and is its output restorable?".  The runtime uses it
  to mark the replayed prefix done with exactly-once semantics and
  re-submit only the un-done frontier.

The same module hosts :func:`recover_lost_data`, the lineage-based data
recovery used when a *node* (not the driver) is lost mid-run: data
versions resident on the node are invalidated and the minimal ancestor
set that re-materialises them is re-executed (Hippo-style suffix replay:
ancestors whose outputs survive — in memory on healthy nodes or in the
checkpoint store — are not re-run).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import threading
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
    TYPE_CHECKING,
)

from repro.runtime.future import is_future
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.util.logging_utils import get_logger
from repro.util.validation import check_one_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.resilience import ResilienceLog
    from repro.runtime.runtime import COMPSsRuntime

_log = get_logger("runtime.checkpoint")

#: Journal record kinds (one per task lifecycle transition, plus session
#: markers so replay can tell which process wrote which records).
SUBMITTED = "submitted"
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"
SESSION = "session"

RECORD_KINDS = (SUBMITTED, STARTED, COMPLETED, FAILED, SESSION)

#: Journal file name inside a checkpoint directory.
JOURNAL_FILE = "journal.jsonl"
#: Sub-directory holding spilled task outputs.
OUTPUTS_DIR = "outputs"

_MISSING = object()


def sidecar_digest(payload: bytes) -> str:
    """The sidecar digest contract: full sha256 over the pickled bytes.

    One definition shared by every sidecar writer and verifier —
    checkpoint spills, preemption spills and reuse-cache entries all use
    the identical ``<key>.sum`` format, so ``repro recover`` and
    ``repro gc`` can audit any of them with one code path.
    """
    return hashlib.sha256(payload).hexdigest()


class JournalCorruptError(RuntimeError):
    """A journal record *before* the final one failed to parse.

    A torn final record is expected (crash mid-write) and silently
    dropped; corruption earlier in the file means the journal cannot be
    trusted and replay refuses to guess.
    """


class _UnstableArgument(Exception):
    """An argument with no process-stable canonical form (content keys)."""


class CheckpointCorruptError(RuntimeError):
    """A spilled output failed its checksum or could not be unpickled.

    Recovery treats a corrupt spill exactly like a *missing* one — the
    task re-executes — so a bit-flip on disk degrades to recompute
    instead of a crash (or worse, a silently wrong restored value).
    """


# ----------------------------------------------------------------------
# Deterministic task keys
# ----------------------------------------------------------------------
class TaskKeyer:
    """Assigns process-independent keys to task invocations.

    A key is ``sha1(name | param-digest | occurrence)``: two runs of the
    same driver program submit the same tasks in the same order and get
    identical keys, which is what lets a resumed session match its
    submissions against the journal of a killed one.

    Futures in the arguments are digested by their *producer's key* (plus
    return slot), not their object identity, so keys are stable through
    arbitrary dependency chains.  Objects with a memory-address ``repr``
    digest unstably — their tasks simply never match the journal and are
    re-executed, which is safe (at-least-once, never wrong-result).

    ``namespace`` salts every key (multi-tenant service mode): two
    studies running the same driver program get disjoint key spaces, so
    sibling journals can never cross-restore each other's outputs.  The
    default empty namespace produces byte-identical keys to previous
    versions — existing journals stay resumable.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        # Occurrence counters keyed by a 64-bit slot derived from
        # (name, param digest) rather than the strings themselves: the
        # keyer is the one journal-path structure that must persist for
        # the whole session (a counter per *distinct* submission), and at
        # 1M tasks the string tuples retained ~270 B/task.  A slot
        # collision merely inflates the colliding task's occurrence index
        # — and deterministically so (same driver program, same hashes,
        # same collision), so keys still match across sessions.
        self._occurrences: Dict[int, int] = {}

    def key_for(self, task: TaskInvocation) -> str:
        """Compute (and memoise on the invocation) the task's key."""
        if task.task_key is not None:
            return task.task_key
        digest = self._params_digest(task.args, task.kwargs)
        raw = f"{task.definition.name}|{digest}"
        if self.namespace:
            raw = f"{self.namespace}::{raw}"
        slot = int.from_bytes(
            hashlib.sha1(raw.encode("utf-8")).digest()[:8], "big"
        )
        occurrence = self._occurrences.get(slot, 0)
        self._occurrences[slot] = occurrence + 1
        task.task_key = hashlib.sha1(
            f"{raw}|{occurrence}".encode("utf-8")
        ).hexdigest()[:16]
        return task.task_key

    def content_key_for(self, task: TaskInvocation) -> Optional[str]:
        """Pure content identity of ``task`` — or ``None`` if it has none.

        Where :meth:`key_for` answers "which submission of which study is
        this?" (namespace-salted, occurrence-indexed — the journal-replay
        identity), the content key answers "what value would this task
        compute?": ``sha1(qualified-name | param-digest)`` with no
        namespace and no occurrence, so identical stage invocations
        across trials, studies and ``repro serve`` tenants collapse onto
        one reuse-cache entry.  The qualified function name (module +
        qualname, not just the decorator name) keys the *code*, so two
        unrelated functions sharing a task name can never cross-restore.

        Only declared-deterministic tasks participate
        (``TaskDefinition.cacheable``), and only arguments with a stable
        canonical form: primitives, containers thereof, and futures of
        cacheable producers (digested by the producer's content key, so
        a stage chain's key pins its whole prefix).  Anything else —
        an arbitrary object whose ``repr`` may embed a memory address, a
        future of a non-cacheable task — returns ``None``: an
        address-based form could *collide* across processes (same
        address, different value), and a shared cache must never trade
        correctness for a hit.  ``None`` just means "compute it".
        """
        if task.content_key is not None:
            return task.content_key
        definition = task.definition
        if not definition.cacheable:
            return None
        try:
            h = hashlib.sha1()
            for a in task.args:
                h.update(self._canonical_content(a).encode("utf-8", "replace"))
                h.update(b"\x00")
            for k in sorted(task.kwargs):
                h.update(k.encode("utf-8"))
                h.update(b"=")
                h.update(
                    self._canonical_content(task.kwargs[k]).encode(
                        "utf-8", "replace"
                    )
                )
                h.update(b"\x00")
        except _UnstableArgument:
            return None
        func = definition.func
        qualified = (
            f"{getattr(func, '__module__', '')}."
            f"{getattr(func, '__qualname__', definition.name)}"
        )
        raw = f"{qualified}|{definition.name}|{h.hexdigest()}"
        task.content_key = hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]
        return task.content_key

    def _canonical_content(self, obj: Any) -> str:
        """Like :meth:`_canonical`, but refuses unstable forms."""
        if is_future(obj):
            producer = obj.invocation
            key = self.content_key_for(producer)
            if key is None:
                raise _UnstableArgument(
                    f"future of non-cacheable task {producer.label}"
                )
            return f"<fut:{key}:{obj.index}>"
        if isinstance(obj, Mapping):
            inner = ",".join(
                f"{self._canonical_content(k)}:{self._canonical_content(obj[k])}"
                for k in sorted(obj, key=repr)
            )
            return "{" + inner + "}"
        if isinstance(obj, (list, tuple)):
            inner = ",".join(self._canonical_content(i) for i in obj)
            return ("[" if isinstance(obj, list) else "(") + inner
        if isinstance(obj, (set, frozenset)):
            return "{" + ",".join(
                sorted(self._canonical_content(i) for i in obj)
            ) + "}"
        if isinstance(obj, (int, float, complex, bool, str, bytes, type(None))):
            return repr(obj)
        raise _UnstableArgument(
            f"{type(obj).__name__} has no stable canonical form"
        )

    def _params_digest(self, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> str:
        h = hashlib.sha1()
        for a in args:
            h.update(self._canonical(a).encode("utf-8", "replace"))
            h.update(b"\x00")
        for k in sorted(kwargs):
            h.update(k.encode("utf-8"))
            h.update(b"=")
            h.update(self._canonical(kwargs[k]).encode("utf-8", "replace"))
            h.update(b"\x00")
        return h.hexdigest()

    def _canonical(self, obj: Any) -> str:
        """Stable textual form of one argument (recursive, bounded)."""
        if is_future(obj):
            producer = obj.invocation
            key = producer.task_key or self.key_for(producer)
            return f"<fut:{key}:{obj.index}>"
        if isinstance(obj, Mapping):
            inner = ",".join(
                f"{self._canonical(k)}:{self._canonical(obj[k])}"
                for k in sorted(obj, key=repr)
            )
            return "{" + inner + "}"
        if isinstance(obj, (list, tuple)):
            inner = ",".join(self._canonical(i) for i in obj)
            return ("[" if isinstance(obj, list) else "(") + inner
        if isinstance(obj, (set, frozenset)):
            return "{" + ",".join(sorted(self._canonical(i) for i in obj)) + "}"
        if isinstance(obj, (int, float, complex, bool, str, bytes, type(None))):
            return repr(obj)
        # Arbitrary object: type plus repr, truncated so huge arrays don't
        # dominate hashing time.  Address-bearing default reprs make the
        # key unstable, which degrades to re-execution, never corruption.
        return f"<{type(obj).__name__}:{repr(obj)[:256]}>"


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------
class WriteAheadJournal:
    """Append-only JSONL journal of task lifecycle transitions.

    Parameters
    ----------
    path:
        Journal file; created (with parents) if missing, appended to if
        present — a resumed session continues the same journal, separated
        by a ``session`` marker record.
    fsync:
        ``"always"`` — fsync after every record; ``"commit"`` (default) —
        fsync after ``completed``/``failed`` records only (losing a
        ``submitted``/``started`` tail is harmless: the resumed driver
        re-submits deterministically); ``"off"`` — leave flushing to the
        OS (tests / throwaway runs).
    buffer_records:
        Serialised records accumulate in a bounded in-memory buffer and
        hit the file every this-many records — and always before an
        fsync point and on close.  Durability is unchanged (an fsync
        point flushes the buffer first); only non-durable tail records
        can sit in memory, exactly the ones the policy already allowed
        the OS to lose.
    """

    FSYNC_MODES = ("always", "commit", "off")

    def __init__(
        self,
        path: Union[str, Path],
        fsync: str = "commit",
        buffer_records: int = 256,
    ):
        check_one_of("fsync", fsync, list(self.FSYNC_MODES))
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[io.TextIOWrapper] = open(  # noqa: SIM115 - long-lived
            self.path, "a", encoding="utf-8"
        )
        self._seq = 0
        self._buffer: List[str] = []
        self._buffer_limit = max(1, int(buffer_records))
        # submit() (main thread) and completions (worker threads) both
        # append; a lock keeps records whole on the wire.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def append(self, kind: str, key: str = "", **fields: Any) -> None:
        """Buffer one record (flush + fsync according to the policy)."""
        with self._lock:
            if self._fh is None:
                return
            self._seq += 1
            record = {"rec": kind, "key": key, "seq": self._seq, **fields}
            self._buffer.append(json.dumps(record, sort_keys=True))
            if self.fsync == "always" or (
                self.fsync == "commit" and kind in (COMPLETED, FAILED, SESSION)
            ):
                self._flush_locked(sync=True)
            elif len(self._buffer) >= self._buffer_limit:
                self._flush_locked(sync=False)

    def _flush_locked(self, sync: bool) -> None:
        """Drain the buffer to the file; optionally fsync.  Lock held."""
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        if sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def open_session(self, **fields: Any) -> None:
        """Mark the start of one driver process in the journal."""
        self.append(SESSION, pid=os.getpid(), **fields)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                if self._buffer:
                    self._fh.write("\n".join(self._buffer) + "\n")
                    self._buffer.clear()
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:  # pragma: no cover - closed/odd fds
                    pass
                self._fh.close()
                self._fh = None

    # ------------------------------------------------------------------
    @staticmethod
    def replay(
        path: Union[str, Path],
        log: Optional["ResilienceLog"] = None,
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Read all records, tolerating a torn/corrupt *final* record.

        Returns ``(records, truncated)``.  A final line that does not
        parse (crash mid-write) is dropped and — when ``log`` is given —
        recorded as a ``journal_truncated``
        :class:`~repro.runtime.resilience.ResilienceEvent`.  A bad record
        anywhere *else* raises :class:`JournalCorruptError`.
        """
        path = Path(path)
        records: List[Dict[str, Any]] = []
        bad: List[int] = []
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        # A well-formed journal ends with a newline, leaving one empty
        # trailing chunk; anything after the last newline is a torn tail.
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "rec" not in record:
                    raise ValueError("not a journal record")
            except (ValueError, UnicodeDecodeError):
                bad.append(lineno)
                continue
            if bad:
                # A parseable record AFTER a bad one: the bad line was
                # not a torn tail but mid-file corruption.
                raise JournalCorruptError(
                    f"{path}: unparseable journal record at line {bad[0]} "
                    "followed by valid records"
                )
            records.append(record)
        truncated = bool(bad)
        if truncated:
            _log.warning(
                "journal %s: dropped torn final record (line %d)", path, bad[0]
            )
            if log is not None:
                from repro.runtime import resilience as rsl

                log.record(
                    0.0, rsl.JOURNAL_TRUNCATED,
                    detail=f"dropped torn record at line {bad[0]} of {path.name}",
                )
        return records, truncated


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class CheckpointStore:
    """On-disk store of completed task outputs, keyed by task key.

    ``cadence`` controls spilling: ``1`` spills every completion,
    ``N > 1`` every Nth completion, ``None`` disables spilling (journal
    only — resume then re-executes everything, but still knows exactly
    what was done).  Writes are atomic (temp file + rename) so a crash
    mid-spill never leaves a half-written output that replay would trust,
    and each spill gets a ``<key>.sum`` sha256 sidecar so a later load
    can prove the bytes are the ones that were written (bit-rot, torn
    disks, manual tampering).  Spills from older versions without a
    sidecar stay loadable — they are verified by unpickling alone.
    """

    def __init__(self, directory: Union[str, Path], cadence: Optional[int] = 1):
        if cadence is not None and cadence < 1:
            raise ValueError(f"cadence must be >= 1 or None, got {cadence}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cadence = cadence
        self._completions = 0
        #: Keys spilled (or found on disk) this session.
        self.spilled = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def _sum_path(self, key: str) -> Path:
        return self.directory / f"{key}.sum"

    def should_spill(self) -> bool:
        """Cadence decision for the next completion (counts the call)."""
        if self.cadence is None:
            return False
        self._completions += 1
        return self._completions % self.cadence == 0

    def save(self, key: str, value: Any, overwrite: bool = False) -> bool:
        """Atomically persist ``value``; False if it cannot be pickled.

        The payload is serialised once, its sha256 recorded in a
        ``<key>.sum`` sidecar (also written atomically, after the data
        file — a crash between the two leaves a sidecar-less spill,
        which loads via the unpickle-only legacy path).  ``overwrite``
        replaces an existing spill (suspend spills of the same trial
        supersede each other as training advances); without it an
        existing spill is kept — task outputs are immutable.
        """
        target = self._path(key)
        if target.exists() and not overwrite:
            return True
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            _log.warning("output of %s not checkpointable: %s", key, exc)
            return False
        tmp = target.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        sum_tmp = target.with_suffix(".sumtmp")
        with open(sum_tmp, "w", encoding="ascii") as fh:
            fh.write(sidecar_digest(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(sum_tmp, self._sum_path(key))
        self.spilled += 1
        return True

    def has(self, key: str) -> bool:
        return self._path(key).exists()

    def remove(self, key: str) -> None:
        """Drop one spill and its sidecar (idempotent)."""
        for path in (self._path(key), self._sum_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def load(self, key: str) -> Any:
        """The stored output for ``key`` (raises FileNotFoundError if absent)."""
        with open(self._path(key), "rb") as fh:
            return pickle.load(fh)

    def load_verified(self, key: str) -> Any:
        """Load ``key`` after proving its bytes match the ``.sum`` sidecar.

        Raises :class:`CheckpointCorruptError` on a digest mismatch or
        any unpickle failure (truncated file, flipped bytes inside a
        still-parseable stream, sidecar-less legacy spill that no longer
        parses); ``FileNotFoundError`` if the spill is absent.
        """
        with open(self._path(key), "rb") as fh:
            payload = fh.read()
        sum_path = self._sum_path(key)
        if sum_path.exists():
            expected = sum_path.read_text(encoding="ascii").strip()
            actual = sidecar_digest(payload)
            if actual != expected:
                raise CheckpointCorruptError(
                    f"spill {key}: sha256 {actual[:16]}… does not match "
                    f"recorded {expected[:16]}…"
                )
        try:
            return pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure is corruption
            raise CheckpointCorruptError(
                f"spill {key}: unreadable pickle ({exc!r})"
            ) from exc

    def verify(self, key: str) -> str:
        """Integrity state of one spill: ``"ok"`` / ``"corrupt"`` / ``"missing"``."""
        if not self._path(key).exists():
            return "missing"
        try:
            self.load_verified(key)
        except CheckpointCorruptError:
            return "corrupt"
        except OSError:
            return "missing"
        return "ok"

    def verify_spills(self, keys) -> Dict[str, int]:
        """``{"ok": n, "corrupt": n, "missing": n}`` over ``keys``."""
        counts = {"ok": 0, "corrupt": 0, "missing": 0}
        for key in keys:
            counts[self.verify(key)] += 1
        return counts

    def keys_on_disk(self) -> List[str]:
        """Every key with a spill file in this store (sorted)."""
        return sorted(p.stem for p in self.directory.glob("*.pkl"))

    def sweep_orphans(
        self,
        referenced: Set[str],
        protected: Optional[Set[str]] = None,
        dry_run: bool = False,
    ) -> Dict[str, Any]:
        """Drop spills no journal record references (``repro gc``).

        A spill is *orphaned* when its key appears in neither
        ``referenced`` (keys with any journal record — completed spills
        a resume may restore, suspend spills a parked study may warm-
        resume) nor ``protected`` (keys pinned by an active lease or a
        live session).  Abandoned and superseded studies leave exactly
        such unreferenced spills behind forever; this reclaims them.
        Stray ``.tmp``/``.sumtmp`` files (a writer SIGKILLed mid-publish)
        are always swept — the atomic-rename protocol guarantees no
        reader ever trusted them.  ``dry_run`` reports without deleting.
        """
        protected = protected or set()
        orphans: List[str] = []
        freed = 0
        for path in sorted(self.directory.glob("*.pkl")):
            key = path.stem
            if key in referenced or key in protected:
                continue
            orphans.append(key)
            for victim in (path, self._sum_path(key)):
                try:
                    freed += victim.stat().st_size
                except OSError:
                    continue
                if not dry_run:
                    try:
                        victim.unlink()
                    except OSError:
                        pass
        torn = 0
        for pattern in ("*.tmp", "*.sumtmp"):
            for path in self.directory.glob(pattern):
                torn += 1
                try:
                    freed += path.stat().st_size
                except OSError:
                    pass
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return {
            "orphans": len(orphans),
            "orphan_keys": orphans,
            "torn_temps": torn,
            "freed_bytes": freed,
            "dry_run": dry_run,
        }


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
class RecoveryManager:
    """Replays a journal and answers restore queries for a new session.

    Parameters
    ----------
    checkpoint_dir:
        Directory holding ``journal.jsonl`` and ``outputs/``.
    log:
        Optional resilience log receiving ``journal_truncated`` events.
    """

    def __init__(
        self,
        checkpoint_dir: Union[str, Path],
        log: Optional["ResilienceLog"] = None,
    ):
        self.checkpoint_dir = Path(checkpoint_dir)
        self.log = log
        self.store = CheckpointStore(self.checkpoint_dir / OUTPUTS_DIR, cadence=None)
        journal_path = self.checkpoint_dir / JOURNAL_FILE
        self.truncated = False
        self.records: List[Dict[str, Any]] = []
        if journal_path.exists():
            self.records, self.truncated = WriteAheadJournal.replay(
                journal_path, log
            )
        #: key -> last known lifecycle state across all sessions.
        self.states: Dict[str, str] = {}
        #: Keys with a ``completed`` record (the replayed prefix).
        self.completed_keys: Set[str] = set()
        self.sessions = 0
        for record in self.records:
            kind = record.get("rec")
            if kind == SESSION:
                self.sessions += 1
                continue
            key = record.get("key", "")
            if not key:
                continue
            self.states[key] = kind
            if kind == COMPLETED:
                self.completed_keys.add(key)
        #: Keys restored into the new session so far (runtime increments).
        self.restored = 0

    def restorable(self, key: str) -> bool:
        """Whether ``key`` is journaled-complete with a stored output."""
        return key in self.completed_keys and self.store.has(key)

    def restored_result(self, key: str) -> Any:
        """The stored output for a restorable key, else ``_MISSING``.

        Spills are checksum-verified on load: a truncated or bit-flipped
        file is treated as *missing* (the task re-executes, and the
        corruption surfaces as a ``data_corrupt`` resilience event) —
        never as a crash, never as a silently wrong value.
        """
        if not self.restorable(key):
            return _MISSING
        try:
            value = self.store.load_verified(key)
        except CheckpointCorruptError as exc:
            _log.warning("checkpoint of %s corrupt (%s); re-executing", key, exc)
            if self.log is not None:
                from repro.runtime import resilience as rsl

                self.log.record(0.0, rsl.DATA_CORRUPT, detail=str(exc))
            return _MISSING
        except OSError as exc:
            _log.warning("checkpoint of %s unreadable (%s); re-executing", key, exc)
            return _MISSING
        self.restored += 1
        return value

    def frontier(self) -> List[str]:
        """Keys journaled as submitted/started but never completed."""
        return [
            key for key, state in self.states.items()
            if state not in (COMPLETED,)
        ]

    def summary(self) -> Dict[str, Any]:
        """Machine-readable replay summary (CLI ``recover`` command)."""
        kinds: Dict[str, int] = {}
        for record in self.records:
            kinds[record.get("rec", "?")] = kinds.get(record.get("rec", "?"), 0) + 1
        spills = self.store.verify_spills(sorted(self.completed_keys))
        return {
            "journal": str(self.checkpoint_dir / JOURNAL_FILE),
            "records": len(self.records),
            "sessions": self.sessions,
            "record_kinds": kinds,
            "tasks_seen": len(self.states),
            "completed": len(self.completed_keys),
            "restorable": spills["ok"],
            "spill_integrity": spills,
            "frontier": len(self.frontier()),
            "truncated_tail": self.truncated,
        }


# ----------------------------------------------------------------------
# Per-study durability namespace (multi-tenant service mode)
# ----------------------------------------------------------------------
class StudySession:
    """One study's namespaced durability bundle inside a shared runtime.

    The single-study runtime owns one keyer/journal/store/recovery
    quartet; a multi-tenant service runs many studies over one runtime,
    each with its *own* quartet rooted in a per-study checkpoint
    directory.  Keys are salted with the study id (see
    :class:`TaskKeyer`), so sibling studies can never interleave journal
    records or share task keys — the fault-isolation invariant the
    service's chaos tests assert.
    """

    __slots__ = (
        "study_id", "keyer", "journal", "checkpoint_store", "recovery",
        "tenant",
    )

    def __init__(
        self,
        study_id: str,
        keyer: Optional[TaskKeyer] = None,
        journal: Optional[WriteAheadJournal] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        recovery: Optional[RecoveryManager] = None,
        tenant: str = "",
    ):
        self.study_id = study_id
        self.keyer = keyer
        self.journal = journal
        self.checkpoint_store = checkpoint_store
        self.recovery = recovery
        self.tenant = tenant

    def close(self) -> None:
        """Flush and close the study's journal (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StudySession {self.study_id!r} tenant={self.tenant!r}>"


# ----------------------------------------------------------------------
# Lineage-based data recovery (node loss)
# ----------------------------------------------------------------------
def recover_lost_data(runtime: "COMPSsRuntime", node: str) -> List[str]:
    """Invalidate data versions lost with ``node``; re-run their lineage.

    Completed tasks whose results were resident on ``node`` (produced
    there and still needed by a not-yet-done consumer) lose their data.
    Each such task is re-executed — unless its output survives in the
    checkpoint store, in which case it is restored from disk for free.
    The re-execution set is *minimal*: an ancestor re-runs only if its
    own output was also destroyed (it too ran on the lost node and is
    needed to rebuild a descendant); ancestors whose outputs survive on
    healthy nodes are left alone.

    Returns the labels of the destroyed data versions (``d3v2``-style),
    which the caller records on the ``node_lost`` resilience event.
    """
    graph = runtime.graph
    done_on_node = [
        t for t in graph.tasks()
        if t.state == TaskState.DONE and t.node == node
    ]
    if not done_on_node:
        return []

    # Outputs that survive on disk are not "resident on the node" — but a
    # spill only counts as surviving if it passes verification; trusting
    # a corrupt spill here would skip the recompute AND restore garbage.
    store = runtime.checkpoint_store
    survives = {
        t.task_id
        for t in done_on_node
        if store is not None
        and t.task_key is not None
        and store.verify(t.task_key) == "ok"
    }
    destroyed = {t.task_id: t for t in done_on_node if t.task_id not in survives}
    if not destroyed:
        return []

    # Seed: destroyed tasks whose output is still needed downstream.
    needed = [
        t for t in destroyed.values()
        if any(s.state != TaskState.DONE for s in graph.successors(t))
    ]
    # Minimal ancestor closure: a predecessor re-runs only if it was
    # destroyed too (its data is gone and a descendant needs it).
    to_rerun: Dict[int, TaskInvocation] = {}
    stack = list(needed)
    while stack:
        t = stack.pop()
        if t.task_id in to_rerun:
            continue
        to_rerun[t.task_id] = t
        for p in graph.predecessors(t):
            if p.task_id in destroyed and p.task_id not in to_rerun:
                stack.append(p)

    if not to_rerun:
        return []

    # Consumers already RUNNING would resolve destroyed inputs when their
    # body executes (the simulated executor runs bodies at completion
    # time): abort those attempts and let them re-run once their inputs
    # are re-materialised.  An executor that cannot abort (local threads
    # already hold the resolved arguments in memory) leaves them be.
    aborted: Dict[int, TaskInvocation] = {}
    for t in to_rerun.values():
        for s in graph.successors(t):
            if (
                s.state == TaskState.RUNNING
                and s.task_id not in to_rerun
                and s.task_id not in aborted
                and runtime.executor.abort_task(s)
            ):
                aborted[s.task_id] = s

    destroyed_labels = sorted(
        runtime.access.invalidate_versions_written_by(to_rerun.values())
    )
    for t in to_rerun.values():
        for fut in runtime.future_slots(t):
            fut.invalidate()
        t.result = None
        t.start_time = t.end_time = None
    batch = list(to_rerun.values()) + list(aborted.values())
    graph.invalidate(batch)
    # Entries already handed to the dispatch engine's class heaps cannot
    # be removed from the graph's ready deque above; tombstone them so a
    # scheduling round does not place a task whose inputs are gone.
    runtime.dispatcher.purge(
        [t for t in batch if t.state != TaskState.READY]
    )
    from repro.runtime import resilience as rsl

    for t in sorted(to_rerun.values(), key=lambda t: t.task_id):
        runtime.resilience.record(
            runtime.executor.clock(), rsl.LINEAGE_RECOVERY, t.label, node,
            detail=f"re-materialising {','.join(t.writes) or t.label}",
        )
    _log.info(
        "node %s lost %d data version(s); re-executing %d task(s) "
        "(+%d aborted consumer(s))",
        node, len(destroyed_labels), len(to_rerun), len(aborted),
    )
    return destroyed_labels
