"""Incremental dispatch engine — the submit→ready→place→run fast path.

The classic path re-ran the full scheduler over the *entire* waiting
queue on every submission and completion: with ``n`` waiting tasks that
is O(n) placement probes per event and O(n²) aggregate, which caps
studies at a few thousand tasks.  This engine makes dispatch incremental:

* Ready tasks are bucketed into one queue per **constraint class**
  (:meth:`~repro.runtime.task_definition.TaskDefinition.constraint_class`).
  Tasks in a class are interchangeable for *feasibility* — at any pool
  state either the head can be placed or nothing in the queue can — so a
  scheduling round probes only queue heads.
* A class that fails to place is **blocked** and stays blocked across
  rounds until an event that could change the answer: a release on a
  node the class statically fits (tracked via the pool's
  constraint-class capacity index), a topology change (node added,
  failed, or recovered), or a change in the quarantine set.  Completions
  therefore wake only the classes whose capacity actually changed.
* Policy semantics are preserved exactly: rounds place tasks in the
  scheduler's :meth:`~repro.runtime.scheduler.base.Scheduler.sort_key`
  order (a lazy merge over the per-class heaps), which is the same total
  order the batch ``Scheduler.assign`` uses.  Placement feasibility is
  preference-independent (``preferred_nodes`` only chooses *which* node,
  never *whether*), so skipping a blocked class never changes an
  assignment — only the cost of discovering it.

Tasks carrying ``failed_nodes`` (fault-tolerance resubmissions) are the
one per-task feasibility wrinkle: they may *refuse* nodes their class
would accept, so a placement failure of such a task never blocks its
class; the task is set aside for the round and retried on later rounds.

Thread-safety: capacity notifications (:meth:`on_release`,
:meth:`on_topology_change`) arrive from arbitrary threads with the pool
lock held; they only buffer into a wake set.  All queue mutation happens
in :meth:`ingest`/:meth:`schedule_round`, which executors call under the
runtime lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.runtime.fault import UnsatisfiableError
from repro.runtime.resilience import CLASS_STARVED
from repro.runtime.resources import ResourcePool
from repro.runtime.scheduler.base import Assignment, Scheduler
from repro.runtime.task_definition import TaskInvocation


@dataclass
class DispatchStats:
    """Operation counters for the fast path (asserted by the scale tests).

    ``placement_probes`` is the count that must stay O(tasks) — it was
    O(tasks²) on the classic path.
    """

    ingested: int = 0
    rounds: int = 0
    placement_probes: int = 0
    placed: int = 0
    blocked_skips: int = 0
    wakes: int = 0
    full_wakes: int = 0
    classes_starved: int = 0
    starvation_failures: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "rounds": self.rounds,
            "placement_probes": self.placement_probes,
            "placed": self.placed,
            "blocked_skips": self.blocked_skips,
            "wakes": self.wakes,
            "full_wakes": self.full_wakes,
            "classes_starved": self.classes_starved,
            "starvation_failures": self.starvation_failures,
        }


@dataclass
class _ClassQueue:
    """One constraint class: a policy-ordered heap plus its wake nodes."""

    key: Tuple
    #: Heap of (sort_key, seq, task) — policy order with FIFO tiebreak.
    heap: List[Tuple] = field(default_factory=list)
    #: Names of nodes whose idle capacity fits some candidate impl.
    nodes: FrozenSet[str] = frozenset()


class DispatchEngine:
    """Event-driven partial rescheduler shared by both executors."""

    def __init__(self, scheduler: Scheduler, pool: ResourcePool):
        self.scheduler = scheduler
        self.pool = pool
        self.stats = DispatchStats()
        #: Starvation watchdog wiring (set by the runtime after
        #: construction): executor clock, resilience log, and the hold
        #: budget before starved tasks are reaped.  ``None`` timeout
        #: disables reaping — starved classes are simply held.
        self.clock = None
        self.resilience = None
        self.starvation_timeout_s: Optional[float] = None
        #: class key -> time it first starved (every candidate node dead
        #: or draining).  The start time survives re-probes so the
        #: watchdog measures total starvation, not time-since-last-look.
        self._starved: Dict[Tuple, float] = {}
        self._classes: Dict[Tuple, _ClassQueue] = {}
        self._blocked: Set[Tuple] = set()
        #: node name -> constraint classes that statically fit on it.
        self._node_classes: Dict[str, Set[Tuple]] = {}
        self._wake_lock = threading.Lock()
        self._woken_nodes: Set[str] = set()
        self._wake_all = False
        self._last_quarantine: Optional[FrozenSet[str]] = None
        self._seq = itertools.count()
        #: task_ids currently queued — dedups re-ingestion of a task that
        #: was invalidated (lineage recovery) and re-readied while its
        #: original heap entry was still queued.
        self._queued: Set[int] = set()
        #: Lazily-dropped queue entries (invalidated by lineage recovery);
        #: resolved at the head of schedule_round, or cancelled in place
        #: if the task is re-ingested first.
        self._purged: Set[int] = set()

    # ------------------------------------------------------------------
    # Pool listener protocol (called with the pool lock held: buffer only)
    # ------------------------------------------------------------------
    def on_release(self, node: str) -> None:
        """Capacity freed on ``node`` — wake the classes that fit there."""
        with self._wake_lock:
            self._woken_nodes.add(node)

    def on_topology_change(self) -> None:
        """A node joined/failed/recovered — every answer may have changed."""
        with self._wake_lock:
            self._wake_all = True

    # ------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------
    def _class_for(self, task: TaskInvocation) -> _ClassQueue:
        key = task.definition.constraint_class()
        cq = self._classes.get(key)
        if cq is None:
            cq = _ClassQueue(key)
            self._classes[key] = cq
            self._register_nodes(cq, task)
        return cq

    def _register_nodes(self, cq: _ClassQueue, task: TaskInvocation) -> None:
        names: Set[str] = set()
        for impl in task.definition.all_candidates():
            names.update(self.pool.static_candidates(impl.constraint))
        cq.nodes = frozenset(names)
        for name in names:
            self._node_classes.setdefault(name, set()).add(cq.key)

    def ingest(self, tasks: Iterable[TaskInvocation]) -> None:
        """Add newly-ready tasks to their class queues."""
        for task in tasks:
            if task.task_id in self._queued:
                # Still queued from before an invalidate/re-ready cycle:
                # revive the existing entry instead of duplicating it.
                self._purged.discard(task.task_id)
                continue
            self._queued.add(task.task_id)
            cq = self._class_for(task)
            heapq.heappush(
                cq.heap,
                (self.scheduler.sort_key(task), next(self._seq), task),
            )
            self.stats.ingested += 1

    def purge(self, tasks: Iterable[TaskInvocation]) -> None:
        """Lazily drop queued tasks that lineage recovery invalidated.

        An invalidated task cannot be pulled out of a heap cheaply, so it
        is tombstoned here and skipped (or revived by a re-:meth:`ingest`)
        when its entry reaches the head of a scheduling round.
        """
        for task in tasks:
            if task.task_id in self._queued:
                self._purged.add(task.task_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Tasks currently queued (ready but unplaced)."""
        return sum(len(cq.heap) for cq in self._classes.values())

    def waiting_tasks(self) -> List[TaskInvocation]:
        """Queued tasks in policy order (debugging / tests)."""
        entries = [e for cq in self._classes.values() for e in cq.heap]
        return [task for _, _, task in sorted(entries)]

    # ------------------------------------------------------------------
    # Starvation watchdog
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _mark_starved(self, key, task, exc: UnsatisfiableError) -> None:
        if key in self._starved:
            return
        now = self._now()
        self._starved[key] = now
        self.stats.classes_starved += 1
        if self.resilience is not None:
            self.resilience.record(
                now, CLASS_STARVED, task_label=task.label,
                detail=exc.constraint,
            )

    def starved_classes(self) -> Dict[Tuple, float]:
        """Currently-starved constraint classes → starvation start time."""
        return dict(self._starved)

    def next_starvation_deadline(self) -> Optional[float]:
        """Earliest time a starved class becomes reapable (None if n/a)."""
        if self.starvation_timeout_s is None or not self._starved:
            return None
        return min(self._starved.values()) + self.starvation_timeout_s

    def reap_starved(self) -> List[Tuple[TaskInvocation, float]]:
        """Fail-out pass of the starvation watchdog.

        Pops every queued task of each class starved for at least
        ``starvation_timeout_s`` and returns ``(task, waited_s)`` pairs;
        the executor fails them with
        :class:`~repro.runtime.fault.ResourceStarvationError`.  Classes
        that re-gained a candidate node were already un-starved by the
        scheduling round that saw it, so they are never reaped.
        """
        if self.starvation_timeout_s is None or not self._starved:
            return []
        now = self._now()
        victims: List[Tuple[TaskInvocation, float]] = []
        for key, since in sorted(self._starved.items(), key=lambda kv: kv[1]):
            if now - since < self.starvation_timeout_s - 1e-9:
                continue
            cq = self._classes.get(key)
            while cq is not None and cq.heap:
                _, _, task = heapq.heappop(cq.heap)
                self._queued.discard(task.task_id)
                if task.task_id in self._purged:
                    self._purged.discard(task.task_id)
                    continue
                victims.append((task, now - since))
                self.stats.starvation_failures += 1
            del self._starved[key]
            self._blocked.discard(key)
        return victims

    # ------------------------------------------------------------------
    # Scheduling rounds
    # ------------------------------------------------------------------
    def _drain_wakes(self) -> None:
        with self._wake_lock:
            woken, self._woken_nodes = self._woken_nodes, set()
            wake_all, self._wake_all = self._wake_all, False
        if wake_all:
            # Topology changed: static fits are stale — rebuild the
            # node→class index from the pool's (freshly invalidated)
            # capacity index, and re-probe everything once.
            self.stats.full_wakes += 1
            self._blocked.clear()
            self._node_classes.clear()
            for cq in self._classes.values():
                if cq.heap:
                    self._register_nodes(cq, cq.heap[0][2])
                else:
                    cq.nodes = frozenset()
            return
        if woken and self._blocked:
            for node in woken:
                hit = self._node_classes.get(node)
                if hit:
                    self.stats.wakes += len(self._blocked & hit)
                    self._blocked -= hit

    def _check_quarantine(self) -> List[str]:
        quarantined = self.pool.blocked_nodes()
        as_set = frozenset(quarantined)
        if as_set != self._last_quarantine:
            # The avoid-set every queued task sees just changed; previous
            # infeasibility verdicts no longer hold.
            self._blocked.clear()
            self._last_quarantine = as_set
        return quarantined

    def schedule_round(self) -> List[Assignment]:
        """Place every placeable queued task; returns the assignments.

        Within the round the pool only shrinks (placements consume
        capacity, nothing is released synchronously), so one failed probe
        per class is conclusive for the whole round — and, thanks to the
        wake protocol, for every following round until a relevant event.
        """
        self.stats.rounds += 1
        self._drain_wakes()
        quarantined = self._check_quarantine()
        assignments: List[Assignment] = []
        deferred: List[Tuple] = []
        heads: List[Tuple] = []
        for key, cq in self._classes.items():
            if not cq.heap:
                continue
            if key in self._blocked:
                self.stats.blocked_skips += 1
                continue
            sort, seq, _task = cq.heap[0]
            heapq.heappush(heads, (sort, seq, key))
        while heads:
            sort, seq, key = heapq.heappop(heads)
            cq = self._classes[key]
            if not cq.heap or cq.heap[0][1] != seq:
                continue  # stale head entry
            task = cq.heap[0][2]
            if task.task_id in self._purged:
                # Invalidated (lineage recovery) while queued: drop the
                # stale entry; the graph re-readies it when its inputs
                # re-materialise.
                heapq.heappop(cq.heap)
                self._queued.discard(task.task_id)
                self._purged.discard(task.task_id)
                if cq.heap:
                    nsort, nseq, _ = cq.heap[0]
                    heapq.heappush(heads, (nsort, nseq, key))
                continue
            self.stats.placement_probes += 1
            try:
                placed = self.scheduler._try_place(
                    task, self.pool, quarantined
                )
            except UnsatisfiableError as exc:
                if exc.permanent:
                    raise
                # Starved: capable nodes exist but all are dead/draining.
                # Hold the class awaiting a rejoin; the watchdog reaps it
                # after starvation_timeout_s.
                self._blocked.add(key)
                self._mark_starved(key, task, exc)
                continue
            self._starved.pop(key, None)
            if placed is not None:
                heapq.heappop(cq.heap)
                self._queued.discard(task.task_id)
                assignments.append(placed)
                self.stats.placed += 1
                if cq.heap:
                    nsort, nseq, _ = cq.heap[0]
                    heapq.heappush(heads, (nsort, nseq, key))
            elif task.failed_nodes:
                # Per-task avoid sets make this task stricter than its
                # class: set it aside and give the next-in-class a go.
                deferred.append(heapq.heappop(cq.heap))
                if cq.heap:
                    nsort, nseq, _ = cq.heap[0]
                    heapq.heappush(heads, (nsort, nseq, key))
            else:
                self._blocked.add(key)
        for entry in deferred:
            key = entry[2].definition.constraint_class()
            heapq.heappush(self._classes[key].heap, entry)
        return assignments
