"""Incremental dispatch engine — the submit→ready→place→run fast path.

The classic path re-ran the full scheduler over the *entire* waiting
queue on every submission and completion: with ``n`` waiting tasks that
is O(n) placement probes per event and O(n²) aggregate, which caps
studies at a few thousand tasks.  This engine makes dispatch incremental:

* Ready tasks are bucketed into one queue per **constraint class**
  (:meth:`~repro.runtime.task_definition.TaskDefinition.constraint_class`).
  Tasks in a class are interchangeable for *feasibility* — at any pool
  state either the head can be placed or nothing in the queue can — so a
  scheduling round probes only queue heads.
* A class that fails to place is **blocked** and stays blocked across
  rounds until an event that could change the answer: a release on a
  node the class statically fits (tracked via the pool's
  constraint-class capacity index), a topology change (node added,
  failed, or recovered), or a change in the quarantine set.  Completions
  therefore wake only the classes whose capacity actually changed.
* Policy semantics are preserved exactly: rounds place tasks in the
  scheduler's :meth:`~repro.runtime.scheduler.base.Scheduler.sort_key`
  order (a lazy merge over the per-class heaps), which is the same total
  order the batch ``Scheduler.assign`` uses.  Placement feasibility is
  preference-independent (``preferred_nodes`` only chooses *which* node,
  never *whether*), so skipping a blocked class never changes an
  assignment — only the cost of discovering it.

Tasks carrying ``failed_nodes`` (fault-tolerance resubmissions) are the
one per-task feasibility wrinkle: they may *refuse* nodes their class
would accept, so a placement failure of such a task never blocks its
class; the task is set aside for the round and retried on later rounds.

**Multi-tenant service mode** adds a *study* dimension to the class
heaps: class keys become ``(study, constraint_class)`` and, whenever a
round sees queued work from two or more studies, heads are merged in
fair-share order — priority first (higher wins), then stride-scheduled
virtual time (cumulative placed CPU-units divided by the study's
weight), recomputed at round time so shares track live usage.  Rounds
with a single participating study take the unchanged legacy path, which
is what keeps a solo run's placements byte-identical to a run without
the service.  Per-tenant slot quotas are enforced here too: a class
whose tenant is at its running-slot cap simply sits the round out (no
blocking — the tenant's own releases re-trigger rounds).

Thread-safety: capacity notifications (:meth:`on_release`,
:meth:`on_topology_change`) arrive from arbitrary threads with the pool
lock held; they only buffer into a wake set.  All queue mutation happens
in :meth:`ingest`/:meth:`schedule_round`, which executors call under the
runtime lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.runtime.fault import UnsatisfiableError
from repro.runtime.resilience import CLASS_STARVED
from repro.runtime.resources import ResourcePool
from repro.runtime.scheduler.base import Assignment, Scheduler
from repro.runtime.task_definition import TaskInvocation


@dataclass
class DispatchStats:
    """Operation counters for the fast path (asserted by the scale tests).

    ``placement_probes`` is the count that must stay O(tasks) — it was
    O(tasks²) on the classic path.
    """

    ingested: int = 0
    rounds: int = 0
    placement_probes: int = 0
    placed: int = 0
    blocked_skips: int = 0
    wakes: int = 0
    full_wakes: int = 0
    classes_starved: int = 0
    starvation_failures: int = 0
    fair_rounds: int = 0
    quota_skips: int = 0
    paused_skips: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "rounds": self.rounds,
            "placement_probes": self.placement_probes,
            "placed": self.placed,
            "blocked_skips": self.blocked_skips,
            "wakes": self.wakes,
            "full_wakes": self.full_wakes,
            "classes_starved": self.classes_starved,
            "starvation_failures": self.starvation_failures,
            "fair_rounds": self.fair_rounds,
            "quota_skips": self.quota_skips,
            "paused_skips": self.paused_skips,
        }


@dataclass
class _ClassQueue:
    """One constraint class: a policy-ordered heap plus its wake nodes."""

    key: Tuple
    #: Heap of (sort_key, seq, task) — policy order with FIFO tiebreak.
    heap: List[Tuple] = field(default_factory=list)
    #: Names of nodes whose idle capacity fits some candidate impl.
    nodes: FrozenSet[str] = frozenset()
    #: Owning study ("" outside service mode) — the key's first element.
    study: str = ""


@dataclass
class _StudyShare:
    """Fair-share state of one registered study (service mode).

    ``vtime`` is stride-scheduling virtual time: cumulative placed
    CPU-units divided by ``weight``.  The study with the smallest vtime
    (within the highest priority band) places next, so long-run
    placement shares converge to the weight ratio regardless of how
    bursty each study's submissions are.
    """

    study: str
    priority: int = 0
    weight: float = 1.0
    tenant: str = ""
    max_tenant_slots: Optional[int] = None
    vtime: float = 0.0
    #: A paused (suspending) study keeps its lane and vtime but places
    #: nothing until resumed — queued work waits warm instead of racing
    #: the suspension of its in-flight siblings.
    paused: bool = False


class DispatchEngine:
    """Event-driven partial rescheduler shared by both executors."""

    def __init__(self, scheduler: Scheduler, pool: ResourcePool):
        self.scheduler = scheduler
        self.pool = pool
        self.stats = DispatchStats()
        #: Starvation watchdog wiring (set by the runtime after
        #: construction): executor clock, resilience log, and the hold
        #: budget before starved tasks are reaped.  ``None`` timeout
        #: disables reaping — starved classes are simply held.
        self.clock = None
        self.resilience = None
        self.starvation_timeout_s: Optional[float] = None
        #: class key -> time it first starved (every candidate node dead
        #: or draining).  The start time survives re-probes so the
        #: watchdog measures total starvation, not time-since-last-look.
        self._starved: Dict[Tuple, float] = {}
        self._classes: Dict[Tuple, _ClassQueue] = {}
        #: class key -> nodes that freed capacity since the class was last
        #: conclusively blocked.  An *empty* set means "blocked, skip the
        #: probe"; a non-empty set means "re-probe, but only the listed
        #: nodes" (every node outside the set failed a capacity check and
        #: has only lost capacity since, so probing it again is wasted
        #: work).  Absent key = never blocked, probe unrestricted.
        self._blocked: Dict[Tuple, Set[str]] = {}
        #: node name -> constraint classes that statically fit on it.
        self._node_classes: Dict[str, Set[Tuple]] = {}
        self._wake_lock = threading.Lock()
        self._woken_nodes: Set[str] = set()
        self._wake_all = False
        self._last_quarantine: Optional[FrozenSet[str]] = None
        self._seq = itertools.count()
        #: task_ids currently queued — dedups re-ingestion of a task that
        #: was invalidated (lineage recovery) and re-readied while its
        #: original heap entry was still queued.
        self._queued: Set[int] = set()
        #: Lazily-dropped queue entries (invalidated by lineage recovery);
        #: resolved at the head of schedule_round, or cancelled in place
        #: if the task is re-ingested first.
        self._purged: Set[int] = set()
        #: Pooled per-round scratch (reused across rounds so the hot path
        #: allocates no fresh lists per completion batch).
        self._heads: List[Tuple] = []
        self._deferred: List[Tuple] = []
        #: study id -> fair-share state (service mode only; empty for the
        #: single-study runtime, which keeps every legacy code path).
        self._studies: Dict[str, _StudyShare] = {}

    # ------------------------------------------------------------------
    # Study registration (multi-tenant service mode)
    # ------------------------------------------------------------------
    def register_study(
        self,
        study: str,
        priority: int = 0,
        weight: float = 1.0,
        tenant: str = "",
        max_tenant_slots: Optional[int] = None,
    ) -> None:
        """Give ``study`` a fair-share lane across the class heaps.

        ``priority`` ranks studies strictly (higher places first);
        within a priority band placement follows stride-scheduled
        virtual time so long-run CPU shares converge to the ``weight``
        ratio.  ``max_tenant_slots`` caps the tenant's concurrently
        *running* placements across all its studies.
        """
        if not study:
            raise ValueError("study id must be non-empty")
        if weight <= 0:
            raise ValueError(f"study weight must be > 0, got {weight!r}")
        existing = self._studies.get(study)
        share = _StudyShare(
            study=study, priority=priority, weight=weight,
            tenant=tenant, max_tenant_slots=max_tenant_slots,
        )
        if existing is not None:
            share.vtime = existing.vtime
        else:
            # A late-joining study starts at the current minimum vtime of
            # its priority band, not at zero — otherwise it would starve
            # everyone else until it "caught up" on work it never saw.
            peers = [
                s.vtime for s in self._studies.values()
                if s.priority == priority
            ]
            share.vtime = min(peers) if peers else 0.0
        self._studies[study] = share

    def unregister_study(self, study: str) -> None:
        """Drop a finished study's fair-share lane (idempotent)."""
        self._studies.pop(study, None)

    def pause_study(self, study: str) -> bool:
        """Stop placing a study's queued tasks (suspend support).

        In-flight attempts are untouched — the preemption controller
        handles those — but nothing new starts, so a suspending study
        cannot re-grow its footprint between the suspend decision and
        the last spill landing.  Returns False for unknown studies.
        """
        share = self._studies.get(study)
        if share is None:
            return False
        share.paused = True
        return True

    def resume_study(self, study: str) -> bool:
        """Re-enable placement for a paused study (idempotent)."""
        share = self._studies.get(study)
        if share is None:
            return False
        share.paused = False
        return True

    def study_shares(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of registered studies (service status endpoint)."""
        return {
            s.study: {
                "priority": s.priority,
                "weight": s.weight,
                "tenant": s.tenant,
                "vtime": s.vtime,
                "paused": s.paused,
            }
            for s in self._studies.values()
        }

    def _rank(self, study: str) -> Tuple:
        """Round-time fair-share rank of a study (smaller places first)."""
        share = self._studies.get(study)
        if share is None:
            return (0, 0.0, study)
        return (-share.priority, share.vtime, study)

    def _tenant_at_quota(self, share: Optional[_StudyShare]) -> bool:
        if share is None or share.max_tenant_slots is None:
            return False
        return self.pool.tenant_load(share.tenant) >= share.max_tenant_slots

    def _charge_share(self, study: str, placed: Assignment) -> None:
        """Account one placement against the study's share and tenant."""
        share = self._studies.get(study)
        if share is None:
            return
        units = placed.allocation.cpu_units or 1
        for extra in placed.extra_allocations:
            units += extra.cpu_units or 1
        share.vtime += units / share.weight
        if share.tenant and share.max_tenant_slots is not None:
            self.pool.charge_tenant(placed.allocation, share.tenant)

    # ------------------------------------------------------------------
    # Pool listener protocol (called with the pool lock held: buffer only)
    # ------------------------------------------------------------------
    def on_release(self, node: str) -> None:
        """Capacity freed on ``node`` — wake the classes that fit there."""
        with self._wake_lock:
            self._woken_nodes.add(node)

    def on_topology_change(self) -> None:
        """A node joined/failed/recovered — every answer may have changed."""
        with self._wake_lock:
            self._wake_all = True

    # ------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------
    def _class_for(self, task: TaskInvocation) -> _ClassQueue:
        definition = task.definition
        cached = getattr(definition, "_dispatch_class_cache", None)
        if (
            cached is not None
            and cached[0] is self
            and cached[1].study == task.study
        ):
            return cached[1]
        key = (task.study, definition.constraint_class())
        cq = self._classes.get(key)
        if cq is None:
            cq = _ClassQueue(key, study=task.study)
            self._classes[key] = cq
            self._register_nodes(cq, task)
        # Safe to cache per (engine, definition, study): constraint_class()
        # is itself cached on the definition and decorators finish mutating
        # the constraint before the first submission.  A definition shared
        # across studies (rare) revalidates via the study check above.
        definition._dispatch_class_cache = (self, cq)
        return cq

    def _register_nodes(self, cq: _ClassQueue, task: TaskInvocation) -> None:
        names: Set[str] = set()
        for impl in task.definition.all_candidates():
            names.update(self.pool.static_candidates(impl.constraint))
        cq.nodes = frozenset(names)
        for name in names:
            self._node_classes.setdefault(name, set()).add(cq.key)

    def ingest(self, tasks: Iterable[TaskInvocation]) -> None:
        """Add newly-ready tasks to their class queues."""
        queued = self._queued
        purged = self._purged
        sort_key = self.scheduler.sort_key
        seq = self._seq
        heappush = heapq.heappush
        class_for = self._class_for
        n = 0
        for task in tasks:
            tid = task.task_id
            if tid in queued:
                # Still queued from before an invalidate/re-ready cycle:
                # revive the existing entry instead of duplicating it.
                purged.discard(tid)
                continue
            queued.add(tid)
            heappush(
                class_for(task).heap, (sort_key(task), next(seq), task)
            )
            n += 1
        self.stats.ingested += n

    def purge(self, tasks: Iterable[TaskInvocation]) -> None:
        """Lazily drop queued tasks that lineage recovery invalidated.

        An invalidated task cannot be pulled out of a heap cheaply, so it
        is tombstoned here and skipped (or revived by a re-:meth:`ingest`)
        when its entry reaches the head of a scheduling round.
        """
        for task in tasks:
            if task.task_id in self._queued:
                self._purged.add(task.task_id)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the class heaps when tombstones dominate.

        Lazy deletion is O(1) per purge but leaves dead entries in the
        heaps; after a mass invalidation (lineage recovery under churn)
        those can dominate and every later round pays to skip them.  When
        at least 64 entries — and more than half of everything queued —
        are tombstones, rebuild each affected heap without them so heap
        sizes stay bounded by live work.
        """
        purged = self._purged
        n_purged = len(purged)
        if n_purged < 64 or n_purged * 2 <= len(self._queued):
            return
        for cq in self._classes.values():
            heap = cq.heap
            if any(e[2].task_id in purged for e in heap):
                heap[:] = [e for e in heap if e[2].task_id not in purged]
                heapq.heapify(heap)
        self._queued -= purged
        purged.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Tasks currently queued (ready but unplaced).

        Tombstoned (purged-but-not-yet-dropped) entries are excluded, so
        the answer agrees with the graph across cancel+resubmit cycles.
        """
        return len(self._queued) - len(self._purged)

    def waiting_tasks(self) -> List[TaskInvocation]:
        """Queued tasks in policy order (debugging / tests)."""
        entries = [e for cq in self._classes.values() for e in cq.heap]
        return [
            task
            for _, _, task in sorted(entries)
            if task.task_id not in self._purged
        ]

    # ------------------------------------------------------------------
    # Starvation watchdog
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _mark_starved(self, key, task, exc: UnsatisfiableError) -> None:
        if key in self._starved:
            return
        now = self._now()
        self._starved[key] = now
        self.stats.classes_starved += 1
        if self.resilience is not None:
            self.resilience.record(
                now, CLASS_STARVED, task_label=task.label,
                detail=exc.constraint,
            )

    def starved_classes(self) -> Dict[Tuple, float]:
        """Currently-starved constraint classes → starvation start time."""
        return dict(self._starved)

    def next_starvation_deadline(self) -> Optional[float]:
        """Earliest time a starved class becomes reapable (None if n/a)."""
        if self.starvation_timeout_s is None or not self._starved:
            return None
        return min(self._starved.values()) + self.starvation_timeout_s

    def reap_starved(self) -> List[Tuple[TaskInvocation, float]]:
        """Fail-out pass of the starvation watchdog.

        Pops every queued task of each class starved for at least
        ``starvation_timeout_s`` and returns ``(task, waited_s)`` pairs;
        the executor fails them with
        :class:`~repro.runtime.fault.ResourceStarvationError`.  Classes
        that re-gained a candidate node were already un-starved by the
        scheduling round that saw it, so they are never reaped.
        """
        if self.starvation_timeout_s is None or not self._starved:
            return []
        now = self._now()
        victims: List[Tuple[TaskInvocation, float]] = []
        for key, since in sorted(self._starved.items(), key=lambda kv: kv[1]):
            if now - since < self.starvation_timeout_s - 1e-9:
                continue
            cq = self._classes.get(key)
            while cq is not None and cq.heap:
                _, _, task = heapq.heappop(cq.heap)
                self._queued.discard(task.task_id)
                if task.task_id in self._purged:
                    self._purged.discard(task.task_id)
                    continue
                victims.append((task, now - since))
                self.stats.starvation_failures += 1
            del self._starved[key]
            self._blocked.pop(key, None)
        return victims

    # ------------------------------------------------------------------
    # Scheduling rounds
    # ------------------------------------------------------------------
    def _drain_wakes(self) -> None:
        with self._wake_lock:
            woken, self._woken_nodes = self._woken_nodes, set()
            wake_all, self._wake_all = self._wake_all, False
        if wake_all:
            # Topology changed: static fits are stale — rebuild the
            # node→class index from the pool's (freshly invalidated)
            # capacity index, and re-probe everything once.
            self.stats.full_wakes += 1
            self._blocked.clear()
            self._node_classes.clear()
            for cq in self._classes.values():
                if cq.heap:
                    self._register_nodes(cq, cq.heap[0][2])
                else:
                    cq.nodes = frozenset()
            return
        if woken and self._blocked:
            blocked = self._blocked
            node_classes = self._node_classes
            for node in woken:
                hit = node_classes.get(node)
                if not hit:
                    continue
                for key in hit:
                    restrict = blocked.get(key)
                    if restrict is None:
                        continue
                    if not restrict:
                        # First capacity signal since the class blocked:
                        # it becomes probeable again (restricted to the
                        # nodes that actually freed something).
                        self.stats.wakes += 1
                    restrict.add(node)

    def _check_quarantine(self) -> List[str]:
        quarantined = self.pool.blocked_nodes()
        as_set = frozenset(quarantined)
        if as_set != self._last_quarantine:
            # The avoid-set every queued task sees just changed; previous
            # infeasibility verdicts no longer hold.
            self._blocked.clear()
            self._last_quarantine = as_set
        return quarantined

    def schedule_round(self) -> List[Assignment]:
        """Place every placeable queued task; returns the assignments.

        Within the round the pool only shrinks (placements consume
        capacity, nothing is released synchronously), so one failed probe
        per class is conclusive for the whole round — and, thanks to the
        wake protocol, for every following round until a relevant event.
        """
        self.stats.rounds += 1
        self._drain_wakes()
        quarantined = self._check_quarantine()
        assignments: List[Assignment] = []
        self._place_ready(quarantined, assignments)
        return assignments

    def drain(
        self,
        units: List[Tuple[Assignment, List[TaskInvocation]]],
    ) -> List[Assignment]:
        """Batched scheduling: replay buffered completion units in order.

        Each unit is ``(assignment, ready)`` — the resources one finished
        attempt held plus the tasks its completion made ready.  Units are
        replayed strictly in completion order: release the unit's
        allocations, fold the wakes they generate into the blocked-class
        restriction sets, ingest the readied tasks, then place.  That
        per-unit replay is what keeps placements byte-identical to the
        unbatched engine (releasing a whole batch up front would let an
        early task see capacity that, event-by-event, a later task
        claimed first), while the round-level bookkeeping — quarantine
        check, stats round — is paid once per batch.
        """
        self.stats.rounds += 1
        self._drain_wakes()
        quarantined = self._check_quarantine()
        out: List[Assignment] = []
        pool = self.pool
        for assignment, ready in units:
            pool.release(assignment.allocation)
            for extra in assignment.extra_allocations:
                pool.release(extra)
            self._drain_wakes()
            if ready:
                self.ingest(ready)
            self._place_ready(quarantined, out)
        return out

    def _place_ready(
        self, quarantined: List[str], out: List[Assignment]
    ) -> None:
        """One placement pass over the class-queue heads (shared core).

        Appends assignments to ``out``.  Uses the pooled ``_heads`` /
        ``_deferred`` scratch lists — no per-round allocations.
        """
        heads = self._heads
        blocked = self._blocked
        stats = self.stats
        multi_study = False
        first_study: Optional[str] = None
        for key, cq in self._classes.items():
            heap = cq.heap
            if not heap:
                continue
            restrict = blocked.get(key)
            if restrict is not None and not restrict:
                stats.blocked_skips += 1
                continue
            if cq.study:
                share = self._studies.get(cq.study)
                if share is not None and share.paused:
                    stats.paused_skips += 1
                    continue
            if first_study is None:
                first_study = cq.study
            elif cq.study != first_study:
                multi_study = True
            entry = heap[0]
            heads.append((entry[0], entry[1], key))
        if not heads:
            return
        if multi_study and self._studies:
            # Two or more studies have queued work: merge heads in
            # fair-share order instead of raw policy order.  Engaged only
            # here, so a solo study's placements stay byte-identical to a
            # run without the service.
            stats.fair_rounds += 1
            shared = [
                (self._rank(self._classes[k].study), s, q, k)
                for (s, q, k) in heads
            ]
            heads.clear()
            self._place_ready_shared(shared, quarantined, out)
            return
        if len(heads) == 1:
            # Single participating class (the common case in homogeneous
            # studies): within a class, heap order *is* policy order, so
            # the lazy merge below adds nothing but overhead.
            key = heads[0][2]
            heads.clear()
            self._place_class(key, quarantined, out)
            return
        heapq.heapify(heads)
        deferred = self._deferred
        try:
            while heads:
                _sort, seq, key = heapq.heappop(heads)
                cq = self._classes[key]
                heap = cq.heap
                if not heap or heap[0][1] != seq:
                    continue  # stale head entry
                task = heap[0][2]
                if task.task_id in self._purged:
                    # Invalidated (lineage recovery) while queued: drop the
                    # stale entry; the graph re-readies it when its inputs
                    # re-materialise.
                    heapq.heappop(heap)
                    self._queued.discard(task.task_id)
                    self._purged.discard(task.task_id)
                    if heap:
                        nxt = heap[0]
                        heapq.heappush(heads, (nxt[0], nxt[1], key))
                    continue
                stats.placement_probes += 1
                try:
                    placed = self.scheduler._try_place(
                        task, self.pool, quarantined, blocked.get(key)
                    )
                except UnsatisfiableError as exc:
                    if exc.permanent:
                        raise
                    # Starved: capable nodes exist but all are
                    # dead/draining.  Hold the class awaiting a rejoin;
                    # the watchdog reaps it after starvation_timeout_s.
                    blocked[key] = set()
                    self._mark_starved(key, task, exc)
                    continue
                self._starved.pop(key, None)
                if placed is not None:
                    heapq.heappop(heap)
                    self._queued.discard(task.task_id)
                    out.append(placed)
                    stats.placed += 1
                    if heap:
                        restrict = blocked.get(key)
                        if restrict is not None and not restrict:
                            # The allocation itself exhausted the last
                            # woken node (pruned by try_allocate): the
                            # class is conclusively blocked again.
                            stats.blocked_skips += 1
                        else:
                            nxt = heap[0]
                            heapq.heappush(heads, (nxt[0], nxt[1], key))
                elif task.failed_nodes:
                    # Per-task avoid sets make this task stricter than its
                    # class: set it aside and give the next-in-class a go.
                    deferred.append(heapq.heappop(heap))
                    if heap:
                        nxt = heap[0]
                        heapq.heappush(heads, (nxt[0], nxt[1], key))
                else:
                    # Conclusively blocked at the current pool state:
                    # reset the restriction set — only nodes that free
                    # capacity from here on are worth re-probing.
                    blocked[key] = set()
        finally:
            if heads:
                heads.clear()
            if deferred:
                for entry in deferred:
                    task = entry[2]
                    key = (task.study, task.definition.constraint_class())
                    heapq.heappush(self._classes[key].heap, entry)
                deferred.clear()

    def _place_ready_shared(
        self,
        shared: List[Tuple[Tuple, Tuple, int, Tuple]],
        quarantined: List[str],
        out: List[Assignment],
    ) -> None:
        """Fair-share merge loop for rounds where several studies compete.

        ``shared`` holds 4-tuples ``(rank, sort, seq, class_key)`` — the
        fair-share rank (priority band, then stride vtime) dominates, so
        the study owed the most service places first; within a study the
        policy sort order is preserved.  Ranks are recomputed on every
        head re-push: each placement advances the study's vtime, which is
        exactly what rotates service between tenants.  A class whose
        tenant is at its slot quota sits the round out (releases trigger
        new rounds, so no wake bookkeeping is needed).
        """
        blocked = self._blocked
        stats = self.stats
        studies = self._studies
        heapq.heapify(shared)
        deferred = self._deferred
        try:
            while shared:
                _rank, _sort, seq, key = heapq.heappop(shared)
                cq = self._classes[key]
                heap = cq.heap
                if not heap or heap[0][1] != seq:
                    continue  # stale head entry
                task = heap[0][2]
                if task.task_id in self._purged:
                    heapq.heappop(heap)
                    self._queued.discard(task.task_id)
                    self._purged.discard(task.task_id)
                    if heap:
                        nxt = heap[0]
                        heapq.heappush(
                            shared,
                            (self._rank(cq.study), nxt[0], nxt[1], key),
                        )
                    continue
                share = studies.get(cq.study)
                if self._tenant_at_quota(share):
                    # Over quota: the whole class waits for a release from
                    # one of the tenant's running tasks.  Not re-pushed —
                    # quota state cannot change within the round.
                    stats.quota_skips += 1
                    continue
                stats.placement_probes += 1
                try:
                    placed = self.scheduler._try_place(
                        task, self.pool, quarantined, blocked.get(key)
                    )
                except UnsatisfiableError as exc:
                    if exc.permanent:
                        raise
                    blocked[key] = set()
                    self._mark_starved(key, task, exc)
                    continue
                self._starved.pop(key, None)
                if placed is not None:
                    heapq.heappop(heap)
                    self._queued.discard(task.task_id)
                    self._charge_share(cq.study, placed)
                    out.append(placed)
                    stats.placed += 1
                    if heap:
                        restrict = blocked.get(key)
                        if restrict is not None and not restrict:
                            stats.blocked_skips += 1
                        else:
                            nxt = heap[0]
                            heapq.heappush(
                                shared,
                                (self._rank(cq.study), nxt[0], nxt[1], key),
                            )
                elif task.failed_nodes:
                    deferred.append(heapq.heappop(heap))
                    if heap:
                        nxt = heap[0]
                        heapq.heappush(
                            shared,
                            (self._rank(cq.study), nxt[0], nxt[1], key),
                        )
                else:
                    blocked[key] = set()
        finally:
            if deferred:
                for entry in deferred:
                    task = entry[2]
                    key = (task.study, task.definition.constraint_class())
                    heapq.heappush(self._classes[key].heap, entry)
                deferred.clear()

    def _place_class(
        self, key: Tuple, quarantined: List[str], out: List[Assignment]
    ) -> None:
        """Tight placement loop for a round with one participating class.

        Behaviourally identical to the merge loop in
        :meth:`_place_ready` when only one head exists: tasks are probed
        in heap (= policy) order, deferral and blocking semantics match,
        and a conclusive block ends the round.
        """
        cq = self._classes[key]
        heap = cq.heap
        blocked = self._blocked
        stats = self.stats
        purged = self._purged
        queued = self._queued
        try_place = self.scheduler._try_place
        pool = self.pool
        deferred = self._deferred
        try:
            while heap:
                task = heap[0][2]
                if task.task_id in purged:
                    heapq.heappop(heap)
                    queued.discard(task.task_id)
                    purged.discard(task.task_id)
                    continue
                stats.placement_probes += 1
                try:
                    placed = try_place(
                        task, pool, quarantined, blocked.get(key)
                    )
                except UnsatisfiableError as exc:
                    if exc.permanent:
                        raise
                    blocked[key] = set()
                    self._mark_starved(key, task, exc)
                    return
                self._starved.pop(key, None)
                if placed is not None:
                    heapq.heappop(heap)
                    queued.discard(task.task_id)
                    out.append(placed)
                    stats.placed += 1
                    restrict = blocked.get(key)
                    if restrict is not None and not restrict:
                        # The allocation itself exhausted the last woken
                        # node (pruned by try_allocate): conclusively
                        # blocked again — skip the would-fail re-probe.
                        stats.blocked_skips += 1
                        return
                elif task.failed_nodes:
                    deferred.append(heapq.heappop(heap))
                else:
                    blocked[key] = set()
                    return
        finally:
            if deferred:
                for entry in deferred:
                    heapq.heappush(heap, entry)
                deferred.clear()
