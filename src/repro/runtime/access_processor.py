"""Data-access processor: object versioning and dependency detection.

Mirrors the COMPSs access processor: every distinct datum touched by tasks
gets a data id ``d<N>``; every write bumps its version, yielding the
``d1v2``-style labels seen on the edges of the paper's Fig. 3.  Dependency
rules per parameter direction:

* read (IN/INOUT): depend on the last writer of the datum's current
  version (read-after-write);
* write (OUT/INOUT): record this task as the writer of a new version;
  subsequent readers depend on it. Writes also serialise against prior
  readers (anti-dependency) to preserve sequential semantics.

Futures are handled as data too: the producing task is the writer of the
future's datum.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.pycompss_api.parameter import ParameterSpec
from repro.runtime.future import Future, is_future
from repro.runtime.task_definition import TaskInvocation


class DataVersion:
    """One version of a datum: ``d<data_id>v<version>``.

    A ``__slots__`` class rather than a dataclass: one instance is
    created per task output on the submission hot path, and the
    dataclass ctor alone was the single largest cost at 100k tasks.

    Attributes: ``writer`` is the producing task (None for main-program
    data); ``readers`` the tasks that read this version; ``invalidated``
    is set when the version's bytes were lost with a failed node and
    cleared when the writer re-executes (lineage recovery); ``checksum``
    is the content digest sealed at write time by the integrity layer
    (None until sealed / when ``verify_outputs`` is off).
    """

    __slots__ = (
        "data_id", "version", "writer", "readers", "invalidated", "checksum"
    )

    def __init__(
        self,
        data_id: int,
        version: int,
        writer: Optional[TaskInvocation] = None,
    ):
        self.data_id = data_id
        self.version = version
        self.writer = writer
        self.readers: List[TaskInvocation] = []
        self.invalidated = False
        self.checksum: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"DataVersion({self.label}, writer="
            f"{self.writer.label if self.writer else None})"
        )

    @property
    def label(self) -> str:
        return f"d{self.data_id}v{self.version}"


class DataInfo:
    """All versions of one datum (slots: one per task output, hot path)."""

    __slots__ = ("data_id", "versions")

    def __init__(self, data_id: int):
        self.data_id = data_id
        self.versions: List[DataVersion] = []

    @property
    def current(self) -> DataVersion:
        return self.versions[-1]

    def new_version(self, writer: Optional[TaskInvocation]) -> DataVersion:
        v = DataVersion(self.data_id, len(self.versions) + 1, writer)
        self.versions.append(v)
        return v


class AccessProcessor:
    """Tracks data accesses and emits dependency edges.

    Objects are identified by ``id()``; the processor keeps a strong
    reference to every registered object so CPython cannot recycle the id
    while the runtime is alive (cleared by :meth:`reset` /
    ``compss_delete_object``).
    """

    def __init__(self) -> None:
        self._data_ids = itertools.count(1)
        self._by_obj_id: Dict[int, DataInfo] = {}
        self._keepalive: Dict[int, Any] = {}
        self._future_data: Dict[Tuple[int, int], DataInfo] = {}
        self._by_path: Dict[str, DataInfo] = {}
        #: writer task_id -> versions it produced (lineage queries).
        self._by_writer: Dict[int, List[DataVersion]] = {}
        #: True once any version was ever invalidated — lets the
        #: per-completion revalidation pass skip entirely in the
        #: (overwhelmingly common) no-failure run.
        self.any_invalidated = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _info_for_object(self, obj: Any) -> DataInfo:
        key = id(obj)
        info = self._by_obj_id.get(key)
        if info is None:
            info = DataInfo(next(self._data_ids))
            info.new_version(writer=None)  # initial version from main program
            self._by_obj_id[key] = info
            self._keepalive[key] = obj
        return info

    def _info_for_future(self, fut: Future) -> DataInfo:
        key = (fut.invocation.task_id, fut.index)
        info = self._future_data.get(key)
        if info is None:
            writer = fut.invocation
            info = DataInfo(next(self._data_ids))
            version = info.new_version(writer=writer)
            writer.writes.append(version.label)
            by_writer = self._by_writer
            tid = writer.task_id
            versions = by_writer.get(tid)
            if versions is None:
                by_writer[tid] = [version]
            else:
                versions.append(version)
            self._future_data[key] = info
        return info

    def register_output_future(self, fut: Future) -> str:
        """Register a task's return slot as a written datum; returns label."""
        return self._info_for_future(fut).current.label

    def _info_for_path(self, path: str) -> DataInfo:
        """FILE parameters are identified by their path, not object id."""
        info = self._by_path.get(path)
        if info is None:
            info = DataInfo(next(self._data_ids))
            info.new_version(writer=None)
            self._by_path[path] = info
        return info

    def last_writer_of_path(self, path: str) -> Optional[TaskInvocation]:
        """Most recent task that wrote ``path`` (None if untracked/main)."""
        info = self._by_path.get(path)
        if info is None:
            return None
        return info.current.writer

    # ------------------------------------------------------------------
    # Access processing
    # ------------------------------------------------------------------
    def process_access(
        self, task: TaskInvocation, obj: Any, spec: ParameterSpec
    ) -> Tuple[Set[TaskInvocation], List[str]]:
        """Record one parameter access.

        Returns ``(dependencies, edge_labels)`` — the tasks this access
        makes ``task`` depend on, and the data-version labels for graph
        edges (Fig. 3 style).
        """
        deps: Set[TaskInvocation] = set()
        labels: List[str] = []
        if spec.is_file and isinstance(obj, str):
            info = self._info_for_path(obj)
        elif is_future(obj):
            info = self._info_for_future(obj)
        elif self._is_trackable(obj):
            info = self._info_for_object(obj)
        else:
            return deps, labels

        current = info.current
        if spec.direction.reads:
            if current.writer is not None and current.writer is not task:
                deps.add(current.writer)
            current.readers.append(task)
            task.reads.append(current.label)
            labels.append(current.label)
        if spec.direction.writes:
            # Anti-dependency: a writer must wait for earlier readers.
            for reader in current.readers:
                if reader is not task:
                    deps.add(reader)
            if current.writer is not None and current.writer is not task:
                deps.add(current.writer)
            new = info.new_version(writer=task)
            task.writes.append(new.label)
            self._track_writer(new)
            labels.append(new.label)
        return deps, labels

    # ------------------------------------------------------------------
    # Lineage / invalidation (node-loss data recovery)
    # ------------------------------------------------------------------
    def _track_writer(self, version: DataVersion) -> None:
        if version.writer is not None:
            self._by_writer.setdefault(version.writer.task_id, []).append(version)

    def versions_written_by(self, task: TaskInvocation) -> List[DataVersion]:
        """Data versions produced by ``task`` (its output lineage)."""
        return list(self._by_writer.get(task.task_id, ()))

    def future_versions(self, task: TaskInvocation) -> List[Tuple[int, DataVersion]]:
        """``(return_slot, version)`` pairs for ``task``'s return values.

        Return-slot versions carry the payload that actually moves
        between tasks (futures); INOUT versions mutate caller objects in
        place.  The integrity layer snapshots only the former in local
        mode.
        """
        out: List[Tuple[int, DataVersion]] = []
        for (task_id, index), info in self._future_data.items():
            if task_id == task.task_id:
                out.append((index, info.versions[0]))
        out.sort(key=lambda pair: pair[0])
        return out

    def invalidate_versions_written_by(self, tasks) -> List[str]:
        """Mark the versions written by ``tasks`` as lost; returns labels.

        Called when a node failure destroys resident data; the labels
        feed the ``node_lost`` resilience event.  Versions revalidate
        when their writer completes again
        (:meth:`revalidate_versions_written_by`).
        """
        labels: List[str] = []
        for task in tasks:
            for version in self._by_writer.get(task.task_id, ()):
                if not version.invalidated:
                    version.invalidated = True
                    labels.append(version.label)
        if labels:
            self.any_invalidated = True
        return labels

    def revalidate_versions_written_by(self, task: TaskInvocation) -> None:
        """Clear the lost flag on ``task``'s outputs (it re-executed)."""
        for version in self._by_writer.get(task.task_id, ()):
            version.invalidated = False

    def invalidated_labels(self) -> List[str]:
        """Labels of all currently-invalidated versions (introspection)."""
        return sorted(
            v.label
            for versions in self._by_writer.values()
            for v in versions
            if v.invalidated
        )

    def release_task(self, task_id: int, n_returns: int) -> None:
        """Drop a freed task's future/writer registrations (streaming).

        Called via ``TaskGraph.on_free`` once every consumer of the task
        has completed — nothing can read these versions again, so the
        version objects (and through them the task invocation) become
        collectable.  Object-keyed data (INOUT containers) stays: it is
        bounded by live user objects, not by task count.
        """
        for i in range(n_returns):
            self._future_data.pop((task_id, i), None)
        self._by_writer.pop(task_id, None)

    @staticmethod
    def _is_trackable(obj: Any) -> bool:
        """Only mutable containers / arrays create object dependencies.

        Scalars and strings are value-like: two tasks receiving ``5`` must
        not be serialised against each other.
        """
        return not isinstance(obj, (int, float, complex, bool, str, bytes, type(None)))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def delete_object(self, obj: Any) -> bool:
        """Forget an object (``compss_delete_object``).  True if known."""
        key = id(obj)
        self._keepalive.pop(key, None)
        return self._by_obj_id.pop(key, None) is not None

    def reset(self) -> None:
        """Drop all tracked data (used between runtime sessions)."""
        self._by_obj_id.clear()
        self._keepalive.clear()
        self._future_data.clear()
        self._by_path.clear()
        self._by_writer.clear()
        self.any_invalidated = False
        self._data_ids = itertools.count(1)

    @property
    def n_tracked(self) -> int:
        """Number of tracked plain objects (not futures)."""
        return len(self._by_obj_id)
