"""Data-locality-aware scheduler.

COMPSs reuses "memory objects from one task to the next if they use the
same object" (paper §2.2) — running a consumer where its producer ran
avoids a transfer.  This scheduler prefers, for each task, the nodes
where its predecessors executed (most-recent first).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.runtime.scheduler.base import Scheduler
from repro.runtime.task_definition import TaskInvocation


class LocalityScheduler(Scheduler):
    """FIFO ordering with producer-node preference.

    The executor records each task's node on completion
    (``TaskInvocation.node``); preferences are derived from the producer
    tasks' recorded nodes at placement time.
    """

    def __init__(self) -> None:
        # task_id -> producers' nodes, registered by the runtime when the
        # task is added to the graph (predecessor handles are cheap).
        self._producers: Dict[int, List[TaskInvocation]] = {}

    def register_dependencies(
        self, task: TaskInvocation, producers: Sequence[TaskInvocation]
    ) -> None:
        """Remember the producers of ``task`` (called at submission)."""
        self._producers[task.task_id] = list(producers)

    def preferred_nodes(self, task: TaskInvocation) -> List[str]:
        nodes: List[str] = []
        for producer in reversed(self._producers.get(task.task_id, [])):
            if producer.node and producer.node not in nodes:
                nodes.append(producer.node)
        return nodes
