"""Longest-processing-time-first scheduler.

A classic makespan heuristic the COMPSs scheduler family offers knobs
for: launching the longest tasks first reduces the tail where one late
straggler holds the whole HPO study (visible in the paper's Fig. 5 where
the 3 waiting tasks determine the 207-minute total when they happen to be
long ones).

Durations are *estimated* from the task's config argument: by default the
epoch count scaled by the optimiser factor (the two knobs that dominate
the paper's training times); a custom estimator can be injected.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.runtime.scheduler.base import Scheduler
from repro.runtime.task_definition import TaskInvocation
from repro.simcluster.costmodel import DEFAULT_OPTIMIZER_FACTORS

Estimator = Callable[[TaskInvocation], float]


def default_estimate(task: TaskInvocation) -> float:
    """Relative duration estimate from the task's config mapping.

    ``epochs × optimiser_factor × (1 + steps-per-epoch weight)`` — enough
    to rank the paper's grid correctly without consulting the cost model.
    Tasks without a config rank equal (estimate 1).
    """
    config: Optional[Mapping[str, Any]] = None
    for value in (*task.args, *task.kwargs.values()):
        if isinstance(value, Mapping):
            config = value
            break
    if config is None:
        return 1.0
    epochs = float(config.get("num_epochs", config.get("epochs", 1)))
    optimizer = str(config.get("optimizer", "SGD"))
    factor = float(DEFAULT_OPTIMIZER_FACTORS.get(optimizer, 1.0))
    batch = float(config.get("batch_size", 64))
    step_weight = 1.0 + 16.0 / max(batch, 1.0)
    return epochs * factor * step_weight


class LPTScheduler(Scheduler):
    """Longest estimated task first; ties break by submission order."""

    def __init__(self, estimator: Optional[Estimator] = None):
        self.estimator = estimator or default_estimate

    def sort_key(self, task: TaskInvocation):
        return (-self.estimator(task), task.task_id)
