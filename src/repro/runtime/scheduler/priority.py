"""Priority scheduler.

``@task(priority=True)`` asks the runtime "to schedule that task as soon
as possible" (paper §3).  Priority tasks jump the queue; ties break by
submission order.
"""

from __future__ import annotations

from repro.runtime.scheduler.base import Scheduler
from repro.runtime.task_definition import TaskInvocation


class PriorityScheduler(Scheduler):
    """Priority-first, then submission order."""

    def sort_key(self, task: TaskInvocation):
        return (not task.definition.priority, task.task_id)
