"""FIFO scheduler: strict submission order, first-fit placement.

This is the behaviour visible in the paper's traces: 24 tasks start
immediately on the 24 free cores and the remaining 3 start "as soon as a
new resource is available" (Fig. 5).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.runtime.scheduler.base import Scheduler
from repro.runtime.task_definition import TaskInvocation


class FIFOScheduler(Scheduler):
    """Submission-order scheduling."""

    def order(self, ready: Sequence[TaskInvocation]) -> List[TaskInvocation]:
        return sorted(ready, key=lambda t: t.task_id)
