"""FIFO scheduler: strict submission order, first-fit placement.

This is the behaviour visible in the paper's traces: 24 tasks start
immediately on the 24 free cores and the remaining 3 start "as soon as a
new resource is available" (Fig. 5).
"""

from __future__ import annotations

from repro.runtime.scheduler.base import Scheduler


class FIFOScheduler(Scheduler):
    """Submission-order scheduling (the base ``sort_key`` is task_id)."""
