"""Pluggable task schedulers."""

from repro.runtime.scheduler.base import Assignment, Scheduler
from repro.runtime.scheduler.fifo import FIFOScheduler
from repro.runtime.scheduler.priority import PriorityScheduler
from repro.runtime.scheduler.locality import LocalityScheduler
from repro.runtime.scheduler.lpt import LPTScheduler

_SCHEDULERS = {
    "fifo": FIFOScheduler,
    "priority": PriorityScheduler,
    "locality": LocalityScheduler,
    "lpt": LPTScheduler,
}


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name (``fifo``/``priority``/``locality``/``lpt``)."""
    try:
        return _SCHEDULERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(_SCHEDULERS)}"
        ) from None


__all__ = [
    "Assignment",
    "Scheduler",
    "FIFOScheduler",
    "PriorityScheduler",
    "LocalityScheduler",
    "LPTScheduler",
    "get_scheduler",
]
