"""Scheduler interface.

A scheduler is a pure policy: given the ready tasks (in submission order)
and the resource pool, produce assignments.  Tasks it cannot place remain
queued; the paper's §4 behaviour — "if no further resources are available,
tasks wait for the resources … the next task is assigned a computational
unit as soon as one is available" — falls out of re-running the scheduler
on every task completion.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.runtime.fault import UnsatisfiableError
from repro.runtime.resources import Allocation, ResourcePool
from repro.runtime.task_definition import TaskDefinition, TaskInvocation


@dataclass
class Assignment:
    """A task placed on concrete resources, with the chosen implementation.

    ``extra_allocations`` holds the additional per-node allocations of a
    ``@multinode`` task (empty for ordinary tasks).
    """

    task: TaskInvocation
    allocation: Allocation
    implementation: TaskDefinition
    extra_allocations: List[Allocation] = field(default_factory=list)

    @property
    def all_allocations(self) -> List[Allocation]:
        """Primary plus extra allocations."""
        return [self.allocation, *self.extra_allocations]


def release_assignment(pool: ResourcePool, assignment: Assignment) -> None:
    """Release every allocation an assignment holds."""
    for alloc in assignment.all_allocations:
        pool.release(alloc)


class Scheduler(abc.ABC):
    """Abstract scheduling policy.

    A policy is fully described by :meth:`sort_key` (total order over
    ready tasks) plus :meth:`preferred_nodes` (node preference per task).
    Both the classic batch :meth:`assign` and the incremental
    :class:`~repro.runtime.dispatch.DispatchEngine` fast path place tasks
    in exactly the ``sort_key`` order, so the two paths produce identical
    assignments.
    """

    def sort_key(self, task: TaskInvocation):
        """Comparable policy key; smaller schedules first.

        Must be static per task (it is computed once when the task enters
        the dispatch queue).  The default is submission order.
        """
        return task.task_id

    def order(self, ready: Sequence[TaskInvocation]) -> List[TaskInvocation]:
        """Order the ready queue (policy-specific, via :meth:`sort_key`)."""
        return sorted(ready, key=self.sort_key)

    #: Shared "no preference" result — callers only read it, and
    #: returning one list avoids an allocation per placement probe.
    _NO_PREFERENCE: List[str] = []

    def preferred_nodes(self, task: TaskInvocation) -> List[str]:
        """Nodes to try first for ``task`` (default: none; read-only)."""
        return self._NO_PREFERENCE

    def assign(
        self, ready: Sequence[TaskInvocation], pool: ResourcePool
    ) -> Tuple[List[Assignment], List[TaskInvocation]]:
        """Place as many ready tasks as possible.

        Returns ``(assignments, still_waiting)``.  ``still_waiting``
        preserves the order the tasks were handed in (submission order in
        every caller), so FIFO fairness is kept across scheduling rounds
        without re-sorting the queue on every event.

        Tasks whose constraint excludes every failed node they've been
        resubmitted from are placed anywhere else; a task no live node
        could ever host raises ``RuntimeError`` (unsatisfiable constraint)
        rather than waiting forever.
        """
        # Quarantine is a round-level property: compute it once, not per
        # task (NodeHealth walks its event windows on every call).
        quarantined = pool.blocked_nodes()
        assignments: List[Assignment] = []
        placed_ids = set()
        for task in self.order(list(ready)):
            try:
                placed = self._try_place(task, pool, quarantined)
            except UnsatisfiableError as exc:
                if exc.permanent:
                    raise
                # Starved (capable nodes exist but are all dead/draining):
                # leave the task waiting — a rejoin may still save it.
                placed = None
            if placed is not None:
                assignments.append(placed)
                placed_ids.add(task.task_id)
        waiting = [t for t in ready if t.task_id not in placed_ids]
        return assignments, waiting

    def _try_place(
        self,
        task: TaskInvocation,
        pool: ResourcePool,
        quarantined: Optional[Sequence[str]] = None,
        only: Optional[set] = None,
    ) -> Optional[Assignment]:
        """Try each candidate implementation until one fits a node.

        Besides the task's own failure history, quarantined nodes (per the
        pool's NodeHealth tracker) are avoided: a flaky node stops
        receiving work until its cool-down expires.  Both sets fall back
        to "use anyway" when no other node can take the task, so
        quarantine degrades capacity gracefully instead of stalling the
        study.  ``quarantined`` lets the caller compute the blocked set
        once per scheduling round instead of once per task.

        ``only`` (dispatch fast path) restricts single-node probes to the
        given node set — the engine passes the nodes that have freed
        capacity since this task's class was last conclusively blocked, so
        re-probes after a wake are O(woken) instead of O(cluster).  It is
        ignored whenever there are nodes to avoid (failure/quarantine
        paths have wait-vs-last-resort semantics that need the full scan)
        and for multi-node constraints.  The unsatisfiable verdict is
        always computed unrestricted, so restriction never changes *what*
        is placed or raised, only how many nodes are probed.
        """
        if quarantined is None:
            quarantined = pool.blocked_nodes()
        failed = task.failed_nodes
        if failed or quarantined:
            avoid = list(failed) + [n for n in quarantined if n not in failed]
        else:
            avoid = []
        candidates = task.definition.all_candidates()
        if not avoid:
            # Hot path: probe allocations first and compute the
            # unsatisfiable verdict lazily below — the verdict needs a
            # full candidate scan that successful probes never use.
            preferred = self.preferred_nodes(task)
            for impl in candidates:
                rc = impl.constraint
                if rc.nodes > 1:
                    allocs = self._allocate_multinode(pool, rc, avoid)
                    if allocs is not None:
                        return Assignment(task, allocs[0], impl, allocs[1:])
                    continue
                alloc = pool.try_allocate(rc, preferred=preferred, only=only)
                if alloc is not None:
                    return Assignment(task, alloc, impl)
            if only is not None:
                # Restricted wake re-probe: the class was conclusively
                # blocked by an earlier *unrestricted* round, which
                # already proved the task satisfiable, and any topology
                # change (node death/retire) clears restrictions via a
                # full wake — so skip the verdict scan.
                return None
        else:
            preferred = [
                n for n in self.preferred_nodes(task) if n not in avoid
            ]
            for impl in candidates:
                rc = impl.constraint
                if rc.nodes > 1:
                    allocs = self._allocate_multinode(pool, rc, avoid)
                    if allocs is not None:
                        return Assignment(task, allocs[0], impl, allocs[1:])
                    continue
                alloc = self._allocate_avoiding(pool, rc, preferred, avoid)
                if alloc is not None:
                    return Assignment(task, alloc, impl)
        any_possible = False
        any_static = False
        for impl in candidates:
            rc = impl.constraint
            if pool.static_candidates(rc):
                any_static = True
            if pool.anyone_could_ever_host(rc):
                any_possible = True
                break
        if not any_possible:
            names = ", ".join(i.constraint.describe() for i in candidates)
            raise UnsatisfiableError(
                f"task {task.label} is unsatisfiable: no live node can host "
                f"any implementation ({names})",
                task_label=task.label,
                constraint=names,
                permanent=not any_static,
            )
        return None

    @staticmethod
    def _allocate_multinode(
        pool: ResourcePool, rc, avoid: List[str]
    ) -> Optional[List[Allocation]]:
        """Allocate ``rc.cpu_units``/``rc.gpu_units`` on ``rc.nodes`` distinct nodes.

        All-or-nothing: partial allocations are rolled back.  Failed nodes
        are avoided when enough alternatives exist.
        """
        per_node = rc.per_node()
        allocs: List[Allocation] = []
        candidates = [
            w for w in pool.available_workers() if w.name not in avoid
        ] + [w for w in pool.available_workers() if w.name in avoid]
        for worker in candidates:
            if len(allocs) == rc.nodes:
                break
            if worker.name in {a.node for a in allocs}:
                continue
            alloc = pool.try_allocate(per_node, preferred=[worker.name])
            if alloc is None:
                break
            if alloc.node != worker.name or alloc.node in {a.node for a in allocs}:
                pool.release(alloc)
                continue
            allocs.append(alloc)
        if len(allocs) == rc.nodes:
            return allocs
        for a in allocs:
            pool.release(a)
        return None

    @staticmethod
    def _allocate_avoiding(
        pool: ResourcePool,
        rc,
        preferred: List[str],
        avoid: List[str],
    ) -> Optional[Allocation]:
        """Allocate, preferring ``preferred`` and avoiding ``avoid`` nodes.

        Fault-tolerance rule (paper §4): after a same-node retry fails the
        task is restarted *in another node* — hence ``avoid``.  If only
        avoided nodes remain, they are used as a last resort.
        """
        if avoid:
            order = [w.name for w in pool.available_workers() if w.name not in avoid]
            pref = [p for p in preferred if p not in avoid] + order
            alloc = pool.try_allocate(rc, preferred=pref)
            if alloc is not None and alloc.node in avoid:
                pool.release(alloc)
                alloc = None
            if alloc is not None:
                return alloc
            # Some non-avoided node could host this task once its current
            # work drains: wait for it rather than using an avoided node.
            for w in pool.available_workers():
                if w.name not in avoid and w.could_ever_host(rc):
                    return None
            # Last resort: every viable node is failed/quarantined.
            return pool.try_allocate(rc, preferred=preferred)
        return pool.try_allocate(rc, preferred=preferred)
