"""Executors: real local execution and simulated-cluster execution."""

from repro.runtime.executor.base import Executor
from repro.runtime.executor.local import LocalExecutor
from repro.runtime.executor.simulated import SimulatedExecutor

__all__ = ["Executor", "LocalExecutor", "SimulatedExecutor"]
