"""Executor interface and shared helpers.

An executor owns *when and where task bodies run*; the runtime owns the
graph and data bookkeeping.  Both executors share the same scheduler and
resource pool, so scheduling behaviour (FIFO waves, constraint matching,
fault handling) is identical between real and simulated execution — only
the clock differs.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.runtime.future import Future, is_future
from repro.runtime.task_definition import TaskInvocation

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import COMPSsRuntime


class Executor(abc.ABC):
    """Abstract execution engine."""

    def __init__(self) -> None:
        self.runtime: Optional["COMPSsRuntime"] = None

    def bind(self, runtime: "COMPSsRuntime") -> None:
        """Attach to a runtime (graph, pool, scheduler, tracer, policy)."""
        self.runtime = runtime

    def clock(self) -> float:
        """Current time in this executor's clock (wall or virtual)."""
        return 0.0

    @abc.abstractmethod
    def notify_submitted(self, task: TaskInvocation) -> None:
        """A task entered the graph; the executor may start it eagerly."""

    @abc.abstractmethod
    def wait_for(self, tasks: Sequence[TaskInvocation]) -> None:
        """Block (in real or virtual time) until ``tasks`` are all done.

        Raises :class:`repro.runtime.fault.TaskFailedError` if any of them
        exhausted its retry budget.
        """

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Release threads/queues; the executor is unusable afterwards."""

    def notify_topology_change(self) -> None:
        """The pool's node set changed (add/drain/fail/recover).

        The dispatch engine has already buffered the wake via the pool's
        listener protocol; this hook gives the executor a chance to run a
        scheduling round *now* so waiting tasks reach the new capacity
        without waiting for the next completion.  The default is a no-op
        (executors whose event loop polls, e.g. during ``wait_for``,
        pick the wake up there).
        """

    def notify_task_resolutions(self) -> None:
        """Task states changed outside the executor's completion paths.

        Called after out-of-band terminal transitions — e.g. the service
        layer abandoning a whole study — so blocked ``wait_for`` calls
        rescan and observe the failures.  Default no-op (polling
        executors pick the change up on their next scan).
        """

    def drain_node(self, node: str, deadline_s: float) -> None:
        """Begin honouring a drain: finish ``node``'s running tasks, then
        retire it; escalate to a node failure at ``deadline_s``.

        The pool state (DRAINING) and data spill are handled by the
        runtime before this is called; executors that track in-flight
        attempts override this to watch for the last one finishing and to
        arm the deadline.  The default retires the node immediately when
        it is idle and otherwise leaves it DRAINING (a conservative,
        deadline-less drain).
        """
        runtime = self.runtime
        if runtime is not None and not self.node_busy(node):
            runtime.finish_drain(node)

    def node_busy(self, node: str) -> bool:
        """Whether the executor has attempts in flight on ``node``."""
        return False

    def abort_task(self, task: TaskInvocation) -> bool:
        """Cancel the in-flight attempts of ``task`` (lineage recovery).

        Returns True only if every attempt was discarded *before*
        producing a result, so the task can safely re-enter the graph's
        ready set once its re-materialised inputs land.  The default is
        False: the local executor's threads resolved their arguments at
        start and keep running on the pre-loss in-memory values, which is
        correct (process memory is not what a simulated node loss
        destroys).
        """
        return False

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def resolve_arguments(
        task: TaskInvocation,
    ) -> Tuple[Tuple[Any, ...], Dict[str, Any]]:
        """Replace future arguments with their resolved values.

        Dependencies guarantee producers completed before this is called.
        """

        def contains_future(v: Any) -> bool:
            if is_future(v):
                return True
            if isinstance(v, (list, tuple, set)):
                return any(contains_future(i) for i in v)
            if isinstance(v, dict):
                return any(contains_future(i) for i in v.values())
            return False

        def resolve(v: Any) -> Any:
            if is_future(v):
                return v.result()
            # Rebuild containers only when they actually hold futures —
            # otherwise the original object must be passed through so
            # INOUT mutations land on the caller's object.
            if not contains_future(v):
                return v
            if isinstance(v, list):
                return [resolve(i) for i in v]
            if isinstance(v, tuple):
                return tuple(resolve(i) for i in v)
            if isinstance(v, set):
                return {resolve(i) for i in v}
            if isinstance(v, dict):
                return {k: resolve(i) for k, i in v.items()}
            return v

        args = tuple(resolve(a) for a in task.args)
        kwargs = {k: resolve(v) for k, v in task.kwargs.items()}
        return args, kwargs

    @staticmethod
    def fan_out_result(task: TaskInvocation, futures: List[Future], result: Any) -> None:
        """Distribute a task's return value into its future slots."""
        n = len(futures)
        if n == 0:
            return
        if n == 1:
            futures[0].set_result(result)
            return
        try:
            values = list(result)
        except TypeError:
            raise TypeError(
                f"task {task.label} declared {n} returns but produced a "
                f"non-iterable {type(result).__name__}"
            ) from None
        if len(values) != n:
            raise ValueError(
                f"task {task.label} declared {n} returns but produced "
                f"{len(values)} values"
            )
        for fut, value in zip(futures, values):
            fut.set_result(value)
