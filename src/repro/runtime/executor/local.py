"""Real local execution on threads (optionally process-backed bodies).

Tasks run eagerly as resources free up, exactly like the COMPSs worker:
the dispatch loop re-runs on every submission and completion, so "the
next task is assigned a computational unit as soon as one is available"
(paper §6.1).

Thread backend: task bodies run in a thread pool; numpy releases the GIL
inside BLAS so training tasks overlap genuinely.  Process backend: bodies
are shipped to a :class:`concurrent.futures.ProcessPoolExecutor` (they
must be picklable, i.e. module-level functions with picklable args).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence

from repro.runtime.executor.base import Executor
from repro.runtime.fault import FaultAction, TaskFailedError
from repro.runtime.resources import Allocation
from repro.runtime.scheduler.base import Assignment, release_assignment
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.runtime.tracing.extrae import TaskRecord
from repro.util.logging_utils import get_logger
from repro.util.validation import check_one_of, check_positive

_log = get_logger("runtime.executor.local")


class LocalExecutor(Executor):
    """Threaded executor over the runtime's resource pool.

    Parameters
    ----------
    backend:
        ``"threads"`` (default) or ``"processes"`` for the task bodies.
    max_parallel:
        Cap on simultaneously-running bodies (defaults to the pool's
        task-usable CPU count, min 1).
    """

    def __init__(self, backend: str = "threads", max_parallel: Optional[int] = None):
        super().__init__()
        check_one_of("backend", backend, ["threads", "processes"])
        self.backend = backend
        self.max_parallel = max_parallel
        self._lock = threading.RLock()
        self._done_cond = threading.Condition(self._lock)
        self._threads: Optional[ThreadPoolExecutor] = None
        self._procs: Optional[ProcessPoolExecutor] = None
        self._epoch = time.perf_counter()
        self._shutdown = False

    # ------------------------------------------------------------------
    def bind(self, runtime) -> None:
        super().bind(runtime)
        # Share the runtime's lock so graph mutations from submit() (main
        # thread) and dispatch/completion (worker threads) are serialised.
        self._lock = runtime.lock
        self._done_cond = threading.Condition(self._lock)
        n = self.max_parallel or max(1, runtime.pool.total_task_cpus)
        check_positive("max_parallel", n)
        self._threads = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="repro-worker"
        )
        if self.backend == "processes":
            self._procs = ProcessPoolExecutor(max_workers=n)

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def notify_submitted(self, task: TaskInvocation) -> None:
        self._dispatch()

    def _dispatch(self) -> None:
        """Schedule every placeable ready task (thread-safe)."""
        assert self.runtime is not None and self._threads is not None
        with self._lock:
            if self._shutdown:
                return
            ready = self.runtime.graph.pop_ready()
            if not ready:
                return
            assignments, waiting = self.runtime.scheduler.assign(
                ready, self.runtime.pool
            )
            self.runtime.graph.requeue(waiting)
            for assignment in assignments:
                assignment.task.state = TaskState.RUNNING
                self._threads.submit(self._run_attempt, assignment)

    # ------------------------------------------------------------------
    # Attempt execution
    # ------------------------------------------------------------------
    def _run_attempt(self, assignment: Assignment) -> None:
        assert self.runtime is not None
        task = assignment.task
        alloc = assignment.allocation
        start = self._now()
        task.node = alloc.node
        self.runtime.tracer.record_event(start, "task_start", task.label, alloc.node)
        try:
            result = self._execute_body(task, assignment, alloc)
        except BaseException as exc:  # noqa: BLE001 - any body error goes to fault handling
            self._on_failure(assignment, exc, start)
            return
        self._on_success(assignment, result, start)

    def _execute_body(
        self, task: TaskInvocation, assignment: Assignment, alloc: Allocation
    ):
        assert self.runtime is not None
        injector = self.runtime.failure_injector
        if injector is not None and injector.should_fail(task.label, task.attempts):
            raise RuntimeError(
                f"injected failure for {task.label} attempt {task.attempts}"
            )
        args, kwargs = self.resolve_arguments(task)
        func = assignment.implementation.func
        if self._procs is not None:
            return self._procs.submit(func, *args, **kwargs).result()
        return func(*args, **kwargs)

    def _on_success(self, assignment: Assignment, result, start: float) -> None:
        assert self.runtime is not None
        task = assignment.task
        end = self._now()
        self._record(task, assignment, start, end, success=True)
        release_assignment(self.runtime.pool, assignment)
        with self._lock:
            task.result = result
            task.start_time, task.end_time = start, end
            self.runtime.complete_task(task, result)
            self._done_cond.notify_all()
        self._dispatch()

    def _on_failure(
        self, assignment: Assignment, exc: BaseException, start: float
    ) -> None:
        assert self.runtime is not None
        task = assignment.task
        end = self._now()
        task.attempts += 1
        self._record(task, assignment, start, end, success=False)
        action = self.runtime.retry_policy.decide(task)
        _log.info("task %s failed (attempt %d): %s -> %s",
                  task.label, task.attempts, exc, action.value)
        if action == FaultAction.RETRY_SAME_NODE:
            # Keep the allocation; rerun in place (paper: "tries to start
            # the same task in the same node").
            retry_start = self._now()
            try:
                result = self._execute_body(task, assignment, assignment.allocation)
            except BaseException as exc2:  # noqa: BLE001
                self._on_failure(assignment, exc2, retry_start)
                return
            self._on_success(assignment, result, retry_start)
            return
        release_assignment(self.runtime.pool, assignment)
        if action == FaultAction.RESUBMIT_OTHER_NODE:
            with self._lock:
                task.failed_nodes.append(assignment.allocation.node)
                task.state = TaskState.READY
                self.runtime.graph.requeue([task])
            self._dispatch()
            return
        # GIVE_UP
        with self._lock:
            task.state = TaskState.FAILED
            task.error = exc
            self._done_cond.notify_all()

    def _record(
        self,
        task: TaskInvocation,
        assignment: Assignment,
        start: float,
        end: float,
        success: bool,
    ) -> None:
        assert self.runtime is not None
        for alloc in assignment.all_allocations:
            self.runtime.tracer.record_task(
                TaskRecord(
                    task_label=task.label,
                    task_name=task.definition.name,
                    node=alloc.node,
                    cpu_ids=alloc.cpu_ids,
                    gpu_ids=alloc.gpu_ids,
                    start=start,
                    end=end,
                    success=success,
                    attempt=task.attempts,
                )
            )

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def wait_for(self, tasks: Sequence[TaskInvocation]) -> None:
        with self._done_cond:
            while True:
                failed = [t for t in tasks if t.state == TaskState.FAILED]
                if failed:
                    t = failed[0]
                    raise TaskFailedError(t, t.error or RuntimeError("unknown"))
                if all(t.state == TaskState.DONE for t in tasks):
                    return
                self._done_cond.wait(timeout=0.5)

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        if self._procs is not None:
            self._procs.shutdown(wait=True)
