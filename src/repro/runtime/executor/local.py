"""Real local execution on threads (optionally process-backed bodies).

Tasks run eagerly as resources free up, exactly like the COMPSs worker:
the dispatch loop re-runs on every submission and completion, so "the
next task is assigned a computational unit as soon as one is available"
(paper §6.1).

Thread backend: task bodies run in a thread pool; numpy releases the GIL
inside BLAS so training tasks overlap genuinely.  Process backend: bodies
are shipped to a :class:`concurrent.futures.ProcessPoolExecutor` (they
must be picklable, i.e. module-level functions with picklable args); a
worker crash breaks *that attempt only* — the broken pool is rebuilt and
the attempt becomes a retryable
:class:`~repro.runtime.fault.WorkerCrashError`.

Resilience: with ``task_timeout_s`` set, bodies run behind a wall-clock
deadline — a hung body becomes a retryable
:class:`~repro.runtime.fault.TaskTimeoutError`.  On the *thread* backend
the abandoned body keeps its thread until it returns (CPython threads
cannot be killed), so the deadline frees the task but not the OS
resources; the supervised worker pool
(:class:`~repro.runtime.executor.workers.WorkerPoolExecutor`,
``backend="workers"``) lifts that limitation by hard-killing the worker
process at the deadline.  With ``speculation_multiplier`` set, a
watchdog thread backs up straggling tasks on another node and the first
finisher wins.  Retries honour the policy's exponential backoff, and
every attempt outcome feeds the runtime's node-health tracker.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from repro.runtime import checkpoint as ckpt
from repro.runtime import integrity as igr
from repro.runtime import resilience as rsl
from repro.runtime.executor.base import Executor
from repro.runtime.fault import (
    FaultAction,
    ResourceStarvationError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runtime.resources import Allocation
from repro.runtime.scheduler.base import Assignment, release_assignment
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.runtime.tracing.extrae import TaskRecord
from repro.util.logging_utils import get_logger
from repro.util.validation import check_one_of, check_positive

_log = get_logger("runtime.executor.local")


class _LocalAttempt:
    """Bookkeeping for one in-flight attempt (primary or backup)."""

    __slots__ = ("assignment", "start", "speculative")

    def __init__(self, assignment: Assignment, start: float, speculative: bool):
        self.assignment = assignment
        self.start = start
        self.speculative = speculative


class LocalExecutor(Executor):
    """Threaded executor over the runtime's resource pool.

    Parameters
    ----------
    backend:
        ``"threads"`` (default) or ``"processes"`` for the task bodies.
    max_parallel:
        Cap on simultaneously-running bodies (defaults to the pool's
        task-usable CPU count, min 1).
    """

    #: Watchdog poll interval for straggler detection (seconds).
    SPECULATION_POLL_S = 0.02

    def __init__(self, backend: str = "threads", max_parallel: Optional[int] = None):
        super().__init__()
        check_one_of("backend", backend, ["threads", "processes"])
        self.backend = backend
        self.max_parallel = max_parallel
        self._procs_lock = threading.Lock()
        self._procs_workers = 1
        self._lock = threading.RLock()
        self._done_cond = threading.Condition(self._lock)
        self._threads: Optional[ThreadPoolExecutor] = None
        self._procs: Optional[ProcessPoolExecutor] = None
        #: Deadline-guarded bodies run here (created when timeouts are on).
        self._bodies: Optional[ThreadPoolExecutor] = None
        self._watchdog: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        #: task_id -> attempts currently in flight (two while a backup races).
        self._active: Dict[int, List[_LocalAttempt]] = {}
        #: node -> armed drain-deadline timer (graceful drain in progress).
        self._draining: Dict[str, threading.Timer] = {}
        #: Bumped (under the lock) whenever a task resolves; lets
        #: ``wait_for`` skip rescans on pure-timeout wake-ups.
        self._resolutions = 0
        self._epoch = time.perf_counter()
        self._shutdown = False

    # ------------------------------------------------------------------
    def bind(self, runtime) -> None:
        super().bind(runtime)
        # Share the runtime's lock so graph mutations from submit() (main
        # thread) and dispatch/completion (worker threads) are serialised.
        self._lock = runtime.lock
        self._done_cond = threading.Condition(self._lock)
        n = self.max_parallel or max(1, runtime.pool.total_task_cpus)
        check_positive("max_parallel", n)
        self._threads = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="repro-worker"
        )
        self._bind_backend(n)
        if runtime.straggler is not None:
            self._watchdog = threading.Thread(
                target=self._speculation_loop,
                name="repro-speculation",
                daemon=True,
            )
            self._watchdog.start()

    def _bind_backend(self, n: int) -> None:
        """Create the body-execution backend (hook for subclasses)."""
        assert self.runtime is not None
        if self.backend == "processes":
            self._procs_workers = n
            self._procs = ProcessPoolExecutor(max_workers=n)
        if self.runtime.config.task_timeout_s is not None and self._procs is None:
            # Bodies get their own pool so a worker thread can abandon a
            # hung body at the deadline; a few spare slots absorb
            # abandoned-but-still-running bodies.
            self._bodies = ThreadPoolExecutor(
                max_workers=n + 4, thread_name_prefix="repro-body"
            )

    def _rebuild_procs(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken process pool so one crash poisons one attempt.

        A worker crash marks the whole ``ProcessPoolExecutor`` broken:
        every later ``submit`` raises :class:`BrokenProcessPool`.  All
        concurrently-failed attempts race here; the identity check makes
        exactly one of them rebuild.
        """
        with self._procs_lock:
            if self._procs is broken:
                broken.shutdown(wait=False)
                self._procs = ProcessPoolExecutor(max_workers=self._procs_workers)
                _log.warning(
                    "process pool broken by a worker crash; rebuilt with %d workers",
                    self._procs_workers,
                )

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def clock(self) -> float:
        return self._now()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def notify_submitted(self, task: TaskInvocation) -> None:
        self._dispatch()

    def notify_topology_change(self) -> None:
        """Run a scheduling round now (node added / drained / rejoined)."""
        self._dispatch()

    def notify_task_resolutions(self) -> None:
        """Wake blocked waiters after out-of-band terminal transitions."""
        if self._done_cond is None:
            return
        with self._done_cond:
            self._resolutions += 1
            self._done_cond.notify_all()

    def _dispatch(self) -> None:
        """Incremental scheduling round (thread-safe).

        Newly-ready tasks join the dispatch engine's per-constraint-class
        queues; the engine probes only class heads and skips classes
        whose capacity hasn't changed since they last failed to place.
        Releases from completion threads are buffered by the engine and
        drained at the start of the round.  Each round also completes any
        drain whose node went idle and reaps starved-out classes.
        """
        assert self.runtime is not None and self._threads is not None
        self._check_drains()
        self._reap_starved()
        with self._lock:
            if self._shutdown:
                return
            runtime = self.runtime
            runtime.dispatcher.ingest(runtime.graph.pop_ready())
            for assignment in runtime.dispatcher.schedule_round():
                assignment.task.state = TaskState.RUNNING
                self._threads.submit(self._run_attempt, assignment)

    # ------------------------------------------------------------------
    # Graceful drain / starvation watchdog
    # ------------------------------------------------------------------
    def node_busy(self, node: str) -> bool:
        with self._lock:
            return any(
                al.node == node
                for attempts in self._active.values()
                for attempt in attempts
                for al in attempt.assignment.all_allocations
            )

    def drain_node(self, node: str, deadline_s: float) -> None:
        """Honour a drain: watch for the last attempt, arm the deadline."""
        assert self.runtime is not None
        if not self.node_busy(node):
            self.runtime.finish_drain(node)
            self._dispatch()
            return
        with self._lock:
            previous = self._draining.pop(node, None)
            if previous is not None:
                previous.cancel()
            timer = threading.Timer(
                float(deadline_s), self._drain_deadline, args=(node,)
            )
            timer.daemon = True
            self._draining[node] = timer
            timer.start()

    def _check_drains(self) -> None:
        """Complete any drain whose node has gone idle."""
        assert self.runtime is not None
        with self._lock:
            if not self._draining:
                return
            idle = [n for n in sorted(self._draining) if not self.node_busy(n)]
            for node in idle:
                self._draining.pop(node).cancel()
        for node in idle:
            self.runtime.finish_drain(node)

    def _drain_deadline(self, node: str) -> None:
        """The drain window closed (timer thread); force the node out."""
        assert self.runtime is not None
        runtime = self.runtime
        with self._lock:
            if self._shutdown or node not in self._draining:
                return
            del self._draining[node]
            worker = runtime.pool.workers.get(node)
            if worker is None or not worker.draining:
                return
            busy = self.node_busy(node)
        if not busy:
            runtime.finish_drain(node)
            self._dispatch()
            return
        # Local attempts run in this process, so their in-flight results
        # stay valid after the node is forced out — no data is destroyed;
        # the slots are simply gone for future placements.
        flagged = runtime.preemption.suspended_count()
        runtime.resilience.record(
            self._now(), rsl.DRAIN_DEADLINE, "", node,
            detail="attempts still running; node forcibly retired"
            + (f"; {flagged} suspend-flagged trial(s) warm-resumable"
               if flagged else ""),
        )
        runtime.pool.retire_worker(node)
        self._dispatch()

    def _reap_starved(self) -> None:
        """Fail every task whose constraint class starved past the timeout."""
        assert self.runtime is not None
        runtime = self.runtime
        deadline = runtime.dispatcher.next_starvation_deadline()
        if deadline is None or self._now() < deadline:
            return
        with self._lock:
            victims = runtime.dispatcher.reap_starved()
            for task, waited in victims:
                names = ", ".join(
                    impl.constraint.describe()
                    for impl in task.definition.all_candidates()
                )
                exc = ResourceStarvationError(task.label, names, waited)
                task.attempt_history.append(f"starved for {waited:g}s: {exc}")
                task.state = TaskState.FAILED
                task.error = exc
                runtime.journal_task_event(task, ckpt.FAILED, node="")
                runtime.fail_descendants(task, self._now())
            if victims:
                self._resolutions += 1
                self._done_cond.notify_all()

    # ------------------------------------------------------------------
    # Attempt execution
    # ------------------------------------------------------------------
    def _run_attempt(self, assignment: Assignment, speculative: bool = False) -> None:
        assert self.runtime is not None
        task = assignment.task
        alloc = assignment.allocation
        start = self._now()
        attempt = _LocalAttempt(assignment, start, speculative)
        with self._lock:
            if task.state in (TaskState.DONE, TaskState.FAILED):
                # The task resolved before this (backup) attempt started.
                release_assignment(self.runtime.pool, assignment)
                return
            self._active.setdefault(task.task_id, []).append(attempt)
            if not speculative:
                task.node = alloc.node
                self.runtime.journal_task_event(task, ckpt.STARTED, node=alloc.node)
        if self.runtime.tracer.enabled:
            self.runtime.tracer.record_event(
                start, "task_start", task.label, alloc.node
            )
        try:
            self._verify_inputs(task, speculative)
            result = self._execute_body(task, assignment, alloc, speculative)
        except BaseException as exc:  # noqa: BLE001 - any body error goes to fault handling
            self._on_failure(assignment, exc, start, attempt)
            return
        self._on_success(assignment, result, start, attempt)

    def _verify_inputs(self, task: TaskInvocation, speculative: bool) -> None:
        """End-to-end integrity gate: check every input before the body runs.

        A checksum mismatch on a producer's snapshot repairs in place
        from the driver's live value; an input with no intact copy left
        raises a retryable :class:`~repro.runtime.integrity.IntegrityError`
        so the attempt goes through the normal fault path.  Speculative
        backups skip the gate — they race an attempt that already passed
        it, on the same in-memory values.
        """
        assert self.runtime is not None
        integrity = self.runtime.integrity
        if integrity is None or speculative:
            return
        with self._lock:
            for producer in self.runtime.graph.predecessors(task):
                versions = self.runtime.access.versions_written_by(producer)
                if not versions:
                    continue
                outcome = integrity.verify_writer(
                    producer, versions, consumer_label=task.label
                )
                if not outcome.ok:
                    raise igr.IntegrityError(
                        f"input {','.join(outcome.corrupt)} of {task.label} "
                        "is corrupt with no intact copy"
                    )

    def _execute_body(
        self,
        task: TaskInvocation,
        assignment: Assignment,
        alloc: Allocation,
        speculative: bool = False,
    ):
        assert self.runtime is not None
        injector = self.runtime.failure_injector
        # Injected failures/hangs/slowdowns hit primary attempts only: a
        # speculative backup is a clean re-execution on another node.
        if (
            injector is not None
            and not speculative
            and injector.should_fail(task.label, task.attempts)
        ):
            raise RuntimeError(
                f"injected failure for {task.label} attempt {task.attempts}"
            )
        hang = (
            injector is not None
            and not speculative
            and injector.should_hang(task.label, task.attempts)
        )
        slow = (
            injector.slow_factor(task.label)
            if injector is not None and not speculative
            else 1.0
        )
        args, kwargs = self.resolve_arguments(task)
        func = assignment.implementation.func
        timeout = self.runtime.config.task_timeout_s

        def body():
            if hang:
                # "Hung" until the deadline abandons us; released at
                # shutdown so the thread pool can drain.
                self._stop_event.wait()
                raise TaskTimeoutError(
                    f"hung attempt of {task.label} released at shutdown"
                )
            t0 = time.perf_counter()
            result = func(*args, **kwargs)
            if slow > 1.0:
                time.sleep((slow - 1.0) * (time.perf_counter() - t0))
            return result

        if self._procs is not None:
            procs = self._procs
            try:
                future = procs.submit(func, *args, **kwargs)
                return future.result(timeout=timeout)
            except BrokenProcessPool as exc:
                # One crashed worker poisons the whole pool: rebuild it
                # and convert this attempt into a retryable crash so the
                # next submission (and this task's retry) get a live pool.
                self._rebuild_procs(procs)
                self.runtime.resilience.record(
                    self._now(), rsl.WORKER_CRASH, task.label, alloc.node,
                    detail="process pool broken; rebuilt",
                )
                raise WorkerCrashError(
                    task.label, "process pool worker died"
                ) from exc
            except FuturesTimeoutError:
                raise TaskTimeoutError(
                    f"task {task.label} exceeded its {timeout}s deadline "
                    f"on {alloc.node}"
                ) from None
        if timeout is not None:
            assert self._bodies is not None
            future = self._bodies.submit(body)
        else:
            return body()
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            raise TaskTimeoutError(
                f"task {task.label} exceeded its {timeout}s deadline "
                f"on {alloc.node}"
            ) from None

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def _detach(self, task_id: int, attempt: _LocalAttempt) -> None:
        attempts = self._active.get(task_id)
        if attempts and attempt in attempts:
            attempts.remove(attempt)
            if not attempts:
                del self._active[task_id]

    def _on_success(
        self, assignment: Assignment, result, start: float, attempt: _LocalAttempt
    ) -> None:
        assert self.runtime is not None
        task = assignment.task
        end = self._now()
        node = assignment.allocation.node
        with self._lock:
            self._detach(task.task_id, attempt)
            won = task.state not in (TaskState.DONE, TaskState.FAILED)
            if won:
                task.result = result
                task.start_time, task.end_time = start, end
                task.node = node
                if attempt.speculative:
                    self.runtime.resilience.record(
                        end, rsl.SPECULATION_WON, task.label, node,
                        detail=f"backup finished first after {end - start:.2f}s",
                    )
                self.runtime.complete_task(task, result)
                self._resolutions += 1
                self._done_cond.notify_all()
        if not won:
            # A faster attempt already resolved the task; discard quietly.
            release_assignment(self.runtime.pool, assignment)
            self.runtime.resilience.record(
                end, rsl.SPECULATION_CANCELLED, task.label, node,
                detail="slower attempt discarded",
            )
            return
        self._record(task, assignment, start, end, success=True)
        release_assignment(self.runtime.pool, assignment)
        self.runtime.node_health.record_success(node)
        if self.runtime.straggler is not None:
            self.runtime.straggler.observe(task.definition.name, end - start)
        self._dispatch()

    def _decide_action(self, task: TaskInvocation, exc: BaseException) -> FaultAction:
        """Retry decision for one failed attempt (hook for subclasses).

        The worker-pool backend overrides this to make
        :class:`~repro.runtime.fault.PoisonTaskError` terminal.
        """
        return self.runtime.retry_policy.decide(task)

    def _on_failure(
        self,
        assignment: Assignment,
        exc: BaseException,
        start: float,
        attempt: _LocalAttempt,
    ) -> None:
        assert self.runtime is not None
        task = assignment.task
        end = self._now()
        node = assignment.allocation.node
        task.attempts += 1
        self._record(task, assignment, start, end, success=False)
        if isinstance(exc, TaskTimeoutError):
            self.runtime.resilience.record(
                end, rsl.TIMEOUT, task.label, node,
                detail=f"deadline {self.runtime.config.task_timeout_s}s",
            )
            self.runtime.node_health.record_failure(node, kind="timeout")
        else:
            self.runtime.node_health.record_failure(node)
        with self._lock:
            self._detach(task.task_id, attempt)
            racing = (
                task.state in (TaskState.DONE, TaskState.FAILED)
                or bool(self._active.get(task.task_id))
            )
        if racing:
            # Another attempt already resolved (or is still racing) this
            # task: this failure must not consume the retry budget's
            # terminal decision.
            release_assignment(self.runtime.pool, assignment)
            task.attempt_history.append(
                f"attempt {task.attempts} on {node}: {exc!r} -> "
                "another attempt racing"
            )
            return
        action = self._decide_action(task, exc)
        task.attempt_history.append(
            f"attempt {task.attempts} on {node}: {exc!r} -> {action.value}"
        )
        _log.info("task %s failed (attempt %d): %s -> %s",
                  task.label, task.attempts, exc, action.value)
        if action != FaultAction.GIVE_UP:
            delay = self.runtime.retry_policy.backoff_delay(
                task.label, task.attempts
            )
            if delay > 0.0:
                self.runtime.resilience.record(
                    end, rsl.BACKOFF_WAIT, task.label, node,
                    detail=f"{delay:.2f}s before {action.value}",
                )
                time.sleep(delay)
        if action == FaultAction.RETRY_SAME_NODE:
            # Keep the allocation; rerun in place (paper: "tries to start
            # the same task in the same node").
            retry_start = self._now()
            retry_attempt = _LocalAttempt(assignment, retry_start, attempt.speculative)
            with self._lock:
                self._active.setdefault(task.task_id, []).append(retry_attempt)
            try:
                self._verify_inputs(task, attempt.speculative)
                result = self._execute_body(
                    task, assignment, assignment.allocation, attempt.speculative
                )
            except BaseException as exc2:  # noqa: BLE001
                self._on_failure(assignment, exc2, retry_start, retry_attempt)
                return
            self._on_success(assignment, result, retry_start, retry_attempt)
            return
        release_assignment(self.runtime.pool, assignment)
        if action == FaultAction.RESUBMIT_OTHER_NODE:
            with self._lock:
                task.failed_nodes.append(node)
                task.state = TaskState.READY
                self.runtime.graph.requeue([task])
            self._dispatch()
            return
        # GIVE_UP
        with self._lock:
            task.state = TaskState.FAILED
            task.error = exc
            self.runtime.journal_task_event(task, ckpt.FAILED, node=node)
            self.runtime.fail_descendants(task, end)
            self._resolutions += 1
            self._done_cond.notify_all()

    # ------------------------------------------------------------------
    # Speculative re-execution (watchdog)
    # ------------------------------------------------------------------
    def _speculation_loop(self) -> None:
        while not self._stop_event.wait(self.SPECULATION_POLL_S):
            try:
                self._check_stragglers()
            except Exception:  # noqa: BLE001 - watchdog must never die
                _log.exception("speculation watchdog error")

    def _check_stragglers(self) -> None:
        assert self.runtime is not None
        detector = self.runtime.straggler
        if detector is None:
            return
        now = self._now()
        with self._lock:
            if self._shutdown:
                return
            candidates = []
            for attempts in self._active.values():
                if len(attempts) != 1:
                    continue
                attempt = attempts[0]
                if attempt.speculative or attempt.assignment.extra_allocations:
                    continue
                task = attempt.assignment.task
                threshold = detector.threshold(task.definition.name)
                if threshold is not None and now - attempt.start >= threshold:
                    candidates.append((attempt, threshold))
        for attempt, threshold in candidates:
            self._launch_backup(attempt, threshold)

    def _launch_backup(self, attempt: _LocalAttempt, threshold: float) -> None:
        assert self.runtime is not None and self._threads is not None
        task = attempt.assignment.task
        origin = attempt.assignment.allocation.node
        pool = self.runtime.pool
        others = [w.name for w in pool.available_workers() if w.name != origin]
        if not others:
            return
        alloc = pool.try_allocate(
            attempt.assignment.implementation.constraint, preferred=others
        )
        if alloc is None:
            return
        if alloc.node == origin:
            pool.release(alloc)
            return
        with self._lock:
            still_lone = (
                self._active.get(task.task_id) == [attempt]
                and task.state == TaskState.RUNNING
                and not self._shutdown
            )
            if not still_lone:
                pool.release(alloc)
                return
            backup = Assignment(task, alloc, attempt.assignment.implementation)
            self.runtime.resilience.record(
                self._now(), rsl.SPECULATION_LAUNCHED, task.label, alloc.node,
                detail=f"running {self._now() - attempt.start:.2f}s > "
                f"{threshold:.2f}s threshold on {origin}",
            )
            self._threads.submit(self._run_attempt, backup, True)

    # ------------------------------------------------------------------
    def _record(
        self,
        task: TaskInvocation,
        assignment: Assignment,
        start: float,
        end: float,
        success: bool,
    ) -> None:
        assert self.runtime is not None
        if not self.runtime.tracer.enabled:
            # Zero-cost when tracing is off: no TaskRecord construction,
            # no buffer append on the fast path.
            return
        for alloc in assignment.all_allocations:
            self.runtime.tracer.record_task(
                TaskRecord(
                    task_label=task.label,
                    task_name=task.definition.name,
                    node=alloc.node,
                    cpu_ids=alloc.cpu_ids,
                    gpu_ids=alloc.gpu_ids,
                    start=start,
                    end=end,
                    success=success,
                    attempt=task.attempts,
                )
            )

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def wait_for(self, tasks: Sequence[TaskInvocation]) -> None:
        with self._done_cond:
            # Track only the not-yet-finished subset so each wake-up scans
            # a shrinking list instead of every awaited task, and rescan
            # only when something actually resolved — a pure-timeout wake
            # (the 0.5s elastic heartbeat) changes no task state.
            pending = list(tasks)
            seen = self._resolutions - 1
            while True:
                if self._resolutions != seen:
                    seen = self._resolutions
                    still = []
                    for t in pending:
                        if t.state == TaskState.FAILED:
                            cause = t.error or RuntimeError("unknown")
                            raise TaskFailedError(t, cause) from cause
                        if t.state != TaskState.DONE:
                            still.append(t)
                    pending = still
                    if not pending:
                        return
                    # Rescan cadence doubles as GC relief: freeze the
                    # completed-task history out of the cycle
                    # collector's scan set (see runtime.gc_checkpoint).
                    if self.runtime is not None:
                        self.runtime.gc_checkpoint()
                self._done_cond.wait(timeout=0.5)
                # The poll doubles as the elastic heartbeat: complete
                # idle drains and reap starved-out classes so a study
                # whose only remaining work is unplaceable fails with
                # ResourceStarvationError instead of spinning here.
                self._check_drains()
                self._reap_starved()

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            for timer in self._draining.values():
                timer.cancel()
            self._draining.clear()
        self._stop_event.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        if self._bodies is not None:
            # Hung bodies were released via the stop event; don't block on
            # any abandoned user body that is genuinely wedged.
            self._bodies.shutdown(wait=False)
        if self._procs is not None:
            self._procs.shutdown(wait=True)
