"""Supervised worker-process pool (``backend="workers"``).

The thread backend cannot contain a hostile task body: a segfault, an
OOM-kill, or ``os._exit`` takes the whole driver with it, and a
genuinely wedged body keeps its thread forever (CPython threads cannot
be killed).  The legacy ``ProcessPoolExecutor`` backend isolates bodies
but not failures: one crash marks the shared pool broken and poisons
every later submission.  This backend closes both gaps with the worker
model the paper's runtime (and Tune/Hippo-style trial executors) relies
on — **one long-lived worker process per slot**, each talking to the
driver over its own duplex pipe, under a supervisor thread that owns the
pool's lifecycle:

* **Crash containment** — a worker that dies mid-task (segfault, OOM,
  ``sys.exit``/``os._exit``, external ``SIGKILL``) is detected via its
  process sentinel, the in-flight attempt becomes a retryable
  :class:`~repro.runtime.fault.WorkerCrashError` fed through the normal
  ``RetryPolicy``/``NodeHealth`` machinery, a replacement worker is
  spawned, and every other slot keeps running.
* **Hard-kill deadlines** — with ``task_timeout_s`` set, a body still
  running at the deadline gets its worker ``SIGKILL``-ed and respawned:
  the attempt is a retryable ``TaskTimeoutError`` and *no* abandoned
  thread or process survives (the thread backend's documented
  limitation, finally fixed).
* **Poison-task quarantine** — a task that kills ``poison_threshold``
  consecutive workers is blacklisted: further attempts raise a terminal
  :class:`~repro.runtime.fault.PoisonTaskError` (straight to GIVE_UP)
  instead of burning the retry budget killing worker after worker.
* **Worker recycling** — after ``max_tasks_per_worker`` completed tasks
  a worker is drained gracefully and replaced, bounding native-library
  leak accumulation over multi-day studies.

IPC protocol (pipe per worker; parent → child ``task``/``stop``,
child → parent ``ready``/``ack``/``heartbeat``/``done``/``error``): the
child acks each task before running it (deadlines measure body time, not
queue time), a daemon thread heartbeats every ``heartbeat_s`` so the
supervisor can tell *alive-and-wedged* from *dead*, and results/errors
travel back pickled.  Task functions are shipped by reference
(``module:qualname``, unwrapping ``@task`` wrappers via
``__wrapped__``) with a plain-pickle fast path.

Crash consistency: a crashed attempt is journalled as ``failed`` — a
``completed`` record is only ever written by the driver *after* the
result landed in driver memory, so a worker death can never fabricate a
torn completion.  Every decision is a structured
:class:`~repro.runtime.resilience.ResilienceLog` event
(``worker_crash`` / ``worker_killed`` / ``worker_recycled`` /
``poison_task``) surfaced through ``runtime.analysis()`` and the CLI
report.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.runtime import checkpoint as ckpt
from repro.runtime import resilience as rsl
from repro.runtime.executor.local import LocalExecutor
from repro.runtime.fault import (
    FaultAction,
    PoisonTaskError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runtime.resources import Allocation
from repro.runtime.scheduler.base import Assignment
from repro.runtime.task_definition import TaskInvocation
from repro.util.logging_utils import get_logger
from repro.util.validation import check_positive

_log = get_logger("runtime.executor.workers")


# ----------------------------------------------------------------------
# Function / exception transport
# ----------------------------------------------------------------------
def _encode_func(func) -> Tuple:
    """Serialise a task body for the pipe.

    Plain module-level functions pickle by reference directly.  ``@task``
    replaces the module-level name with its wrapper, which defeats
    pickle's identity check — those ship as a ``(module, qualname)``
    reference that the worker resolves and unwraps via ``__wrapped__``.
    """
    try:
        return ("pickle", pickle.dumps(func, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - fall back to by-reference transport
        module = getattr(func, "__module__", None)
        qualname = getattr(func, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname:
            return ("ref", module, qualname)
        raise TypeError(
            f"task body {func!r} is not transportable to a worker process: "
            "it is neither picklable nor importable by module:qualname "
            "(closures and lambdas need backend='threads')"
        ) from None


def _decode_func(blob: Tuple):
    """Worker-side inverse of :func:`_encode_func`."""
    if blob[0] == "pickle":
        return pickle.loads(blob[1])
    _, module_name, qualname = blob
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    wrapped = getattr(obj, "__wrapped__", None)
    return wrapped if wrapped is not None else obj


def _encode_exc(exc: BaseException) -> Tuple:
    """Serialise a body exception (pickle, else repr + traceback)."""
    try:
        return ("pickle", pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - anything unpicklable degrades to repr
        return ("repr", type(exc).__name__, repr(exc), traceback.format_exc())


def _decode_exc(blob: Tuple) -> BaseException:
    if blob[0] == "pickle":
        try:
            return pickle.loads(blob[1])
        except Exception:  # noqa: BLE001 - class not importable driver-side
            return RuntimeError("task body raised an undecodable exception")
    _, type_name, rep, tb = blob
    return RuntimeError(f"task body raised {type_name}: {rep}\n{tb}")


# ----------------------------------------------------------------------
# Worker child process
# ----------------------------------------------------------------------
def _worker_main(conn, heartbeat_s: float) -> None:
    """Long-lived worker loop: recv task → ack → run → send result.

    ``Exception`` from a body is *contained* (reported back, worker keeps
    serving); ``BaseException`` (``sys.exit``, ``KeyboardInterrupt``) is
    allowed to kill the process — the supervisor's crash-containment path
    handles it like any other worker death.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        import faulthandler

        # An inherited faulthandler would dump this child's threads into
        # the driver's stderr on every contained crash; the supervisor's
        # exitcode report is the authoritative signal.
        faulthandler.disable()
    except Exception:  # noqa: BLE001
        pass
    # Under the fork start method the child inherits the driver's active
    # runtime; clear it so a body calling other @task functions gets the
    # documented sequential fallback instead of a forked runtime's locks.
    try:
        from repro.runtime.runtime import set_current

        set_current(None)
    except Exception:  # noqa: BLE001 - never let setup kill the worker
        pass
    # Likewise under fork: inherited in-process suspend flags belong to
    # the driver (and may have been cleared there after the fork).  The
    # flag *file* is the cross-process truth; start with a clean slate.
    try:
        from repro.runtime.preemption import clear_local_flags

        clear_local_flags()
    except Exception:  # noqa: BLE001
        pass
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                _send(("heartbeat", os.getpid()))
            except Exception:  # noqa: BLE001 - parent gone; exit quietly
                return

    threading.Thread(target=_beat, name="repro-pool-heartbeat", daemon=True).start()
    try:
        _send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, seq, func_blob, args, kwargs, hang, slow = msg
            _send(("ack", seq))
            if hang:
                # Injected wedge: sleep until the supervisor SIGKILLs us.
                while True:
                    time.sleep(3600.0)
            try:
                func = _decode_func(func_blob)
                t0 = time.perf_counter()
                result = func(*args, **kwargs)
                if slow > 1.0:
                    time.sleep((slow - 1.0) * (time.perf_counter() - t0))
            except Exception as exc:  # noqa: BLE001 - contained body error
                _send(("error", seq, _encode_exc(exc)))
                continue
            try:
                _send(("done", seq, result))
            except Exception as exc:  # noqa: BLE001 - unpicklable result
                _send(
                    (
                        "error",
                        seq,
                        _encode_exc(
                            RuntimeError(
                                f"task result is not picklable: {exc!r}"
                            )
                        ),
                    )
                )
    finally:
        stop.set()


# ----------------------------------------------------------------------
# Driver-side bookkeeping
# ----------------------------------------------------------------------
class _PendingCall:
    """One in-flight body: the submitter thread parks on ``done``."""

    __slots__ = ("done", "outcome", "value", "exc")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: Optional[str] = None  # "done" | "error" | "crash"
        self.value: Any = None
        self.exc: Optional[BaseException] = None

    def resolve(
        self,
        outcome: str,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        if self.done.is_set():
            return
        self.outcome = outcome
        self.value = value
        self.exc = exc
        self.done.set()


class _Worker:
    """Driver-side record of one worker process."""

    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    RETIRING = "retiring"
    DEAD = "dead"

    __slots__ = (
        "wid", "process", "conn", "send_lock", "state", "pending", "seq",
        "task_label", "node", "busy_since", "body_started", "tasks_done",
        "last_heartbeat", "kill_reason", "pid",
    )

    def __init__(self, wid: int, process, conn) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.state = self.STARTING
        self.pending: Optional[_PendingCall] = None
        self.seq = 0
        self.task_label = ""
        self.node = ""
        self.busy_since: Optional[float] = None
        self.body_started: Optional[float] = None
        self.tasks_done = 0
        self.last_heartbeat: Optional[float] = None
        self.kill_reason: Optional[str] = None
        self.pid: Optional[int] = process.pid


class WorkerPoolExecutor(LocalExecutor):
    """Supervised worker-pool variant of the local executor.

    Inherits the dispatch/retry/speculation/tracing machinery from
    :class:`LocalExecutor` and replaces only *where bodies run*: each
    attempt is shipped to a dedicated long-lived worker process instead
    of an in-driver thread.

    Parameters
    ----------
    max_parallel:
        Pool size (defaults to the resource pool's task-usable CPUs);
        one worker process per slot.
    max_tasks_per_worker:
        Completed tasks after which a worker is gracefully recycled
        (``None`` disables recycling).
    poison_threshold:
        Consecutive worker deaths a single task may cause before it is
        blacklisted with a terminal ``PoisonTaskError``.
    heartbeat_s:
        Worker heartbeat interval (liveness telemetry in
        :meth:`pool_status`).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast respawn, inherits imported task modules), else
        ``spawn``.
    """

    #: Supervisor poll interval: bounds deadline-kill latency.
    SUPERVISOR_POLL_S = 0.05

    def __init__(
        self,
        max_parallel: Optional[int] = None,
        max_tasks_per_worker: Optional[int] = None,
        poison_threshold: int = 3,
        heartbeat_s: float = 1.0,
        start_method: Optional[str] = None,
    ):
        super().__init__(backend="threads", max_parallel=max_parallel)
        self.backend = "workers"
        if max_tasks_per_worker is not None:
            check_positive("max_tasks_per_worker", max_tasks_per_worker)
        check_positive("poison_threshold", poison_threshold)
        check_positive("heartbeat_s", heartbeat_s)
        self.max_tasks_per_worker = max_tasks_per_worker
        self.poison_threshold = int(poison_threshold)
        self.heartbeat_s = float(heartbeat_s)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool_lock = threading.Lock()
        self._pool_cond = threading.Condition(self._pool_lock)
        self._pool_workers: List[_Worker] = []
        self._idle: Deque[_Worker] = deque()
        self._dead: List[_Worker] = []
        #: task label → consecutive worker deaths it caused.
        self._deaths: Dict[str, int] = {}
        #: Blacklisted task labels (terminal PoisonTaskError).
        self._poisoned: Set[str] = set()
        self._supervisor: Optional[threading.Thread] = None
        self._wid = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _bind_backend(self, n: int) -> None:
        for _ in range(n):
            self._spawn_worker()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn_worker(self) -> Optional[_Worker]:
        if self._stop_event.is_set():
            return None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._wid += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.heartbeat_s),
            name=f"repro-pool-{self._wid}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(self._wid, process, parent_conn)
        with self._pool_cond:
            self._pool_workers.append(worker)
        return worker

    # ------------------------------------------------------------------
    # Body execution (submitter threads)
    # ------------------------------------------------------------------
    def _execute_body(
        self,
        task: TaskInvocation,
        assignment: Assignment,
        alloc: Allocation,
        speculative: bool = False,
    ):
        assert self.runtime is not None
        label = task.label
        if self._stop_event.is_set():
            raise WorkerCrashError(label, "worker pool shutting down")
        with self._pool_lock:
            if label in self._poisoned:
                deaths = self._deaths.get(label, 0)
                raise PoisonTaskError(label, deaths, self.poison_threshold)
        injector = self.runtime.failure_injector
        if (
            injector is not None
            and not speculative
            and injector.should_fail(task.label, task.attempts)
        ):
            raise RuntimeError(
                f"injected failure for {task.label} attempt {task.attempts}"
            )
        hang = bool(
            injector is not None
            and not speculative
            and injector.should_hang(task.label, task.attempts)
        )
        slow = (
            injector.slow_factor(task.label)
            if injector is not None and not speculative
            else 1.0
        )
        args, kwargs = self.resolve_arguments(task)
        func_blob = _encode_func(assignment.implementation.func)
        pending = _PendingCall()
        worker = self._acquire_worker(pending, label, alloc.node)
        worker.seq += 1
        try:
            with worker.send_lock:
                worker.conn.send(
                    ("task", worker.seq, func_blob, args, kwargs, hang, slow)
                )
        except (OSError, EOFError, BrokenPipeError) as exc:
            # Died between acquire and send; the supervisor reaps it via
            # the sentinel.  Detach the pending so the death isn't
            # double-reported; attribute the death here only if the
            # supervisor hasn't already done so.
            with self._pool_cond:
                worker.pending = None
                if not pending.done.is_set():
                    self._deaths[label] = self._deaths.get(label, 0) + 1
            raise WorkerCrashError(
                label, f"worker died before receiving the task: {exc!r}"
            ) from exc
        except Exception:
            # Unpicklable arguments: a body error, not a worker death —
            # the worker is healthy, hand it back.
            self._release_worker(worker)
            raise
        while not pending.done.wait(0.2):
            if self._stop_event.is_set():
                raise WorkerCrashError(label, "worker pool shut down mid-task")
        if pending.outcome == "done":
            return pending.value
        if pending.outcome == "crash":
            # Journal the attempt as failed so a driver resume re-runs it
            # — a crash can never appear as a (torn) completion.
            self.runtime.journal_task_event(task, ckpt.FAILED, node=alloc.node)
        assert pending.exc is not None
        raise pending.exc

    def _acquire_worker(
        self, pending: _PendingCall, label: str, node: str
    ) -> _Worker:
        """Block until an idle worker is available and claim it."""
        with self._pool_cond:
            while True:
                if self._stop_event.is_set():
                    raise WorkerCrashError(label, "worker pool shutting down")
                if self._idle:
                    worker = self._idle.popleft()
                    worker.state = _Worker.BUSY
                    worker.pending = pending
                    worker.task_label = label
                    worker.node = node
                    worker.busy_since = time.monotonic()
                    worker.body_started = None
                    worker.kill_reason = None
                    return worker
                self._pool_cond.wait(0.1)

    def _release_worker(self, worker: _Worker) -> None:
        """Return a healthy worker to the idle set (submitter-side path)."""
        with self._pool_cond:
            if worker.state != _Worker.BUSY:
                return
            worker.pending = None
            worker.task_label = ""
            worker.node = ""
            worker.busy_since = None
            worker.body_started = None
            worker.state = _Worker.IDLE
            self._idle.append(worker)
            self._pool_cond.notify_all()

    def _decide_action(self, task: TaskInvocation, exc: BaseException) -> FaultAction:
        if isinstance(exc, PoisonTaskError):
            return FaultAction.GIVE_UP
        return super()._decide_action(task, exc)

    # ------------------------------------------------------------------
    # Supervisor thread
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._supervise_round()
            except Exception:  # noqa: BLE001 - supervisor must never die
                _log.exception("worker-pool supervisor error")
                time.sleep(self.SUPERVISOR_POLL_S)

    def _supervise_round(self) -> None:
        with self._pool_cond:
            workers = [
                w for w in self._pool_workers if w.state != _Worker.DEAD
            ]
        by_conn = {w.conn: w for w in workers}
        by_sentinel = {w.process.sentinel: w for w in workers}
        try:
            ready = mp_connection.wait(
                list(by_conn) + list(by_sentinel), timeout=self.SUPERVISOR_POLL_S
            )
        except OSError:
            # A connection/sentinel closed mid-wait; the next round sees
            # the updated worker list.
            ready = []
        now = time.monotonic()
        died: List[_Worker] = []
        for obj in ready:
            worker = by_conn.get(obj)
            if worker is not None:
                self._drain_messages(worker, now)
            else:
                died.append(by_sentinel[obj])
        for worker in died:
            # Final messages may still sit in the pipe (e.g. a result
            # sent just before a deadline kill landed): drain first so a
            # completed task is never misreported as crashed.
            self._drain_messages(worker, now)
            self._on_worker_death(worker)
        self._enforce_deadlines(now)

    def _drain_messages(self, worker: _Worker, now: float) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "ready":
                worker.pid = msg[1]
                worker.last_heartbeat = now
                with self._pool_cond:
                    if worker.state == _Worker.STARTING:
                        worker.state = _Worker.IDLE
                        self._idle.append(worker)
                        self._pool_cond.notify_all()
            elif kind == "heartbeat":
                worker.last_heartbeat = now
            elif kind == "ack":
                worker.body_started = now
            elif kind == "done":
                self._on_task_result(worker, value=msg[2], exc=None)
            elif kind == "error":
                self._on_task_result(worker, value=None, exc=_decode_exc(msg[2]))

    def _on_task_result(
        self, worker: _Worker, value: Any, exc: Optional[BaseException]
    ) -> None:
        with self._pool_cond:
            pending = worker.pending
            label = worker.task_label
            worker.pending = None
            worker.task_label = ""
            worker.node = ""
            worker.busy_since = None
            worker.body_started = None
            worker.tasks_done += 1
            if label:
                # A clean outcome (even a body error) proves the task
                # does not kill workers: reset its consecutive count.
                self._deaths.pop(label, None)
            recycle = (
                self.max_tasks_per_worker is not None
                and worker.tasks_done >= self.max_tasks_per_worker
                and not self._stop_event.is_set()
            )
            if not recycle and worker.state == _Worker.BUSY:
                worker.state = _Worker.IDLE
                self._idle.append(worker)
                self._pool_cond.notify_all()
        if pending is not None:
            if exc is None:
                pending.resolve("done", value=value)
            else:
                pending.resolve("error", exc=exc)
        if recycle:
            self._recycle(worker)

    def _recycle(self, worker: _Worker) -> None:
        """Gracefully retire a worker that served its task quota."""
        assert self.runtime is not None
        with self._pool_cond:
            if worker.state == _Worker.DEAD:
                return
            worker.state = _Worker.RETIRING
            if worker in self._idle:
                self._idle.remove(worker)
            if worker in self._pool_workers:
                self._pool_workers.remove(worker)
            self._dead.append(worker)
        try:
            with worker.send_lock:
                worker.conn.send(("stop",))
        except Exception:  # noqa: BLE001 - already gone; make sure
            worker.process.kill()
        self.runtime.resilience.record(
            self._now(), rsl.WORKER_RECYCLED,
            detail=(
                f"pid {worker.pid} retired after {worker.tasks_done} tasks "
                f"(max_tasks_per_worker={self.max_tasks_per_worker})"
            ),
        )
        self._spawn_worker()

    def _on_worker_death(self, worker: _Worker) -> None:
        assert self.runtime is not None
        exitcode = worker.process.exitcode
        with self._pool_cond:
            if worker.state == _Worker.DEAD:
                return
            was_retiring = worker.state == _Worker.RETIRING
            worker.state = _Worker.DEAD
            if worker in self._idle:
                self._idle.remove(worker)
            if worker in self._pool_workers:
                self._pool_workers.remove(worker)
            if worker not in self._dead:
                self._dead.append(worker)
            pending = worker.pending
            worker.pending = None
            label = worker.task_label
            node = worker.node
            deaths = 0
            poisoned = False
            if (
                pending is not None
                and label
                and worker.kill_reason != "deadline"
            ):
                # Deadline hard-kills are driver-initiated and already
                # handled by the timeout retry path; only genuine crashes
                # count toward the poison threshold.
                deaths = self._deaths.get(label, 0) + 1
                self._deaths[label] = deaths
                poisoned = deaths >= self.poison_threshold
                if poisoned:
                    self._poisoned.add(label)
            self._pool_cond.notify_all()
        if was_retiring:
            # A recycled worker exiting is the expected drain, not a crash.
            return
        now = self._now()
        detail = f"pid {worker.pid} exitcode {exitcode}"
        if pending is None:
            self.runtime.resilience.record(
                now, rsl.WORKER_CRASH, node=node,
                detail=f"idle worker died ({detail}); respawned",
            )
            exc: Optional[BaseException] = None
        elif worker.kill_reason == "deadline":
            timeout = self.runtime.config.task_timeout_s
            self.runtime.resilience.record(
                now, rsl.WORKER_KILLED, label, node,
                detail=f"hard-killed at the {timeout}s deadline ({detail})",
            )
            exc = TaskTimeoutError(
                f"task {label} exceeded its {timeout}s deadline on {node}; "
                f"worker pid {worker.pid} hard-killed"
            )
        else:
            self.runtime.resilience.record(
                now, rsl.WORKER_CRASH, label, node,
                detail=f"{detail}; task retried on a fresh worker",
            )
            exc = WorkerCrashError(label, detail)
        if pending is not None and poisoned:
            self.runtime.resilience.record(
                now, rsl.POISON_TASK, label, node,
                detail=(
                    f"{deaths} consecutive worker deaths >= "
                    f"threshold {self.poison_threshold}; blacklisted"
                ),
            )
            exc = PoisonTaskError(label, deaths, self.poison_threshold)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if not self._stop_event.is_set():
            self._spawn_worker()
        if pending is not None and exc is not None:
            pending.resolve("crash", exc=exc)

    def _enforce_deadlines(self, now: float) -> None:
        assert self.runtime is not None
        timeout = self.runtime.config.task_timeout_s
        if timeout is None:
            return
        with self._pool_cond:
            overdue = [
                w
                for w in self._pool_workers
                if w.state == _Worker.BUSY
                and w.pending is not None
                and w.kill_reason is None
                and (w.body_started or w.busy_since) is not None
                and now - (w.body_started or w.busy_since) > timeout
            ]
            for worker in overdue:
                worker.kill_reason = "deadline"
        for worker in overdue:
            _log.info(
                "hard-killing worker pid %s: task %s exceeded %ss deadline",
                worker.pid, worker.task_label, timeout,
            )
            worker.process.kill()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pool_status(self) -> List[Dict[str, Any]]:
        """One dict per live worker (pid, state, tasks, heartbeat age)."""
        now = time.monotonic()
        with self._pool_cond:
            return [
                {
                    "pid": w.pid,
                    "state": w.state,
                    "tasks_done": w.tasks_done,
                    "task": w.task_label,
                    "heartbeat_age_s": (
                        round(now - w.last_heartbeat, 3)
                        if w.last_heartbeat is not None
                        else None
                    ),
                }
                for w in self._pool_workers
            ]

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes."""
        with self._pool_cond:
            return [w.pid for w in self._pool_workers if w.pid is not None]

    def poisoned_tasks(self) -> List[str]:
        """Labels currently blacklisted as poison tasks."""
        with self._pool_lock:
            return sorted(self._poisoned)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
        self._stop_event.set()
        with self._pool_cond:
            self._pool_cond.notify_all()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        self._drain_pool()

    def _drain_pool(self) -> None:
        """Graceful drain: stop idle workers, kill busy ones, leak nothing."""
        with self._pool_cond:
            workers = list(self._pool_workers)
            self._pool_workers.clear()
            self._idle.clear()
            dead = list(self._dead)
            self._dead.clear()
        for worker in workers:
            if worker.pending is not None:
                worker.pending.resolve(
                    "crash",
                    exc=WorkerCrashError(
                        worker.task_label or "?", "worker pool shut down"
                    ),
                )
                worker.process.kill()
            else:
                try:
                    with worker.send_lock:
                        worker.conn.send(("stop",))
                except Exception:  # noqa: BLE001 - already gone
                    worker.process.kill()
        for worker in workers + dead:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
