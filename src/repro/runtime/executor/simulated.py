"""Simulated-cluster execution in virtual time.

This executor reproduces the paper's supercomputer-scale experiments on a
laptop: the same scheduler and resource pool place tasks on simulated
MareNostrum 4 / POWER9 nodes, a discrete-event engine advances a virtual
clock, and task durations come from the calibrated cost model (or a
user-supplied duration function).

``execute_bodies=True`` additionally runs the real task bodies (instantly
in virtual time) so that HPO results are genuine trained-model metrics
while the *timing* reflects the modelled cluster — the combination used
by the Fig. 7/8 benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.runtime.executor.base import Executor
from repro.runtime.fault import FaultAction, TaskFailedError
from repro.runtime.scheduler.base import Assignment, release_assignment
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.runtime.tracing.extrae import TaskRecord
from repro.simcluster.costmodel import TrainingCostModel, MNIST_LIKE
from repro.simcluster.events import DiscreteEventSimulator, EventHandle
from repro.simcluster.node import NodeSpec
from repro.util.logging_utils import get_logger

_log = get_logger("runtime.executor.simulated")

#: duration_fn(task, node_spec, allocation) -> seconds of virtual time.
DurationFn = Callable[[TaskInvocation, NodeSpec, Any], float]


class NodeFailureError(RuntimeError):
    """A task attempt died because its node failed."""


class SimulatedExecutor(Executor):
    """Virtual-time executor over a simulated cluster.

    Parameters
    ----------
    duration_fn:
        Optional override for task durations.  Default: the runtime's
        cost model applied to the task's config argument (the first
        positional argument that is a mapping).
    execute_bodies:
        Run real task bodies for results (costs real CPU, zero virtual
        time beyond the modelled duration).
    default_dataset:
        Dataset profile assumed when a config does not carry one.
    """

    def __init__(
        self,
        duration_fn: Optional[DurationFn] = None,
        execute_bodies: bool = False,
        default_dataset=MNIST_LIKE,
    ):
        super().__init__()
        self.sim = DiscreteEventSimulator()
        self.duration_fn = duration_fn
        self.execute_bodies = execute_bodies
        self.default_dataset = default_dataset
        self._running: Dict[int, EventHandle] = {}
        self._assignments: Dict[int, Assignment] = {}
        self._start_times: Dict[int, float] = {}
        self._failures_scheduled = False

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.sim.now

    def _cost_model(self) -> TrainingCostModel:
        assert self.runtime is not None
        return self.runtime.cost_model

    def _duration(self, task: TaskInvocation, spec: NodeSpec, alloc) -> float:
        if self.duration_fn is not None:
            return float(self.duration_fn(task, spec, alloc))
        config = self._find_config(task)
        return self._cost_model().duration_for_config(
            config,
            spec,
            cpu_units=alloc.cpu_units,
            gpu_units=alloc.gpu_units,
            default_dataset=self.default_dataset,
        )

    @staticmethod
    def _find_config(task: TaskInvocation) -> Mapping[str, Any]:
        for value in (*task.args, *task.kwargs.values()):
            if isinstance(value, Mapping):
                return value
        return {}

    def _staging_time(self, task: TaskInvocation, node: str) -> float:
        """Input staging cost from the cluster storage model (paper §4)."""
        assert self.runtime is not None
        config = self._find_config(task)
        dataset = config.get("dataset", None)
        model = self._cost_model()
        if dataset is None:
            profile = (
                self.default_dataset
                if not isinstance(self.default_dataset, str)
                else model._resolve_dataset(self.default_dataset)
            )
        else:
            try:
                profile = model._resolve_dataset(dataset)
            except KeyError:
                return 0.0
        return self.runtime.cluster.storage.staging_time(profile.size_mb, node)

    def _dependency_transfer_time(self, task: TaskInvocation, node: str) -> float:
        """Inter-task data movement: producers on other nodes ship results.

        COMPSs transfers task outputs to consumers on different nodes
        (paper §3); the charged size is each producer's
        ``output_size_mb`` hint (0 = free, the default).
        """
        assert self.runtime is not None
        total = 0.0
        network = self.runtime.cluster.network
        for producer in self.runtime.graph.predecessors(task):
            size = float(producer.definition.output_size_mb)
            if size > 0.0 and producer.node and producer.node != node:
                total += network.transfer_time(size, producer.node, node)
        return total

    # ------------------------------------------------------------------
    # Node failures
    # ------------------------------------------------------------------
    def _ensure_node_failures_scheduled(self) -> None:
        if self._failures_scheduled:
            return
        self._failures_scheduled = True
        assert self.runtime is not None
        injector = self.runtime.failure_injector
        if injector is None:
            return
        for nf in injector.node_failures:
            self.sim.schedule_at(
                nf.time, lambda nf=nf: self._fail_node(nf.node), f"fail-{nf.node}"
            )
            if nf.recovery_time is not None:
                self.sim.schedule_at(
                    nf.recovery_time,
                    lambda nf=nf: self._recover_node(nf.node),
                    f"recover-{nf.node}",
                )

    def _fail_node(self, node: str) -> None:
        assert self.runtime is not None
        _log.info("t=%.1f node %s failed", self.now, node)
        self.runtime.pool.fail_node(node)
        victims = [
            tid
            for tid, a in self._assignments.items()
            if any(al.node == node for al in a.all_allocations)
            and tid in self._running
        ]
        for tid in victims:
            self._running.pop(tid).cancel()
            assignment = self._assignments.pop(tid)
            start = self._start_times.pop(tid)
            task = assignment.task
            task.attempts += 1
            self._record(task, assignment, start, self.now, success=False)
            # The failed node's slots are NOT released (the worker is reset
            # on recovery), but a multinode task's allocations on healthy
            # nodes must go back to the pool.
            for alloc in assignment.all_allocations:
                if alloc.node != node:
                    self.runtime.pool.release(alloc)
            self._after_failure(
                assignment, NodeFailureError(f"node {node} failed"), force_other=True
            )

    def _recover_node(self, node: str) -> None:
        assert self.runtime is not None
        _log.info("t=%.1f node %s recovered", self.now, node)
        self.runtime.pool.recover_node(node)
        self._dispatch()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def notify_submitted(self, task: TaskInvocation) -> None:
        # Lazy: the event loop runs inside wait_for (virtual time).
        pass

    def _dispatch(self) -> None:
        assert self.runtime is not None
        ready = self.runtime.graph.pop_ready()
        if not ready:
            return
        assignments, waiting = self.runtime.scheduler.assign(
            ready, self.runtime.pool
        )
        self.runtime.graph.requeue(waiting)
        for assignment in assignments:
            self._start(assignment)

    def _start(self, assignment: Assignment) -> None:
        assert self.runtime is not None
        task = assignment.task
        alloc = assignment.allocation
        node_spec = self.runtime.cluster.node(alloc.node)
        task.state = TaskState.RUNNING
        task.node = alloc.node
        staging = self._staging_time(task, alloc.node)
        staging += self._dependency_transfer_time(task, alloc.node)
        duration = self._duration(task, node_spec, alloc)
        start = self.now
        self._assignments[task.task_id] = assignment
        self._start_times[task.task_id] = start
        self.runtime.tracer.record_event(start, "task_start", task.label, alloc.node)
        handle = self.sim.schedule(
            staging + duration,
            lambda: self._complete(task.task_id),
            label=f"complete-{task.label}",
        )
        self._running[task.task_id] = handle

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def _complete(self, task_id: int) -> None:
        assert self.runtime is not None
        self._running.pop(task_id, None)
        assignment = self._assignments.pop(task_id)
        start = self._start_times.pop(task_id)
        task = assignment.task
        injector = self.runtime.failure_injector
        if injector is not None and injector.should_fail(task.label, task.attempts):
            task.attempts += 1
            self._record(task, assignment, start, self.now, success=False)
            release_assignment(self.runtime.pool, assignment)
            self._after_failure(
                assignment,
                RuntimeError(f"injected failure for {task.label}"),
                force_other=False,
                released=True,
            )
            return
        result: Any = None
        if self.execute_bodies:
            args, kwargs = self.resolve_arguments(task)
            try:
                result = assignment.implementation.func(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - route into fault handling
                task.attempts += 1
                self._record(task, assignment, start, self.now, success=False)
                release_assignment(self.runtime.pool, assignment)
                self._after_failure(assignment, exc, force_other=False, released=True)
                return
        self._record(task, assignment, start, self.now, success=True)
        release_assignment(self.runtime.pool, assignment)
        task.result = result
        task.start_time, task.end_time = start, self.now
        self.runtime.complete_task(task, result)
        self._dispatch()

    def _after_failure(
        self,
        assignment: Assignment,
        exc: BaseException,
        force_other: bool,
        released: bool = False,
    ) -> None:
        """Apply the retry policy after a failed attempt.

        ``force_other`` skips the same-node retry (the node is gone).
        ``released`` records whether the allocation was already returned.
        """
        assert self.runtime is not None
        task = assignment.task
        action = self.runtime.retry_policy.decide(task)
        if action == FaultAction.RETRY_SAME_NODE and force_other:
            action = FaultAction.RESUBMIT_OTHER_NODE
        _log.info(
            "t=%.1f task %s failed (attempt %d): %s -> %s",
            self.now, task.label, task.attempts, exc, action.value,
        )
        if action == FaultAction.RETRY_SAME_NODE:
            if released:
                # Reacquire the same node's resources for the retry.
                alloc = self.runtime.pool.try_allocate(
                    assignment.implementation.constraint,
                    preferred=[assignment.allocation.node],
                )
                if alloc is None or alloc.node != assignment.allocation.node:
                    if alloc is not None:
                        self.runtime.pool.release(alloc)
                    self._requeue_for_other(task, assignment)
                    return
                assignment = Assignment(task, alloc, assignment.implementation)
            self._start(assignment)
            return
        if not released and action != FaultAction.RETRY_SAME_NODE:
            # Node-failure path never releases; nothing to do (worker reset
            # on recovery).  Other paths released before calling us.
            pass
        if action == FaultAction.RESUBMIT_OTHER_NODE:
            self._requeue_for_other(task, assignment)
            return
        task.state = TaskState.FAILED
        task.error = exc

    def _requeue_for_other(self, task: TaskInvocation, assignment: Assignment) -> None:
        assert self.runtime is not None
        task.failed_nodes.append(assignment.allocation.node)
        task.state = TaskState.READY
        self.runtime.graph.requeue([task])
        self._dispatch()

    def _record(
        self, task: TaskInvocation, assignment: Assignment, start, end, success
    ) -> None:
        assert self.runtime is not None
        for alloc in assignment.all_allocations:
            self.runtime.tracer.record_task(
                TaskRecord(
                    task_label=task.label,
                    task_name=task.definition.name,
                    node=alloc.node,
                    cpu_ids=alloc.cpu_ids,
                    gpu_ids=alloc.gpu_ids,
                    start=start,
                    end=end,
                    success=success,
                    attempt=task.attempts,
                )
            )

    # ------------------------------------------------------------------
    # Synchronisation (virtual time)
    # ------------------------------------------------------------------
    def wait_for(self, tasks: Sequence[TaskInvocation]) -> None:
        self._ensure_node_failures_scheduled()
        self._dispatch()

        def unfinished() -> bool:
            return any(
                t.state not in (TaskState.DONE, TaskState.FAILED) for t in tasks
            )

        while unfinished():
            if not self.sim.step():
                break
        failed = [t for t in tasks if t.state == TaskState.FAILED]
        if failed:
            t = failed[0]
            raise TaskFailedError(t, t.error or RuntimeError("unknown"))
        if unfinished():
            stuck = [t.label for t in tasks if t.state != TaskState.DONE]
            raise RuntimeError(
                f"simulation stalled with tasks unfinished: {stuck[:5]} "
                f"(+{max(0, len(stuck) - 5)} more); "
                "likely an unsatisfiable constraint or all nodes down"
            )

    def shutdown(self) -> None:
        self._running.clear()
        self._assignments.clear()
        self._start_times.clear()
