"""Simulated-cluster execution in virtual time.

This executor reproduces the paper's supercomputer-scale experiments on a
laptop: the same scheduler and resource pool place tasks on simulated
MareNostrum 4 / POWER9 nodes, a discrete-event engine advances a virtual
clock, and task durations come from the calibrated cost model (or a
user-supplied duration function).

``execute_bodies=True`` additionally runs the real task bodies (instantly
in virtual time) so that HPO results are genuine trained-model metrics
while the *timing* reflects the modelled cluster — the combination used
by the Fig. 7/8 benchmarks.

Resilience (beyond the paper's retry-then-resubmit): a task may have
several *attempts* in flight at once.  Deadlines (``task_timeout_s``)
convert hung attempts into retryable failures; straggler detection
launches a speculative backup attempt on another node and keeps the first
finisher; retries wait out an exponential backoff; per-node failures feed
the runtime's :class:`~repro.runtime.resilience.NodeHealth` tracker.  All
of it runs on the event engine, so chaos scenarios are bit-deterministic
under a fixed seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.runtime import checkpoint as ckpt
from repro.runtime import resilience as rsl
from repro.runtime.executor.base import Executor
from repro.runtime.fault import (
    FaultAction,
    ResourceStarvationError,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.runtime.resources import DOWN
from repro.runtime.scheduler.base import Assignment, release_assignment
from repro.runtime.task_definition import TaskInvocation, TaskState
from repro.runtime.tracing.extrae import TaskRecord
from repro.simcluster.costmodel import TrainingCostModel, MNIST_LIKE
from repro.simcluster.events import DiscreteEventSimulator, EventHandle
from repro.simcluster.failures import MassLoss, NodeRejoin, PreemptionNotice
from repro.simcluster.node import NodeSpec
from repro.util.logging_utils import get_logger

_log = get_logger("runtime.executor.simulated")

#: duration_fn(task, node_spec, allocation) -> seconds of virtual time.
DurationFn = Callable[[TaskInvocation, NodeSpec, Any], float]


class NodeFailureError(RuntimeError):
    """A task attempt died because its node failed."""


class _Attempt:
    """One in-flight attempt of a task (primary or speculative backup)."""

    __slots__ = ("assignment", "start", "speculative", "handle",
                 "timeout_handle", "spec_check")

    def __init__(self, assignment: Assignment, start: float, speculative: bool):
        self.assignment = assignment
        self.start = start
        self.speculative = speculative
        self.handle: Optional[EventHandle] = None
        self.timeout_handle: Optional[EventHandle] = None
        self.spec_check: Optional[EventHandle] = None

    def cancel_events(self) -> None:
        for handle in (self.handle, self.timeout_handle, self.spec_check):
            if handle is not None:
                handle.cancel()
        self.handle = self.timeout_handle = self.spec_check = None


class SimulatedExecutor(Executor):
    """Virtual-time executor over a simulated cluster.

    Parameters
    ----------
    duration_fn:
        Optional override for task durations.  Default: the runtime's
        cost model applied to the task's config argument (the first
        positional argument that is a mapping).
    execute_bodies:
        Run real task bodies for results (costs real CPU, zero virtual
        time beyond the modelled duration).
    default_dataset:
        Dataset profile assumed when a config does not carry one.
    """

    def __init__(
        self,
        duration_fn: Optional[DurationFn] = None,
        execute_bodies: bool = False,
        default_dataset=MNIST_LIKE,
    ):
        super().__init__()
        self.sim = DiscreteEventSimulator()
        self.duration_fn = duration_fn
        self.execute_bodies = execute_bodies
        self.default_dataset = default_dataset
        #: Lazily-resolved default dataset profile (``_staging_time``).
        self._default_profile = None
        #: task_id -> attempts currently in flight (usually one; two while
        #: a speculative backup races the original).
        self._attempts: Dict[int, List[_Attempt]] = {}
        self._failures_scheduled = False
        #: node -> armed drain-deadline event (graceful drain in progress).
        self._draining: Dict[str, EventHandle] = {}
        self._starvation_handle: Optional[EventHandle] = None
        self._starvation_at = 0.0
        #: Buffered completion units — ``(assignment, ready)`` pairs whose
        #: release + scheduling round are deferred into the next batched
        #: engine drain (see :meth:`_drain_pending`).
        self._units: List[tuple] = []
        #: When True, every completion runs its scheduling round inline
        #: (the pre-batching behaviour).  Recomputed per wait_for: any
        #: feature whose bookkeeping is ordered against individual rounds
        #: (speculation, node health, integrity, tracing) forces it, as
        #: does ``config.batch_wakes=False``.
        self._eager_flush = True

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.sim.now

    def clock(self) -> float:
        return self.sim.now

    def _cost_model(self) -> TrainingCostModel:
        assert self.runtime is not None
        return self.runtime.cost_model

    def _duration(
        self,
        task: TaskInvocation,
        spec: NodeSpec,
        alloc,
        config: Optional[Mapping[str, Any]] = None,
    ) -> float:
        if self.duration_fn is not None:
            return float(self.duration_fn(task, spec, alloc))
        if config is None:
            config = self._find_config(task)
        return self._cost_model().duration_for_config(
            config,
            spec,
            cpu_units=alloc.cpu_units,
            gpu_units=alloc.gpu_units,
            default_dataset=self.default_dataset,
        )

    #: Arg types that can never be a config mapping — checked by exact
    #: type before the (comparatively slow) ABC ``isinstance`` below.
    _NON_CONFIG_TYPES = frozenset(
        (int, float, complex, bool, str, bytes, type(None), tuple, list)
    )

    @classmethod
    def _find_config(cls, task: TaskInvocation) -> Mapping[str, Any]:
        non_config = cls._NON_CONFIG_TYPES
        for value in task.args:
            t = type(value)
            if t is dict:
                return value
            if t in non_config:
                continue
            if isinstance(value, Mapping):
                return value
        for value in task.kwargs.values():
            t = type(value)
            if t is dict:
                return value
            if t in non_config:
                continue
            if isinstance(value, Mapping):
                return value
        return {}

    def _staging_time(
        self,
        task: TaskInvocation,
        node: str,
        config: Optional[Mapping[str, Any]] = None,
    ) -> float:
        """Input staging cost from the cluster storage model (paper §4)."""
        assert self.runtime is not None
        if config is None:
            config = self._find_config(task)
        dataset = config.get("dataset", None)
        model = self._cost_model()
        if dataset is None:
            # default_dataset never changes mid-run: resolve it once.
            profile = self._default_profile
            if profile is None:
                profile = (
                    self.default_dataset
                    if not isinstance(self.default_dataset, str)
                    else model._resolve_dataset(self.default_dataset)
                )
                self._default_profile = profile
        else:
            try:
                profile = model._resolve_dataset(dataset)
            except KeyError:
                return 0.0
        return self.runtime.cluster.storage.staging_time(profile.size_mb, node)

    def _prepare_inputs(
        self, task: TaskInvocation, node: str, speculative: bool
    ) -> tuple:
        """Verify and transfer predecessor outputs onto ``node``.

        Inter-task data movement: producers on other nodes ship results
        to consumers (paper §3); the charged size is each producer's
        ``output_size_mb`` hint (0 = free, the default).  With
        ``verify_outputs`` on, every input is checksum-verified first —
        a mismatch repairs from a surviving replica in place, and an
        unrepairable input sends its writer back through the lineage
        machinery.  Cross-node transfers go through the retrying
        transfer path (:meth:`_simulate_transfer`).

        Returns ``(seconds, corrupt_writers)``; a non-empty second item
        means the consumer must NOT start — its writers re-execute.
        Speculative backups skip chaos and verification: they are clean
        re-reads racing an attempt that already passed this gate.
        """
        assert self.runtime is not None
        runtime = self.runtime
        producers = runtime.graph.predecessors(task)
        if not producers:
            # Independent task (the common HPO shape): nothing to verify
            # or move.
            return 0.0, ()
        integrity = runtime.integrity
        network = runtime.cluster.network
        total = 0.0
        corrupt: List[TaskInvocation] = []
        for producer in producers:
            if integrity is not None and not speculative:
                versions = runtime.access.versions_written_by(producer)
                if versions:
                    outcome = integrity.verify_writer(
                        producer, versions, consumer_label=task.label
                    )
                    if not outcome.ok:
                        corrupt.append(producer)
                        continue
            size = float(producer.definition.output_size_mb)
            if size <= 0.0 or not producer.node or producer.node == node:
                continue
            if speculative:
                total += network.transfer_time(size, producer.node, node)
                continue
            cost, ok = self._simulate_transfer(task, producer, size, node)
            total += cost
            if not ok:
                corrupt.append(producer)
        return total, corrupt

    def _simulate_transfer(
        self, task: TaskInvocation, producer: TaskInvocation, size: float, node: str
    ) -> tuple:
        """One producer→consumer transfer with retries and fallbacks.

        A torn attempt burns its wire time, waits out the retry policy's
        seeded-jitter backoff, and tries again up to
        ``config.transfer_retries`` times.  Exhausting the budget marks
        the source node unhealthy, then escalates: re-fetch from a
        surviving replica when one exists, else report the producer lost
        (``ok=False`` — the caller re-executes it).  Without the
        integrity layer there is no replica/lineage escalation, so the
        model assumes the source eventually resends (one extra charge).

        Returns ``(seconds, ok)``.
        """
        assert self.runtime is not None
        runtime = self.runtime
        network = runtime.cluster.network
        injector = runtime.failure_injector
        integrity = runtime.integrity
        src = producer.node
        base = network.transfer_time(size, src, node)
        if injector is None:
            return base, True
        base *= injector.link_factor(src, node)
        total = 0.0
        retries = runtime.config.transfer_retries
        for attempt in range(retries + 1):
            if not injector.should_fail_transfer(task.label, producer.label, attempt):
                return total + base, True
            total += base  # the torn attempt still burned the wire time
            if attempt < retries:
                delay = runtime.retry_policy.backoff_delay(
                    f"xfer-{task.label}-{producer.label}", attempt + 1
                )
                total += delay
                if integrity is not None:
                    integrity.transfer_retries += 1
                runtime.resilience.record(
                    self.now, rsl.TRANSFER_RETRY, task.label, src,
                    detail=(
                        f"{producer.label} -> {node} attempt {attempt + 1} "
                        f"torn; retry in {delay:.2f}s"
                    ),
                )
        if integrity is not None:
            integrity.transfer_failures += 1
        runtime.resilience.record(
            self.now, rsl.TRANSFER_FAILED, task.label, src,
            detail=f"{producer.label} -> {node} failed after {retries + 1} attempts",
        )
        runtime.node_health.record_failure(src, kind="transfer")
        if integrity is not None:
            alt = integrity.replica_source(producer, exclude=(src,))
            if alt is not None:
                alt_cost = network.transfer_time(size, alt, node)
                alt_cost *= injector.link_factor(alt, node)
                integrity.replica_repairs += 1
                runtime.resilience.record(
                    self.now, rsl.REPLICA_REPAIR, task.label, alt,
                    detail=f"{producer.label} re-fetched from replica on {alt}",
                )
                return total + alt_cost, True
            return total, False
        return total + base, True

    # ------------------------------------------------------------------
    # Attempt bookkeeping
    # ------------------------------------------------------------------
    def _detach(self, task_id: int, attempt: _Attempt) -> bool:
        """Remove ``attempt`` from the active set; False if already gone."""
        attempts = self._attempts.get(task_id)
        if not attempts or attempt not in attempts:
            return False
        attempts.remove(attempt)
        if not attempts:
            del self._attempts[task_id]
        return True

    def _siblings(self, task_id: int) -> List[_Attempt]:
        return self._attempts.get(task_id, [])

    # ------------------------------------------------------------------
    # Node failures
    # ------------------------------------------------------------------
    def _ensure_node_failures_scheduled(self) -> None:
        if self._failures_scheduled:
            return
        self._failures_scheduled = True
        assert self.runtime is not None
        injector = self.runtime.failure_injector
        if injector is None:
            return
        for nf in injector.node_failures:
            self.sim.schedule_at(
                nf.time,
                lambda nf=nf: self._fail_node(nf.node, nf.destroy_data),
                f"fail-{nf.node}",
            )
            if nf.recovery_time is not None:
                self.sim.schedule_at(
                    nf.recovery_time,
                    lambda nf=nf: self._recover_node(nf.node),
                    f"recover-{nf.node}",
                )
        churn = getattr(injector, "churn", None)
        if churn is None:
            return
        node_names = [spec.name for spec in self.runtime.cluster.nodes]
        for ev in churn.materialize(node_names):
            if isinstance(ev, PreemptionNotice):
                self.sim.schedule_at(
                    ev.time,
                    lambda ev=ev: self._on_preemption_notice(ev),
                    f"preempt-{ev.node}",
                )
                if ev.rejoin_at is not None:
                    self.sim.schedule_at(
                        ev.rejoin_at,
                        lambda ev=ev: self._rejoin_node(ev.node),
                        f"rejoin-{ev.node}",
                    )
            elif isinstance(ev, MassLoss):
                self.sim.schedule_at(
                    ev.time, lambda ev=ev: self._storm(ev), "storm"
                )
                if ev.rejoin_at is not None:
                    for name in ev.nodes:
                        self.sim.schedule_at(
                            ev.rejoin_at,
                            lambda name=name: self._rejoin_node(name),
                            f"rejoin-{name}",
                        )
            elif isinstance(ev, NodeRejoin):
                self.sim.schedule_at(
                    ev.time,
                    lambda ev=ev: self._rejoin_node(ev.node),
                    f"rejoin-{ev.node}",
                )

    def _fail_node(self, node: str, destroy_data: bool = True) -> None:
        assert self.runtime is not None
        # Replay any buffered completion rounds before mutating topology:
        # event-by-event those rounds ran before this failure fired.
        self._drain_pending()
        _log.info("t=%.1f node %s failed", self.now, node)
        drain = self._draining.pop(node, None)
        if drain is not None:
            drain.cancel()  # the failure supersedes the graceful drain
        self.runtime.pool.fail_node(node)
        destroyed: List[str] = []
        if destroy_data:
            # Data versions resident on the lost node die with it: running
            # consumer attempts are aborted (their inputs are gone — the
            # bodies would resolve stale futures at completion time) and
            # the minimal producer lineage re-executes.
            destroyed = self.runtime.recover_lost_data(node)
        victims = [
            (tid, attempt)
            for tid, attempts in list(self._attempts.items())
            for attempt in list(attempts)
            if any(al.node == node for al in attempt.assignment.all_allocations)
        ]
        for tid, attempt in victims:
            if not self._detach(tid, attempt):
                continue
            attempt.cancel_events()
            assignment = attempt.assignment
            task = assignment.task
            task.attempts += 1
            self._record(task, assignment, attempt.start, self.now, success=False)
            # The failed node's slots are NOT released (the worker is reset
            # on recovery), but a multinode task's allocations on healthy
            # nodes must go back to the pool.
            for alloc in assignment.all_allocations:
                if alloc.node != node:
                    self.runtime.pool.release(alloc)
            self.runtime.node_health.record_failure(node, kind="node-failure")
            exc = NodeFailureError(f"node {node} failed")
            if self._siblings(tid):
                # A backup attempt survives on another node; let it race on.
                task.attempt_history.append(
                    f"attempt {task.attempts} on {node}: {exc!r} -> "
                    "backup still running"
                )
                continue
            self._after_failure(assignment, exc, force_other=True)
        self.runtime.resilience.record(
            self.now, rsl.NODE_LOST, "", node,
            detail=(
                f"destroyed {len(destroyed)} data version(s)"
                + (": " + ",".join(destroyed[:8]) if destroyed else "")
                + ("..." if len(destroyed) > 8 else "")
            ),
        )
        # Lineage re-executions (and any aborted consumers whose inputs
        # survived) may be ready right now on the remaining nodes.
        self._dispatch()

    def abort_task(self, task: TaskInvocation) -> bool:
        """Discard in-flight attempts of ``task`` (lineage recovery).

        Simulated bodies run at *completion* time, so an in-flight attempt
        has computed nothing yet: cancelling its events and releasing its
        allocations discards it cleanly.  Returns False when no attempt is
        in flight (e.g. a backoff retry is pending instead).
        """
        assert self.runtime is not None
        attempts = self._attempts.pop(task.task_id, None)
        if not attempts:
            return False
        for attempt in attempts:
            attempt.cancel_events()
            release_assignment(self.runtime.pool, attempt.assignment)
        return True

    def _recover_node(self, node: str) -> None:
        assert self.runtime is not None
        self._drain_pending()
        _log.info("t=%.1f node %s recovered", self.now, node)
        # Through the runtime so recovery and elastic rejoin share one
        # path: slot reset, replica re-seeding, NODE_REJOINED event, and
        # the topology wake that re-probes blocked (even starved) classes.
        self.runtime.recover_node(node)

    # ------------------------------------------------------------------
    # Spot churn: preemption notices, storms, rejoins
    # ------------------------------------------------------------------
    def _on_preemption_notice(self, ev: PreemptionNotice) -> None:
        """A spot node received its eviction warning: drain within the lead."""
        assert self.runtime is not None
        self._drain_pending()
        worker = self.runtime.pool.workers.get(ev.node)
        if worker is None or not worker.available:
            return  # already down or draining — the notice is moot
        self.runtime.resilience.record(
            self.now, rsl.PREEMPTION_NOTICE, "", ev.node,
            detail=f"lead_s={ev.lead_s:g}",
        )
        self.runtime.drain_node(ev.node, deadline_s=ev.lead_s)

    def _storm(self, ev: MassLoss) -> None:
        """Mass loss: k nodes die at once, no warning."""
        assert self.runtime is not None
        pool = self.runtime.pool
        for node in ev.nodes:
            worker = pool.workers.get(node)
            if worker is None or worker.state == DOWN:
                continue
            self._fail_node(node, destroy_data=True)

    def _rejoin_node(self, node: str) -> None:
        assert self.runtime is not None
        self._drain_pending()
        worker = self.runtime.pool.workers.get(node)
        if worker is None or worker.state != DOWN:
            return  # still up, or still draining its last attempts
        self.runtime.recover_node(node)

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def node_busy(self, node: str) -> bool:
        return any(
            al.node == node
            for attempts in self._attempts.values()
            for attempt in attempts
            for al in attempt.assignment.all_allocations
        )

    def drain_node(self, node: str, deadline_s: float) -> None:
        """Honour a drain: watch for the last attempt, arm the deadline."""
        assert self.runtime is not None
        self._drain_pending()
        if not self.node_busy(node):
            self.runtime.finish_drain(node)
            self._dispatch()
            return
        previous = self._draining.pop(node, None)
        if previous is not None:
            previous.cancel()
        self._draining[node] = self.sim.schedule(
            float(deadline_s),
            lambda: self._drain_deadline(node),
            label=f"drain-deadline-{node}",
        )
        self._dispatch()

    def _check_drains(self) -> None:
        """Complete any drain whose node has gone idle."""
        if not self._draining:
            return
        assert self.runtime is not None
        for node in sorted(self._draining):
            if self.node_busy(node):
                continue
            self._draining.pop(node).cancel()
            self.runtime.finish_drain(node)

    def _drain_deadline(self, node: str) -> None:
        """The drain window closed; escalate a busy node to a failure."""
        assert self.runtime is not None
        self._drain_pending()
        self._draining.pop(node, None)
        worker = self.runtime.pool.workers.get(node)
        if worker is None or not worker.draining:
            return
        if not self.node_busy(node):
            self.runtime.finish_drain(node)
            return
        running = sum(
            1
            for attempts in self._attempts.values()
            for attempt in attempts
            if any(al.node == node for al in attempt.assignment.all_allocations)
        )
        flagged = self.runtime.preemption.suspended_count()
        self.runtime.resilience.record(
            self.now, rsl.DRAIN_DEADLINE, "", node,
            detail=f"{running} attempt(s) still running; escalating to failure"
            + (f"; {flagged} suspend-flagged trial(s) warm-resumable"
               if flagged else ""),
        )
        self._fail_node(node, destroy_data=True)

    # ------------------------------------------------------------------
    # Starvation watchdog
    # ------------------------------------------------------------------
    def _arm_starvation_watchdog(self) -> None:
        """Keep one sim event armed at the earliest starvation deadline.

        This is what turns an otherwise-stalled simulation (every node a
        class could use is dead or draining, queue empty) into a timed,
        structured failure instead of a hang.
        """
        assert self.runtime is not None
        deadline = self.runtime.dispatcher.next_starvation_deadline()
        if deadline is None:
            if self._starvation_handle is not None:
                self._starvation_handle.cancel()
                self._starvation_handle = None
            return
        if self._starvation_handle is not None:
            if self._starvation_at <= deadline + 1e-9:
                return  # armed early enough; the handler re-arms
            self._starvation_handle.cancel()
        self._starvation_at = max(deadline, self.now)
        self._starvation_handle = self.sim.schedule_at(
            self._starvation_at,
            self._reap_starved,
            "starvation-watchdog",
        )

    def _reap_starved(self) -> None:
        """Fail every task whose class starved past the timeout."""
        assert self.runtime is not None
        self._drain_pending()
        self._starvation_handle = None
        runtime = self.runtime
        for task, waited in runtime.dispatcher.reap_starved():
            names = ", ".join(
                impl.constraint.describe()
                for impl in task.definition.all_candidates()
            )
            exc = ResourceStarvationError(task.label, names, waited)
            task.attempt_history.append(f"starved for {waited:g}s: {exc}")
            task.state = TaskState.FAILED
            task.error = exc
            runtime.journal_task_event(task, ckpt.FAILED, node="")
            runtime.fail_descendants(task, self.now)
        self._arm_starvation_watchdog()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def notify_submitted(self, task: TaskInvocation) -> None:
        # Lazy: the event loop runs inside wait_for (virtual time).
        pass

    def notify_topology_change(self) -> None:
        """Run a scheduling round now (node added / drained / rejoined)."""
        self._dispatch()

    def _refresh_batching(self) -> None:
        """Recompute whether completions may defer their scheduling rounds.

        Batching buffers clean completions and replays them through one
        engine drain per simulator wake.  The replay is placement-exact
        (see :meth:`DispatchEngine.drain <repro.runtime.dispatch.DispatchEngine.drain>`),
        but features whose *side bookkeeping* observes individual rounds
        — straggler medians, node-health windows, integrity verification,
        trace event order — keep the classic round-per-event path so
        their outputs stay bit-identical.  The pure-throughput regime
        (all of them off) is exactly the one the batching targets.
        """
        assert self.runtime is not None
        runtime = self.runtime
        self._eager_flush = (
            not runtime.config.batch_wakes
            or runtime.straggler is not None
            or runtime.node_health.enabled
            or runtime.integrity is not None
            or runtime.tracer.enabled
        )

    def _drain_pending(self) -> None:
        """Replay buffered completion units through one batched round.

        No-op when nothing is buffered.  Every event handler that is not
        a clean completion calls this first: event-by-event, the buffered
        rounds ran *before* that handler fired, so replaying them first
        preserves the unbatched ordering exactly.
        """
        units = self._units
        if not units:
            return
        assert self.runtime is not None
        runtime = self.runtime
        self._units = []
        self._check_drains()
        for assignment in runtime.dispatcher.drain(units):
            self._start(assignment)
        self._arm_starvation_watchdog()

    def _dispatch(self) -> None:
        """Incremental scheduling round over the runtime's dispatch engine.

        Newly-ready tasks are folded into the per-constraint-class
        queues; the engine probes only class heads and skips classes
        whose capacity hasn't changed since they last failed to place.
        Also the hook where drains complete (the round follows every
        attempt-ending event) and where the starvation watchdog re-arms.
        """
        assert self.runtime is not None
        runtime = self.runtime
        self._drain_pending()
        self._check_drains()
        runtime.dispatcher.ingest(runtime.graph.pop_ready())
        for assignment in runtime.dispatcher.schedule_round():
            self._start(assignment)
        self._arm_starvation_watchdog()

    def _start(self, assignment: Assignment, speculative: bool = False) -> None:
        assert self.runtime is not None
        runtime = self.runtime
        task = assignment.task
        alloc = assignment.allocation
        node = alloc.node
        node_spec = runtime.cluster.node(node)
        transfer, corrupt = self._prepare_inputs(task, node, speculative)
        if corrupt:
            # A corrupt input with no intact copy anywhere: hand the
            # resources back, pull this consumer out of the running set
            # and re-execute the writers through the lineage machinery.
            release_assignment(runtime.pool, assignment)
            runtime.recompute_corrupt(corrupt, extra_consumers=[task])
            self.sim.schedule(0.0, self._dispatch, label=f"redispatch-{task.label}")
            return
        task.state = TaskState.RUNNING
        if not speculative:
            task.node = node
            if runtime.journal is not None:
                runtime.journal_task_event(task, ckpt.STARTED, node=node)
        config = self._find_config(task)
        staging = self._staging_time(task, node, config) + transfer
        duration = self._duration(task, node_spec, alloc, config)
        injector = runtime.failure_injector
        if injector is not None and not speculative:
            # Straggler injection models node-local slowness: a backup
            # attempt on a different node runs at modelled speed.
            duration *= injector.slow_factor(task.label)
        start = self.sim.now
        attempt = _Attempt(assignment, start, speculative)
        self._attempts.setdefault(task.task_id, []).append(attempt)
        if runtime.tracer.enabled:
            runtime.tracer.record_event(
                start, "task_start", task.label, node
            )
        hang = (
            injector is not None
            and not speculative
            and injector.should_hang(task.label, task.attempts)
        )
        if not hang:
            # args-based dispatch: no per-task closure or f-string label
            # on the hot path (millions of these per large study).
            attempt.handle = self.sim.schedule(
                staging + duration,
                self._complete,
                "complete",
                (task.task_id, attempt),
            )
        timeout = runtime.config.task_timeout_s
        if timeout is not None:
            attempt.timeout_handle = self.sim.schedule(
                float(timeout),
                self._on_timeout,
                "timeout",
                (task.task_id, attempt),
            )
        if not speculative and runtime.straggler is not None:
            self._schedule_spec_check(task.task_id, attempt)

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def _complete(self, task_id: int, attempt: _Attempt) -> None:
        assert self.runtime is not None
        runtime = self.runtime
        if not self._detach(task_id, attempt):
            return
        attempt.cancel_events()
        assignment = attempt.assignment
        start = attempt.start
        task = assignment.task
        node = assignment.allocation.node
        injector = runtime.failure_injector
        # Injected failures apply to primary attempts only: a speculative
        # backup is a clean re-execution on a different node.
        if (
            injector is not None
            and not attempt.speculative
            and injector.should_fail(task.label, task.attempts)
        ):
            # Failure handling is ordered against scheduling rounds:
            # replay any buffered completions before processing it.
            self._drain_pending()
            task.attempts += 1
            exc = RuntimeError(f"injected failure for {task.label}")
            self._record(task, assignment, start, self.now, success=False)
            release_assignment(self.runtime.pool, assignment)
            self.runtime.node_health.record_failure(node)
            if self._siblings(task_id):
                task.attempt_history.append(
                    f"attempt {task.attempts} on {node}: {exc!r} -> "
                    "backup still running"
                )
                return
            self._after_failure(assignment, exc, force_other=False)
            return
        if self._attempts.get(task_id):
            # First finisher wins: cancel any still-racing attempts.
            self._drain_pending()
            for loser in self._attempts.pop(task_id, []):
                loser.cancel_events()
                release_assignment(self.runtime.pool, loser.assignment)
                self.runtime.resilience.record(
                    self.now, rsl.SPECULATION_CANCELLED, task.label,
                    loser.assignment.allocation.node,
                    detail=f"lost to attempt on {node}",
                )
        if attempt.speculative:
            self.runtime.resilience.record(
                self.now, rsl.SPECULATION_WON, task.label, node,
                detail=f"backup finished first after {self.now - start:.1f}s",
            )
        result: Any = None
        if self.execute_bodies:
            args, kwargs = self.resolve_arguments(task)
            try:
                result = assignment.implementation.func(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - route into fault handling
                self._drain_pending()
                task.attempts += 1
                self._record(task, assignment, start, self.now, success=False)
                release_assignment(self.runtime.pool, assignment)
                self.runtime.node_health.record_failure(node)
                self._after_failure(assignment, exc, force_other=False)
                return
        if self._eager_flush or self._draining:
            self._record(task, assignment, start, self.now, success=True)
            release_assignment(self.runtime.pool, assignment)
            self.runtime.node_health.record_success(node)
            if self.runtime.straggler is not None:
                self.runtime.straggler.observe(
                    task.definition.name, self.now - start
                )
            task.result = result
            task.node = node
            task.start_time, task.end_time = start, self.now
            self.runtime.complete_task(task, result)
            self._schedule_spec_checks_for_name(task.definition.name)
            self._dispatch()
            return
        # Batched fast path: record the completion now, but defer the
        # allocation release and the scheduling round into the next
        # engine drain.  The drain replays units in completion order, so
        # placements are byte-identical to the round-per-event path.
        task.result = result
        task.node = node
        task.start_time, task.end_time = start, self.sim.now
        runtime.complete_task(task, result)
        self._units.append((assignment, runtime.graph.pop_ready()))

    def _on_timeout(self, task_id: int, attempt: _Attempt) -> None:
        """A deadline fired: kill the attempt and treat it as a failure."""
        assert self.runtime is not None
        self._drain_pending()
        if not self._detach(task_id, attempt):
            return
        attempt.cancel_events()
        assignment = attempt.assignment
        task = assignment.task
        node = assignment.allocation.node
        timeout = self.runtime.config.task_timeout_s
        task.attempts += 1
        exc = TaskTimeoutError(
            f"task {task.label} exceeded its {timeout}s deadline on {node}"
        )
        self._record(task, assignment, attempt.start, self.now, success=False)
        release_assignment(self.runtime.pool, assignment)
        self.runtime.resilience.record(
            self.now, rsl.TIMEOUT, task.label, node,
            detail=f"deadline {float(timeout):.0f}s",
        )
        self.runtime.node_health.record_failure(node, kind="timeout")
        if self._siblings(task_id):
            task.attempt_history.append(
                f"attempt {task.attempts} on {node}: {exc!r} -> "
                "backup still running"
            )
            return
        self._after_failure(assignment, exc, force_other=False)

    # ------------------------------------------------------------------
    # Speculative re-execution
    # ------------------------------------------------------------------
    def _schedule_spec_check(self, task_id: int, attempt: _Attempt) -> None:
        """Arm a straggler check for ``attempt`` if a median is known."""
        assert self.runtime is not None
        detector = self.runtime.straggler
        if detector is None or attempt.speculative or attempt.spec_check:
            return
        assignment = attempt.assignment
        if assignment.extra_allocations:
            return  # multinode tasks are not speculated
        threshold = detector.threshold(assignment.task.definition.name)
        if threshold is None:
            return
        attempt.spec_check = self.sim.schedule_at(
            max(self.now, attempt.start + threshold),
            lambda: self._spec_check(task_id, attempt),
            label=f"spec-check-{assignment.task.label}",
        )

    def _schedule_spec_checks_for_name(self, name: str) -> None:
        """A completion updated ``name``'s median: arm checks on its peers."""
        assert self.runtime is not None
        detector = self.runtime.straggler
        if detector is None or detector.threshold(name) is None:
            return
        for task_id, attempts in list(self._attempts.items()):
            if len(attempts) != 1:
                continue
            attempt = attempts[0]
            if attempt.assignment.task.definition.name == name:
                self._schedule_spec_check(task_id, attempt)

    def _spec_check(self, task_id: int, attempt: _Attempt) -> None:
        """Decide whether a running attempt is a straggler; maybe back it up."""
        assert self.runtime is not None
        self._drain_pending()
        attempt.spec_check = None
        attempts = self._attempts.get(task_id)
        if not attempts or attempt not in attempts or len(attempts) > 1:
            return
        detector = self.runtime.straggler
        if detector is None:
            return
        task = attempt.assignment.task
        threshold = detector.threshold(task.definition.name)
        if threshold is None:
            return
        elapsed = self.now - attempt.start
        if elapsed < threshold:
            # Median grew since this check was armed; re-arm at the new
            # threshold (strictly in the future, so this terminates).
            attempt.spec_check = self.sim.schedule_at(
                attempt.start + threshold,
                lambda: self._spec_check(task_id, attempt),
                label=f"spec-check-{task.label}",
            )
            return
        impl = attempt.assignment.implementation
        origin = attempt.assignment.allocation.node
        pool = self.runtime.pool
        others = [
            w.name for w in pool.available_workers() if w.name != origin
        ]
        if not others:
            return
        alloc = pool.try_allocate(impl.constraint, preferred=others)
        if alloc is None:
            return
        if alloc.node == origin:
            pool.release(alloc)
            return
        self.runtime.resilience.record(
            self.now, rsl.SPECULATION_LAUNCHED, task.label, alloc.node,
            detail=f"running {elapsed:.1f}s > {threshold:.1f}s threshold "
            f"on {origin}",
        )
        self._start(Assignment(task, alloc, impl), speculative=True)

    # ------------------------------------------------------------------
    # Retry policy application
    # ------------------------------------------------------------------
    def _after_failure(
        self,
        assignment: Assignment,
        exc: BaseException,
        force_other: bool,
    ) -> None:
        """Apply the retry policy (with backoff) after a failed attempt.

        ``force_other`` skips the same-node retry (the node is gone).
        The attempt's allocation has already been released (or is stranded
        on a failed node, which the pool resets on recovery).
        """
        assert self.runtime is not None
        task = assignment.task
        node = assignment.allocation.node
        action = self.runtime.retry_policy.decide(task)
        if action == FaultAction.RETRY_SAME_NODE and force_other:
            action = FaultAction.RESUBMIT_OTHER_NODE
        task.attempt_history.append(
            f"attempt {task.attempts} on {node}: {exc!r} -> {action.value}"
        )
        _log.info(
            "t=%.1f task %s failed (attempt %d): %s -> %s",
            self.now, task.label, task.attempts, exc, action.value,
        )
        if action == FaultAction.GIVE_UP:
            task.state = TaskState.FAILED
            task.error = exc
            self.runtime.journal_task_event(task, ckpt.FAILED, node=node)
            self.runtime.fail_descendants(task, self.now)
            return
        delay = self.runtime.retry_policy.backoff_delay(task.label, task.attempts)
        if delay > 0.0:
            self.runtime.resilience.record(
                self.now, rsl.BACKOFF_WAIT, task.label, node,
                detail=f"{delay:.2f}s before {action.value}",
            )
        if action == FaultAction.RETRY_SAME_NODE:
            retry = lambda: self._retry_same_node(task, assignment)  # noqa: E731
        else:
            retry = lambda: self._requeue_for_other(task, assignment)  # noqa: E731
        if delay > 0.0:
            self.sim.schedule(delay, retry, label=f"backoff-{task.label}")
        else:
            retry()

    def _retry_same_node(self, task: TaskInvocation, assignment: Assignment) -> None:
        """Reacquire the same node's resources and rerun there."""
        assert self.runtime is not None
        self._drain_pending()
        alloc = self.runtime.pool.try_allocate(
            assignment.implementation.constraint,
            preferred=[assignment.allocation.node],
        )
        if alloc is None or alloc.node != assignment.allocation.node:
            if alloc is not None:
                self.runtime.pool.release(alloc)
            self._requeue_for_other(task, assignment)
            return
        self._start(Assignment(task, alloc, assignment.implementation))

    def _requeue_for_other(self, task: TaskInvocation, assignment: Assignment) -> None:
        assert self.runtime is not None
        self._drain_pending()
        task.failed_nodes.append(assignment.allocation.node)
        task.state = TaskState.READY
        self.runtime.graph.requeue([task])
        self._dispatch()

    def _record(
        self, task: TaskInvocation, assignment: Assignment, start, end, success
    ) -> None:
        assert self.runtime is not None
        if not self.runtime.tracer.enabled:
            # Zero-cost when tracing is off: no TaskRecord construction,
            # no buffer append on the fast path.
            return
        for alloc in assignment.all_allocations:
            self.runtime.tracer.record_task(
                TaskRecord(
                    task_label=task.label,
                    task_name=task.definition.name,
                    node=alloc.node,
                    cpu_ids=alloc.cpu_ids,
                    gpu_ids=alloc.gpu_ids,
                    start=start,
                    end=end,
                    success=success,
                    attempt=task.attempts,
                )
            )

    # ------------------------------------------------------------------
    # Synchronisation (virtual time)
    # ------------------------------------------------------------------
    def wait_for(self, tasks: Sequence[TaskInvocation]) -> None:
        self._refresh_batching()
        self._ensure_node_failures_scheduled()
        self._dispatch()

        # Amortised completion tracking: re-scanning every awaited task
        # after every event is O(n²) for n-task studies.  Instead keep the
        # not-yet-finished subset and compact it only after at least
        # len(pending) events have fired — O(1) amortised per event.
        # Failures are captured *during* compaction (not by a final scan
        # of ``tasks``) so completed invocations drop out of this frame
        # and the graph's streaming mode can free them.
        done = TaskState.DONE
        failed_state = TaskState.FAILED
        failed: List[TaskInvocation] = []
        pending: List[TaskInvocation] = []
        for t in tasks:
            state = t.state
            if state is done:
                continue
            if state is failed_state:
                failed.append(t)
            else:
                pending.append(t)
        step_batch = self.sim.step_batch
        steps_until_scan = len(pending)
        while pending:
            # Vectorised event core: fire every event at the current
            # timestamp (thousands of homogeneous completions per wake),
            # then run ONE batched drain over the buffered units.
            fired = step_batch()
            if self._units:
                self._drain_pending()
            if not fired:
                stalled = True
            else:
                stalled = False
                steps_until_scan -= fired
            if stalled or steps_until_scan <= 0:
                remaining: List[TaskInvocation] = []
                for t in pending:
                    state = t.state
                    if state is done:
                        continue
                    if state is failed_state:
                        failed.append(t)
                    else:
                        remaining.append(t)
                pending = remaining
                if stalled:
                    break
                steps_until_scan = max(1, len(pending))
                # Compaction cadence doubles as the GC-relief cadence:
                # freeze the completed-task history out of the cycle
                # collector's scan set (O(1), see runtime.gc_checkpoint).
                self.runtime.gc_checkpoint()
        if failed:
            t = failed[0]
            cause = t.error or RuntimeError("unknown")
            raise TaskFailedError(t, cause) from cause
        if pending:
            stuck = [t.label for t in pending]
            raise RuntimeError(
                f"simulation stalled with tasks unfinished: {stuck[:5]} "
                f"(+{max(0, len(stuck) - 5)} more); "
                "likely an unsatisfiable constraint, all nodes down, or a "
                "hung task with no task_timeout_s deadline configured"
            )

    def shutdown(self) -> None:
        self._units.clear()
        for attempts in self._attempts.values():
            for attempt in attempts:
                attempt.cancel_events()
        self._attempts.clear()
        for handle in self._draining.values():
            handle.cancel()
        self._draining.clear()
        if self._starvation_handle is not None:
            self._starvation_handle.cancel()
            self._starvation_handle = None
