"""Cooperative trial preemption: suspend warm, resume exactly where left.

Every pressure path of the runtime used to *kill* work: the service
memory watchdog shed queued studies, spot-preemption notices and drain
deadlines lost in-flight epochs to lineage recompute, and multi-fidelity
schedulers could only stop trials at rung barriers.  This module makes
"stop" mean "suspend": a :class:`PreemptionController` raises a per-trial
flag, the trial's checkpoint-epoch callback (riding ``Sequential.fit``'s
``on_epoch_end`` hook) observes it, spills model + optimiser + epoch
cursor through the atomic spill + ``.sum`` sidecar machinery of
:class:`~repro.runtime.checkpoint.CheckpointStore`, and stops warm; the
HPO runner resubmits the trial as a resumable task that restores the
spill and continues from the cursor — byte-identical to a run that was
never suspended (the spill carries both RNG streams, the optimiser's
moment state and step counter, and the accumulated history).

The flag transport is a flag *file* next to the spill (plus an
in-process fast path), so cooperative suspension works across every
executor backend — in-driver threads, process pools, and supervised
worker processes — without any channel beyond the filesystem the spill
machinery already requires.  A torn suspend spill (crash mid-write)
fails sidecar verification and is treated as missing: the trial restarts
cold, which is slower but never wrong.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from repro.runtime.checkpoint import CheckpointCorruptError, CheckpointStore
from repro.util.logging_utils import get_logger

_log = get_logger("runtime.preemption")

#: Reserved config key carrying a :class:`PreemptContext` spec into the
#: objective.  The runner injects it into the *submitted* copy of a
#: trial's config only — ``trial.config`` (and therefore algorithms,
#: reports, and result dumps) never see it.
PREEMPT_CONFIG_KEY = "__preempt__"
#: Marker key on an objective payload meaning "this trial suspended
#: cooperatively; resubmit me to resume from the spilled epoch cursor".
SUSPENDED_PAYLOAD_KEY = "__suspended__"

#: In-process suspension flags (fast path for the threads backend and
#: for the controller's own bookkeeping).  Keyed by preempt key; the
#: flag file under the spill directory is the cross-process truth.
_LOCAL_FLAGS: set = set()
_LOCAL_LOCK = threading.Lock()


def _flag_locally(key: str) -> None:
    with _LOCAL_LOCK:
        _LOCAL_FLAGS.add(key)


def _unflag_locally(key: str) -> None:
    with _LOCAL_LOCK:
        _LOCAL_FLAGS.discard(key)


def _flagged_locally(key: str) -> bool:
    with _LOCAL_LOCK:
        return key in _LOCAL_FLAGS


class PreemptContext:
    """Picklable per-trial handle the objective uses to cooperate.

    Travels inside the submitted config under :data:`PREEMPT_CONFIG_KEY`
    as a plain-dict *spec* (stable under task-key canonicalisation), so
    the deterministic key of a resumed task extends the original trial's
    identity instead of depending on live object state.
    """

    __slots__ = ("key", "directory", "every")

    def __init__(self, key: str, directory: Path, every: int = 1):
        if every < 1:
            raise ValueError(f"checkpoint-epoch cadence must be >= 1, got {every}")
        self.key = str(key)
        self.directory = Path(directory)
        self.every = int(every)

    # -- wire format ----------------------------------------------------
    def spec(self) -> Dict[str, Any]:
        """Plain-dict form embedded in the submitted config."""
        return {"key": self.key, "dir": str(self.directory), "every": self.every}

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "PreemptContext":
        return cls(
            str(spec["key"]), Path(str(spec["dir"])), int(spec.get("every", 1))
        )

    @classmethod
    def from_config(cls, config: Any) -> Optional["PreemptContext"]:
        """Extract the context from an objective's config (None if absent)."""
        if not isinstance(config, Mapping):
            return None
        spec = config.get(PREEMPT_CONFIG_KEY)
        if not isinstance(spec, Mapping):
            return None
        try:
            return cls.from_spec(spec)
        except (KeyError, TypeError, ValueError):
            return None

    # -- flag protocol --------------------------------------------------
    @property
    def flag_path(self) -> Path:
        return self.directory / f"{self.key}.preempt"

    def should_suspend(self) -> bool:
        """Polled once per checkpoint epoch from inside the training loop."""
        if _flagged_locally(self.key):
            return True
        return self.flag_path.exists()

    # -- spill protocol -------------------------------------------------
    def _store(self) -> CheckpointStore:
        return CheckpointStore(self.directory, cadence=1)

    def spill(self, state: Mapping[str, Any]) -> bool:
        """Atomically persist the training state (supersedes prior spills)."""
        return self._store().save(self.key, dict(state), overwrite=True)

    def load(self) -> Optional[Dict[str, Any]]:
        """The last spilled training state; None when absent *or* torn.

        Corrupt == missing: a spill that fails its ``.sum`` sidecar (or
        does not unpickle) is discarded and the trial restarts cold —
        re-executed epochs, never a wrong restore.
        """
        store = self._store()
        try:
            state = store.load_verified(self.key)
        except FileNotFoundError:
            return None
        except CheckpointCorruptError as exc:
            _log.warning("suspend spill %s torn (%s); restarting cold", self.key, exc)
            store.remove(self.key)
            return None
        return state if isinstance(state, dict) else None

    def clear(self) -> None:
        """Drop the flag (spills are kept — rung promotions resume them)."""
        _unflag_locally(self.key)
        try:
            self.flag_path.unlink()
        except OSError:
            pass


class PreemptionController:
    """Runtime-side registry of preemptible trials and their flags.

    ``suspend_trial``/``resume_trial`` are the primitive pair; the
    study- and node-scoped sweeps (``suspend_study`` for the service
    memory watchdog, ``suspend_node`` for drains and spot-preemption
    notices) fan out over the registry of currently running trials the
    HPO runner maintains via :meth:`register`/:meth:`unregister`.
    """

    def __init__(
        self,
        log=None,
        clock: Optional[Callable[[], float]] = None,
        max_suspended: Optional[int] = None,
    ):
        self._log = log
        self._clock = clock or (lambda: 0.0)
        self.max_suspended = max_suspended
        self._lock = threading.Lock()
        #: preempt key -> (context, invocation) of a registered trial.
        self._registry: Dict[str, tuple] = {}
        #: keys currently flagged for suspension.
        self._suspended: set = set()
        #: lifetime counters (surfaced via :meth:`stats`).
        self.suspends_requested = 0
        self.suspends_refused = 0
        self.resumes_requested = 0

    # ------------------------------------------------------------------
    def register(self, context: PreemptContext, invocation: Any) -> None:
        """Track a submitted preemptible trial (overwrites on resubmit)."""
        with self._lock:
            self._registry[context.key] = (context, invocation)

    def unregister(self, key: str) -> None:
        """Drop a terminally resolved trial from the registry."""
        with self._lock:
            self._registry.pop(key, None)
            self._suspended.discard(key)

    def registered(self) -> Dict[str, Any]:
        """Snapshot of key -> invocation for the registered trials."""
        with self._lock:
            return {k: inv for k, (_, inv) in self._registry.items()}

    # ------------------------------------------------------------------
    def suspend_trial(self, key: str, reason: str = "") -> bool:
        """Flag one trial to suspend at its next checkpoint epoch.

        Returns False when the key is unknown or the controller is at
        ``max_suspended`` concurrently flagged trials (the caller falls
        back to its pre-preemption path).  Idempotent while flagged.
        """
        with self._lock:
            entry = self._registry.get(key)
            if entry is None:
                return False
            if key in self._suspended:
                return True
            if (
                self.max_suspended is not None
                and len(self._suspended) >= self.max_suspended
            ):
                self.suspends_refused += 1
                return False
            context, invocation = entry
            self._suspended.add(key)
            self.suspends_requested += 1
        _flag_locally(key)
        try:
            context.directory.mkdir(parents=True, exist_ok=True)
            context.flag_path.touch()
        except OSError as exc:  # flag file best-effort; in-process flag holds
            _log.warning("could not write preempt flag for %s: %s", key, exc)
        if self._log is not None:
            self._log.record(
                self._clock(), "trial_suspended",
                task_label=getattr(invocation, "label", ""),
                node=getattr(invocation, "node", "") or "",
                detail=f"key={key}" + (f" reason={reason}" if reason else ""),
            )
        return True

    def resume_trial(self, key: str) -> None:
        """Clear a trial's suspension flag so its resubmission runs on."""
        with self._lock:
            entry = self._registry.get(key)
            self._suspended.discard(key)
            self.resumes_requested += 1
        _unflag_locally(key)
        if entry is not None:
            entry[0].clear()

    def is_suspended(self, key: str) -> bool:
        with self._lock:
            return key in self._suspended

    def suspended_count(self) -> int:
        with self._lock:
            return len(self._suspended)

    # ------------------------------------------------------------------
    def suspend_study(self, study_id: str, reason: str = "") -> int:
        """Flag every registered trial of ``study_id``.

        Returns the number of trials *newly* flagged (already-suspended
        ones are left alone and not counted).
        """
        with self._lock:
            keys = [
                k for k, (_, inv) in self._registry.items()
                if getattr(inv, "study", "") == study_id
                and k not in self._suspended
            ]
        return sum(
            1 for k in keys
            if self.suspend_trial(k, reason=reason or f"study={study_id}")
        )

    def suspend_node(self, node: str, reason: str = "") -> int:
        """Flag every registered trial running on ``node`` (drain path).

        Returns the number of trials newly flagged, like
        :meth:`suspend_study`.
        """
        with self._lock:
            keys = [
                k for k, (_, inv) in self._registry.items()
                if (getattr(inv, "node", "") or "") == node
                and k not in self._suspended
            ]
        return sum(
            1 for k in keys
            if self.suspend_trial(k, reason=reason or f"node={node}")
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "registered": len(self._registry),
                "flagged": len(self._suspended),
                "suspends_requested": self.suspends_requested,
                "suspends_refused": self.suspends_refused,
                "resumes_requested": self.resumes_requested,
            }


def clear_local_flags() -> None:
    """Reset the in-process flag set (test isolation)."""
    with _LOCAL_LOCK:
        _LOCAL_FLAGS.clear()


def strip_preempt(config: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of ``config`` without the reserved preemption key."""
    return {k: v for k, v in config.items() if k != PREEMPT_CONFIG_KEY}


__all__ = [
    "PREEMPT_CONFIG_KEY",
    "SUSPENDED_PAYLOAD_KEY",
    "PreemptContext",
    "PreemptionController",
    "clear_local_flags",
    "strip_preempt",
]
