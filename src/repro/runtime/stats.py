"""Per-task-name execution statistics from a recorded trace.

The quantitative companion to the Gantt view: for each task name, how
many attempts ran, how long they took, how often they failed, which
nodes hosted them.  Used by the CLI report and the overhead ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.runtime.resilience import ResilienceLog
from repro.runtime.tracing.extrae import TraceRecorder
from repro.util.ascii_plot import table


@dataclass
class TaskStats:
    """Aggregates for one task name."""

    name: str
    attempts: int = 0
    failures: int = 0
    durations: List[float] = field(default_factory=list)
    nodes: Dict[str, int] = field(default_factory=dict)
    total_core_seconds: float = 0.0

    @property
    def successes(self) -> int:
        return self.attempts - self.failures

    @property
    def mean_duration(self) -> float:
        return float(np.mean(self.durations)) if self.durations else 0.0

    @property
    def min_duration(self) -> float:
        return float(min(self.durations)) if self.durations else 0.0

    @property
    def max_duration(self) -> float:
        return float(max(self.durations)) if self.durations else 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


def compute_stats(recorder: TraceRecorder) -> Dict[str, TaskStats]:
    """Aggregate a trace into per-task-name statistics."""
    stats: Dict[str, TaskStats] = {}
    # A multinode attempt produces one record per allocation; count the
    # attempt once (keyed by task_label + start) but sum core-seconds over
    # all of its records.
    seen_attempts = set()
    for record in recorder.records:
        entry = stats.setdefault(record.task_name, TaskStats(record.task_name))
        key = (record.task_label, record.start, record.attempt)
        if key not in seen_attempts:
            seen_attempts.add(key)
            entry.attempts += 1
            if not record.success:
                entry.failures += 1
            else:
                entry.durations.append(record.duration)
        entry.nodes[record.node] = entry.nodes.get(record.node, 0) + 1
        entry.total_core_seconds += record.duration * (
            len(record.cpu_ids) + len(record.gpu_ids)
        )
    return stats


def render_stats(recorder: TraceRecorder) -> str:
    """Text table of :func:`compute_stats`."""
    stats = compute_stats(recorder)
    if not stats:
        return "(no task records)"
    rows = [
        [
            s.name,
            s.attempts,
            s.failures,
            s.mean_duration,
            s.min_duration,
            s.max_duration,
            len(s.nodes),
            s.total_core_seconds,
        ]
        for s in sorted(stats.values(), key=lambda s: s.name)
    ]
    return table(
        ["task", "attempts", "failed", "mean s", "min s", "max s",
         "nodes", "core-seconds"],
        rows,
        title="per-task execution statistics",
    )


def render_resilience(log: ResilienceLog) -> str:
    """Text table of resilience decisions (timeouts, speculation, quarantine).

    One row per event kind with its count, plus the first occurrence as a
    worked example — compact enough for the CLI report, detailed enough
    to see *why* a study's tail behaved the way it did.
    """
    if not len(log):
        return "(no resilience events)"
    counts = log.counts()
    rows = []
    for kind in sorted(counts):
        events = log.of_kind(kind)
        # counts() carries synthetic keys (e.g. "dropped_events") with no
        # backing events; show them without a worked example.
        example = events[0].describe() if events else "-"
        rows.append([kind, counts[kind], example])
    return table(
        ["event", "count", "first occurrence"],
        rows,
        title="resilience events",
    )
