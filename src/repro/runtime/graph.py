"""The dynamic task dependency graph (paper §4, Fig. 3).

A thin layer over :mod:`networkx`: nodes are
:class:`~repro.runtime.task_definition.TaskInvocation` ids, edges carry
the data-version labels produced by the access processor.  The graph
maintains the ready set (tasks whose predecessors have all completed)
consumed by the scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

import networkx as nx

from repro.runtime.task_definition import TaskInvocation, TaskState


class TaskGraph:
    """Dependency DAG with ready-set maintenance.

    The ready set is a deque (O(1) at both ends: FIFO pops and front
    requeues of fault-tolerance resubmissions).  ``ready_ops`` counts
    every ready-set maintenance operation — pops, pushes, and
    successor-edge visits on completion — so tests can assert the
    bookkeeping stays linear in nodes + edges rather than quadratic.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._tasks: Dict[int, TaskInvocation] = {}
        self._pending_preds: Dict[int, int] = {}
        self._ready: Deque[int] = deque()  # FIFO by submission order
        #: Ready-set maintenance operation counter (see class docstring).
        self.ready_ops: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(
        self,
        task: TaskInvocation,
        dependencies: Iterable[TaskInvocation],
        edge_labels: Optional[Dict[int, str]] = None,
    ) -> None:
        """Insert ``task`` depending on ``dependencies`` (may be empty)."""
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.label} already in graph")
        self._tasks[task.task_id] = task
        self._g.add_node(task.task_id)
        pending = 0
        for dep in dependencies:
            if dep.task_id not in self._tasks:
                raise ValueError(
                    f"dependency {dep.label} of {task.label} not in graph"
                )
            label = (edge_labels or {}).get(dep.task_id, "")
            self._g.add_edge(dep.task_id, task.task_id, label=label)
            if dep.state not in (TaskState.DONE,):
                pending += 1
        self._pending_preds[task.task_id] = pending
        # A task restored from a checkpoint enters the graph already DONE:
        # it holds its journaled result and must never reach the dispatcher.
        if pending == 0 and task.state != TaskState.DONE:
            task.state = TaskState.READY
            self._ready.append(task.task_id)
            self.ready_ops += 1
        # A cycle is impossible by construction (dependencies precede the
        # task), but guard against misuse via self-edges.
        if self._g.has_edge(task.task_id, task.task_id):
            raise ValueError(f"task {task.label} depends on itself")

    # ------------------------------------------------------------------
    # Execution-time updates
    # ------------------------------------------------------------------
    def pop_ready(self, limit: Optional[int] = None) -> List[TaskInvocation]:
        """Remove and return up to ``limit`` ready tasks (FIFO)."""
        n = len(self._ready) if limit is None else min(limit, len(self._ready))
        out = [self._tasks[self._ready.popleft()] for _ in range(n)]
        self.ready_ops += n
        return out

    def peek_ready(self) -> List[TaskInvocation]:
        """Ready tasks without removing them."""
        return [self._tasks[tid] for tid in self._ready]

    def requeue(self, tasks: Iterable[TaskInvocation]) -> None:
        """Put unschedulable ready tasks back (front, preserving order)."""
        ids = [t.task_id for t in tasks]
        self._ready.extendleft(reversed(ids))
        self.ready_ops += len(ids)

    def mark_done(self, task: TaskInvocation) -> List[TaskInvocation]:
        """Mark completion; returns newly-ready successor tasks."""
        task.state = TaskState.DONE
        newly_ready: List[TaskInvocation] = []
        for succ_id in self._g.successors(task.task_id):
            self.ready_ops += 1
            self._pending_preds[succ_id] -= 1
            if self._pending_preds[succ_id] == 0:
                succ = self._tasks[succ_id]
                if succ.state == TaskState.SUBMITTED:
                    succ.state = TaskState.READY
                    self._ready.append(succ_id)
                    newly_ready.append(succ)
        return newly_ready

    # ------------------------------------------------------------------
    # Lineage (data recovery after node loss)
    # ------------------------------------------------------------------
    def ancestors(self, task: TaskInvocation) -> List[TaskInvocation]:
        """All transitive predecessors of ``task`` (its data lineage)."""
        return [self._tasks[tid] for tid in nx.ancestors(self._g, task.task_id)]

    def descendants(self, task: TaskInvocation) -> List[TaskInvocation]:
        """All transitive successors (everything fed by ``task``'s data)."""
        return [self._tasks[tid] for tid in nx.descendants(self._g, task.task_id)]

    def invalidate(self, tasks: Iterable[TaskInvocation]) -> List[TaskInvocation]:
        """Un-complete ``tasks`` so they re-execute (lineage recovery).

        Each task returns to SUBMITTED; successors that had counted a
        previously-DONE member as done wait again (READY successors are
        pulled back out of the ready set).  Pending-predecessor counts
        are then recomputed for the invalidated set and any whose
        dependencies all survive re-enter the ready set immediately.
        Returns the newly-ready tasks.  The batch may also contain
        READY/RUNNING tasks (aborted consumers of destroyed data); their
        successors already counted them as pending, so only DONE members
        trigger successor bumps.  RUNNING/DONE successors *outside* the
        batch are the caller's problem (kill the attempt, or leave the
        already-computed result alone).
        """
        batch = {t.task_id: t for t in tasks}
        was_done = {
            tid for tid, t in batch.items() if t.state == TaskState.DONE
        }
        for t in batch.values():
            if t.state == TaskState.READY:
                try:
                    self._ready.remove(t.task_id)
                    self.ready_ops += 1
                except ValueError:
                    pass  # already handed to the dispatcher
            t.state = TaskState.SUBMITTED
        for tid in was_done:
            for succ_id in self._g.successors(tid):
                if succ_id in batch:
                    continue  # recomputed below
                succ = self._tasks[succ_id]
                if succ.state == TaskState.READY:
                    succ.state = TaskState.SUBMITTED
                    try:
                        self._ready.remove(succ_id)
                        self.ready_ops += 1
                    except ValueError:
                        pass  # already handed to the dispatcher
                if succ.state == TaskState.SUBMITTED:
                    self._pending_preds[succ_id] += 1
        newly_ready: List[TaskInvocation] = []
        for t in batch.values():
            pending = sum(
                1
                for pred_id in self._g.predecessors(t.task_id)
                if self._tasks[pred_id].state != TaskState.DONE
            )
            self._pending_preds[t.task_id] = pending
            if pending == 0:
                t.state = TaskState.READY
                self._ready.append(t.task_id)
                self.ready_ops += 1
                newly_ready.append(t)
        return newly_ready

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    def tasks(self) -> List[TaskInvocation]:
        """All tasks in submission order."""
        return [self._tasks[tid] for tid in sorted(self._tasks)]

    def task(self, task_id: int) -> TaskInvocation:
        return self._tasks[task_id]

    def unfinished(self) -> List[TaskInvocation]:
        """Tasks not yet DONE."""
        return [t for t in self._tasks.values() if t.state != TaskState.DONE]

    def predecessors(self, task: TaskInvocation) -> List[TaskInvocation]:
        return [self._tasks[tid] for tid in self._g.predecessors(task.task_id)]

    def successors(self, task: TaskInvocation) -> List[TaskInvocation]:
        return [self._tasks[tid] for tid in self._g.successors(task.task_id)]

    def edge_label(self, src: TaskInvocation, dst: TaskInvocation) -> str:
        return self._g.edges[src.task_id, dst.task_id].get("label", "")

    def edges(self):
        """Iterate ``(src_task, dst_task, label)`` triples."""
        for u, v, data in self._g.edges(data=True):
            yield self._tasks[u], self._tasks[v], data.get("label", "")

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only use)."""
        return self._g

    def critical_path_length(self, duration_of=None) -> float:
        """Longest path weight through the DAG.

        ``duration_of(task) -> float`` defaults to measured durations
        (``end_time - start_time``), or 1.0 when unknown — giving depth.
        """

        def dur(tid: int) -> float:
            t = self._tasks[tid]
            if duration_of is not None:
                return float(duration_of(t))
            if t.start_time is not None and t.end_time is not None:
                return t.end_time - t.start_time
            return 1.0

        best: Dict[int, float] = {}
        for tid in nx.topological_sort(self._g):
            preds = list(self._g.predecessors(tid))
            base = max((best[p] for p in preds), default=0.0)
            best[tid] = base + dur(tid)
        return max(best.values(), default=0.0)
