"""The dynamic task dependency graph (paper §4, Fig. 3).

Nodes are :class:`~repro.runtime.task_definition.TaskInvocation` ids,
edges carry the data-version labels produced by the access processor.
The graph maintains the ready set (tasks whose predecessors have all
completed) consumed by the scheduler.

Adjacency is plain dict-of-lists (insertion-ordered, matching the edge
iteration order of the earlier networkx backend) — the graph sits on the
submit/complete hot path, and dict operations are several times cheaper
than DiGraph node/edge bookkeeping at million-task scale.  A
:attr:`nx_graph` view is still built on demand for callers that want the
networkx API.

Streaming mode (``stream_completed``): once a completed task's consumers
are all complete too, the task is freed — its node, edges and counters
leave the graph so resident memory tracks the *active frontier* rather
than the full study history.  Introspection (``tasks()``, DOT export)
and lineage recovery then only see live tasks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.runtime.task_definition import TaskInvocation, TaskState


class TaskGraph:
    """Dependency DAG with ready-set maintenance.

    The ready set is a deque (O(1) at both ends: FIFO pops and front
    requeues of fault-tolerance resubmissions).  ``ready_ops`` counts
    every ready-set maintenance operation — pops, pushes, and
    successor-edge visits on completion — so tests can assert the
    bookkeeping stays linear in nodes + edges rather than quadratic.
    """

    def __init__(self) -> None:
        self._tasks: Dict[int, TaskInvocation] = {}
        #: Insertion-ordered adjacency: task_id -> successor/predecessor ids.
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        #: (src_id, dst_id) -> data-version label (only non-empty labels).
        self._labels: Dict[Tuple[int, int], str] = {}
        self._pending_preds: Dict[int, int] = {}
        self._ready: Deque[int] = deque()  # FIFO by submission order
        #: Ready-set maintenance operation counter (see class docstring).
        self.ready_ops: int = 0
        #: Streaming mode: free completed tasks whose consumers are all
        #: complete (set from ``RuntimeConfig.stream_completed``).
        self.stream_completed: bool = False
        #: task_id -> number of its successors not yet DONE (streaming
        #: bookkeeping; only maintained when streaming is on).
        self._unfinished_succs: Dict[int, int] = {}
        #: Count of tasks freed by streaming (observability / tests).
        self.freed_tasks: int = 0
        #: Optional hook invoked with each freed task (the runtime uses
        #: it to drop its output-future registry entry).
        self.on_free: Optional[Callable[[TaskInvocation], None]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(
        self,
        task: TaskInvocation,
        dependencies: Iterable[TaskInvocation],
        edge_labels: Optional[Dict[int, str]] = None,
    ) -> None:
        """Insert ``task`` depending on ``dependencies`` (may be empty)."""
        tid = task.task_id
        if tid in self._tasks:
            raise ValueError(f"task {task.label} already in graph")
        self._tasks[tid] = task
        self._succ[tid] = []
        pred_list: List[int] = []
        self._pred[tid] = pred_list
        streaming = self.stream_completed
        pending = 0
        for dep in dependencies:
            dep_id = dep.task_id
            if dep_id == tid:
                raise ValueError(f"task {task.label} depends on itself")
            if dep_id not in self._tasks:
                if streaming and dep.state == TaskState.DONE:
                    # The producer was freed (its earlier consumers all
                    # completed): it is done by construction, no edge to
                    # record.
                    continue
                raise ValueError(
                    f"dependency {dep.label} of {task.label} not in graph"
                )
            self._succ[dep_id].append(tid)
            pred_list.append(dep_id)
            if edge_labels:
                label = edge_labels.get(dep_id, "")
                if label:
                    self._labels[(dep_id, tid)] = label
            if dep.state is not TaskState.DONE:
                pending += 1
            if streaming:
                self._unfinished_succs[dep_id] = (
                    self._unfinished_succs.get(dep_id, 0) + 1
                )
        self._pending_preds[tid] = pending
        # A task restored from a checkpoint enters the graph already DONE:
        # it holds its journaled result and must never reach the dispatcher.
        if pending == 0 and task.state is not TaskState.DONE:
            task.state = TaskState.READY
            self._ready.append(tid)
            self.ready_ops += 1

    # ------------------------------------------------------------------
    # Execution-time updates
    # ------------------------------------------------------------------
    def pop_ready(self, limit: Optional[int] = None) -> List[TaskInvocation]:
        """Remove and return up to ``limit`` ready tasks (FIFO)."""
        ready = self._ready
        n = len(ready) if limit is None else min(limit, len(ready))
        if not n:
            return []
        tasks = self._tasks
        popleft = ready.popleft
        out = [tasks[popleft()] for _ in range(n)]
        self.ready_ops += n
        return out

    def peek_ready(self) -> List[TaskInvocation]:
        """Ready tasks without removing them."""
        return [self._tasks[tid] for tid in self._ready]

    def requeue(self, tasks: Iterable[TaskInvocation]) -> None:
        """Put unschedulable ready tasks back (front, preserving order)."""
        ids = [t.task_id for t in tasks]
        self._ready.extendleft(reversed(ids))
        self.ready_ops += len(ids)

    def mark_done(self, task: TaskInvocation) -> List[TaskInvocation]:
        """Mark completion; returns newly-ready successor tasks.

        In streaming mode this is also the point where fully-consumed
        history is freed: the task itself (if it already has no pending
        consumers) and any predecessor whose last unfinished consumer
        this was.
        """
        task.state = TaskState.DONE
        tid = task.task_id
        newly_ready: List[TaskInvocation] = []
        tasks = self._tasks
        pending_preds = self._pending_preds
        succs = self._succ[tid]
        if succs:
            ready_append = self._ready.append
            self.ready_ops += len(succs)
            for succ_id in succs:
                left = pending_preds[succ_id] - 1
                pending_preds[succ_id] = left
                if left == 0:
                    succ = tasks[succ_id]
                    if succ.state is TaskState.SUBMITTED:
                        succ.state = TaskState.READY
                        ready_append(succ_id)
                        newly_ready.append(succ)
        if self.stream_completed:
            unfinished = self._unfinished_succs
            for pred_id in self._pred[tid]:
                left = unfinished.get(pred_id, 0) - 1
                if left > 0:
                    unfinished[pred_id] = left
                else:
                    unfinished.pop(pred_id, None)
                    pred = tasks.get(pred_id)
                    if pred is not None and pred.state is TaskState.DONE:
                        self._free(pred_id)
            if not unfinished.get(tid):
                self._free(tid)
        return newly_ready

    def _free(self, tid: int) -> None:
        """Drop a fully-consumed completed task from the graph."""
        task = self._tasks.pop(tid, None)
        if task is None:
            return
        self._pending_preds.pop(tid, None)
        self._unfinished_succs.pop(tid, None)
        labels = self._labels
        for pred_id in self._pred.pop(tid, ()):
            labels.pop((pred_id, tid), None)
        for succ_id in self._succ.pop(tid, ()):
            labels.pop((tid, succ_id), None)
        self.freed_tasks += 1
        if self.on_free is not None:
            self.on_free(task)

    # ------------------------------------------------------------------
    # Lineage (data recovery after node loss)
    # ------------------------------------------------------------------
    def _reachable(self, start: int, adjacency: Dict[int, List[int]]) -> List[int]:
        seen = {start}
        stack = [start]
        while stack:
            for nxt in adjacency.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        seen.discard(start)
        return sorted(seen)

    def ancestors(self, task: TaskInvocation) -> List[TaskInvocation]:
        """All transitive predecessors of ``task`` (its data lineage)."""
        tasks = self._tasks
        return [
            tasks[tid]
            for tid in self._reachable(task.task_id, self._pred)
            if tid in tasks
        ]

    def descendants(self, task: TaskInvocation) -> List[TaskInvocation]:
        """All transitive successors (everything fed by ``task``'s data)."""
        tasks = self._tasks
        return [
            tasks[tid]
            for tid in self._reachable(task.task_id, self._succ)
            if tid in tasks
        ]

    def invalidate(self, tasks: Iterable[TaskInvocation]) -> List[TaskInvocation]:
        """Un-complete ``tasks`` so they re-execute (lineage recovery).

        Each task returns to SUBMITTED; successors that had counted a
        previously-DONE member as done wait again (READY successors are
        pulled back out of the ready set).  Pending-predecessor counts
        are then recomputed for the invalidated set and any whose
        dependencies all survive re-enter the ready set immediately.
        Returns the newly-ready tasks.  The batch may also contain
        READY/RUNNING tasks (aborted consumers of destroyed data); their
        successors already counted them as pending, so only DONE members
        trigger successor bumps.  RUNNING/DONE successors *outside* the
        batch are the caller's problem (kill the attempt, or leave the
        already-computed result alone).
        """
        batch = {t.task_id: t for t in tasks}
        was_done = {
            tid for tid, t in batch.items() if t.state == TaskState.DONE
        }
        for t in batch.values():
            if t.state == TaskState.READY:
                try:
                    self._ready.remove(t.task_id)
                    self.ready_ops += 1
                except ValueError:
                    pass  # already handed to the dispatcher
            t.state = TaskState.SUBMITTED
        for tid in was_done:
            for succ_id in self._succ[tid]:
                if succ_id in batch:
                    continue  # recomputed below
                succ = self._tasks[succ_id]
                if succ.state == TaskState.READY:
                    succ.state = TaskState.SUBMITTED
                    try:
                        self._ready.remove(succ_id)
                        self.ready_ops += 1
                    except ValueError:
                        pass  # already handed to the dispatcher
                if succ.state == TaskState.SUBMITTED:
                    self._pending_preds[succ_id] += 1
        newly_ready: List[TaskInvocation] = []
        for t in batch.values():
            pending = sum(
                1
                for pred_id in self._pred[t.task_id]
                if self._tasks[pred_id].state != TaskState.DONE
            )
            self._pending_preds[t.task_id] = pending
            if pending == 0:
                t.state = TaskState.READY
                self._ready.append(t.task_id)
                self.ready_ops += 1
                newly_ready.append(t)
        return newly_ready

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    def tasks(self) -> List[TaskInvocation]:
        """All (live) tasks in submission order."""
        return [self._tasks[tid] for tid in sorted(self._tasks)]

    def task(self, task_id: int) -> TaskInvocation:
        return self._tasks[task_id]

    def unfinished(self) -> List[TaskInvocation]:
        """Tasks not yet DONE."""
        return [t for t in self._tasks.values() if t.state != TaskState.DONE]

    def predecessors(self, task: TaskInvocation) -> List[TaskInvocation]:
        tasks = self._tasks
        return [
            tasks[tid]
            for tid in self._pred.get(task.task_id, ())
            if tid in tasks
        ]

    def successors(self, task: TaskInvocation) -> List[TaskInvocation]:
        tasks = self._tasks
        return [
            tasks[tid]
            for tid in self._succ.get(task.task_id, ())
            if tid in tasks
        ]

    def edge_label(self, src: TaskInvocation, dst: TaskInvocation) -> str:
        key = (src.task_id, dst.task_id)
        if key not in self._labels and dst.task_id not in self._succ.get(
            src.task_id, ()
        ):
            raise KeyError(key)
        return self._labels.get(key, "")

    def edges(self):
        """Iterate ``(src_task, dst_task, label)`` triples."""
        tasks = self._tasks
        labels = self._labels
        for u, succs in self._succ.items():
            src = tasks.get(u)
            if src is None:
                continue
            for v in succs:
                dst = tasks.get(v)
                if dst is not None:
                    yield src, dst, labels.get((u, v), "")

    @property
    def nx_graph(self):
        """A networkx DiGraph view (built on demand; mutations ignored)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._tasks)
        for u, succs in self._succ.items():
            for v in succs:
                g.add_edge(u, v, label=self._labels.get((u, v), ""))
        return g

    def critical_path_length(self, duration_of=None) -> float:
        """Longest path weight through the DAG.

        ``duration_of(task) -> float`` defaults to measured durations
        (``end_time - start_time``), or 1.0 when unknown — giving depth.
        """

        def dur(tid: int) -> float:
            t = self._tasks[tid]
            if duration_of is not None:
                return float(duration_of(t))
            if t.start_time is not None and t.end_time is not None:
                return t.end_time - t.start_time
            return 1.0

        # Kahn's algorithm over the live graph (dependencies always carry
        # smaller ids than their consumers, but lineage invalidation can
        # touch counts, so compute indegrees fresh).
        indeg = {tid: len(self._pred.get(tid, ())) for tid in self._tasks}
        queue: Deque[int] = deque(
            tid for tid, d in indeg.items() if d == 0
        )
        best: Dict[int, float] = {}
        while queue:
            tid = queue.popleft()
            base = 0.0
            for pred_id in self._pred.get(tid, ()):
                b = best.get(pred_id, 0.0)
                if b > base:
                    base = b
            best[tid] = base + dur(tid)
            for succ_id in self._succ.get(tid, ()):
                indeg[succ_id] -= 1
                if indeg[succ_id] == 0:
                    queue.append(succ_id)
        return max(best.values(), default=0.0)
