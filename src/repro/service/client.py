"""Thin client for the service daemon (submit / watch / cancel / status).

Every operation is a file read or an atomic rename under the service
root, so the client works from any process that shares the filesystem
with the daemon — including across a daemon crash and restart.  All
waits carry client-side timeouts and raise
:class:`~repro.service.errors.ClientTimeoutError`; submission is
idempotent, so timed-out calls are safe to retry verbatim.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.service import protocol as proto
from repro.service.errors import (
    ClientTimeoutError,
    StudyNotFoundError,
    error_for_code,
)


class ServiceClient:
    """Client handle over one service root directory."""

    def __init__(
        self,
        root: Union[str, Path],
        timeout_s: float = 30.0,
        poll_s: float = 0.05,
    ):
        self.paths = proto.ServicePaths(Path(root))
        self.timeout_s = timeout_s
        self.poll_s = poll_s

    # ------------------------------------------------------------------
    def submit(
        self,
        request: proto.StudyRequest,
        wait_admission: bool = True,
        timeout_s: Optional[float] = None,
    ) -> str:
        """Submit a study; returns its id once the daemon admits it.

        Idempotent: re-submitting the identical request (e.g. retrying
        after a :class:`ClientTimeoutError`, or after a daemon restart)
        is a no-op success.  A typed rejection recorded by the daemon
        (queue full, tenant quota, overload, conflict) is re-raised
        here as its original exception class.
        """
        sid = request.study_id
        if proto.read_json(self.paths.request_file(sid)) is not None:
            existing = proto.read_json(self.paths.request_file(sid))
            if existing == request.to_payload():
                return sid  # already admitted: idempotent retry
            raise error_for_code(
                "study_conflict",
                f"study {sid!r} already exists with a different "
                "specification",
            )
        # Clear any stale rejection so this attempt's verdict is fresh.
        try:
            self.paths.rejection_file(sid).unlink()
        except OSError:
            pass
        self._drop_in_inbox(request)
        if not wait_admission:
            return sid
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.timeout_s
        )
        while True:
            if proto.read_json(self.paths.request_file(sid)) is not None:
                return sid
            rejection = proto.read_json(self.paths.rejection_file(sid))
            if rejection is not None:
                raise error_for_code(
                    str(rejection.get("code", "service_error")),
                    str(rejection.get("message", "submission rejected")),
                )
            if time.monotonic() > deadline:
                raise ClientTimeoutError(
                    f"daemon did not acknowledge study {sid!r} in time; "
                    "submission is idempotent — safe to retry"
                )
            time.sleep(self.poll_s)

    def _drop_in_inbox(self, request: proto.StudyRequest) -> None:
        """Atomically place the request in the daemon's inbox."""
        self.paths.inbox.mkdir(parents=True, exist_ok=True)
        name = f"{request.study_id}.{uuid.uuid4().hex[:8]}.json"
        fd, tmp = tempfile.mkstemp(
            prefix=".submit.", suffix=".tmp", dir=str(self.paths.inbox)
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(request.to_payload(), fh)
        os.replace(tmp, self.paths.inbox / name)

    # ------------------------------------------------------------------
    def status(self, study_id: str) -> Dict[str, Any]:
        """The study's current ``state.json`` (typed error if unknown)."""
        state = proto.read_json(self.paths.state_file(study_id))
        if state is None:
            raise StudyNotFoundError(f"no study {study_id!r} under "
                                     f"{self.paths.root}")
        return state

    def result(self, study_id: str) -> Dict[str, Any]:
        """The completed study's full result dump."""
        payload = proto.read_json(self.paths.result_file(study_id))
        if payload is None:
            raise StudyNotFoundError(
                f"study {study_id!r} has no result (not completed?)"
            )
        return payload

    def watch(
        self, study_id: str, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the study reaches a terminal state; returns it.

        Does not raise on study failure — the caller inspects
        ``status``/``detail`` — but does raise
        :class:`ClientTimeoutError` when the deadline passes first.
        """
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.timeout_s
        )
        while True:
            state = proto.read_json(self.paths.state_file(study_id))
            if state is not None and state.get("status") in (
                proto.TERMINAL_STATES
            ):
                return state
            if time.monotonic() > deadline:
                raise ClientTimeoutError(
                    f"study {study_id!r} not terminal within timeout "
                    f"(last state: "
                    f"{state.get('status') if state else 'unknown'})"
                )
            time.sleep(self.poll_s)

    def cancel(self, study_id: str) -> None:
        """Request cancellation (picked up at the next trial boundary)."""
        if proto.read_json(self.paths.state_file(study_id)) is None:
            raise StudyNotFoundError(f"no study {study_id!r} under "
                                     f"{self.paths.root}")
        cancel = self.paths.cancel_file(study_id)
        cancel.parent.mkdir(parents=True, exist_ok=True)
        cancel.touch()

    def service_status(self) -> Dict[str, Any]:
        """Daemon manifest plus per-state study counts.

        Suspended studies (parked warm by the memory watchdog, resumed
        automatically once pressure clears) are also listed by id under
        ``"suspended"`` — they are neither queued nor terminal.
        """
        manifest = proto.read_json(self.paths.daemon_file) or {
            "status": "absent"
        }
        counts: Dict[str, int] = {}
        suspended: List[str] = []
        if self.paths.studies.is_dir():
            for study_dir in sorted(self.paths.studies.iterdir()):
                state = proto.read_json(study_dir / proto.STATE_FILE) or {}
                status = str(state.get("status", "unknown"))
                counts[status] = counts.get(status, 0) + 1
                if status == proto.SUSPENDED:
                    suspended.append(study_dir.name)
        return {"daemon": manifest, "studies": counts, "suspended": suspended}
