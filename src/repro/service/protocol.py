"""File-spool protocol between service clients and the daemon.

Layout under the service root directory::

    daemon.json                    # daemon heartbeat manifest
    inbox/<request_id>.json        # submissions (atomic rename)
    rejections/<study_id>.json     # typed admission rejections
    studies/<study_id>/
        request.json               # the admitted specification
        state.json                 # queued|running|completed|failed|...
        cancel                     # flag file: tenant requested cancel
        checkpoint/                # the study's journal + spilled outputs
        result.json                # final Study.as_dict() when completed

Every JSON file is written with write-to-temp + ``os.replace`` so a
reader never observes a torn write; the transport therefore works over
any POSIX filesystem — including the shared parallel filesystems of the
paper's clusters, where a login-node daemon and compute-side clients see
the same directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

# Study lifecycle states recorded in state.json.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
SHED = "shed"
#: Suspended warm by the memory watchdog: trials spilled their training
#: state; the daemon re-enqueues the study once pressure clears.
SUSPENDED = "suspended"

#: States from which a study never leaves.
TERMINAL_STATES = frozenset((COMPLETED, FAILED, CANCELLED, SHED))
#: States a restarted daemon must pick back up (crash recovery).
RESUMABLE_STATES = frozenset((QUEUED, RUNNING, SUSPENDED))

DAEMON_FILE = "daemon.json"
INBOX_DIR = "inbox"
REJECTIONS_DIR = "rejections"
STUDIES_DIR = "studies"
REQUEST_FILE = "request.json"
STATE_FILE = "state.json"
RESULT_FILE = "result.json"
CANCEL_FILE = "cancel"
CHECKPOINT_DIR = "checkpoint"


def atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Write ``payload`` to ``path`` so readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Read a JSON file, tolerating a concurrent replace (None if gone)."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


@dataclass
class StudyRequest:
    """One tenant study: everything the daemon needs to run it.

    ``study_id`` doubles as the idempotency key — re-submitting the
    identical request is a no-op; a *different* payload under the same id
    is rejected with :class:`~repro.service.errors.StudyConflictError`.
    """

    study_id: str
    tenant: str = "default"
    #: Listing-1-style space dict (lists → categorical, scalars → const).
    space: Dict[str, Any] = field(default_factory=dict)
    algorithm: str = "grid"
    algorithm_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Objective spec: a registry name (``fast_mock``, ``slow_mock``,
    #: ``poison``, ``train``) or a ``module:function`` dotted path.
    objective: str = "fast_mock"
    batch_size: Optional[int] = None
    #: Fair-share knobs: higher priority places strictly first; within a
    #: band, long-run CPU share converges to the weight ratio.
    priority: int = 0
    weight: float = 1.0
    #: The study's own resilience budget (fault isolation): per-trial
    #: resubmissions, and how many FAILED trials the study tolerates
    #: before the service terminates it (None = unlimited).
    max_trial_retries: int = 0
    max_failed_trials: Optional[int] = None
    #: Cap on the tenant's concurrently *running* placements (slots)
    #: across all its studies (None = uncapped).
    max_tenant_slots: Optional[int] = None
    #: Spill cadence override for the study's checkpoint store.
    checkpoint_every: Optional[int] = 1
    #: Stage-decompose trials into cacheable epoch blocks of this size
    #: (see :class:`repro.hpo.stages.StagePlan`).  None = monolithic
    #: experiment tasks.  With the daemon's shared reuse cache on,
    #: identical stage prefixes resolve from cache *across tenants* —
    #: content keys carry no study namespace by design.
    stage_epochs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.study_id:
            raise ValueError("StudyRequest.study_id must be non-empty")
        if self.stage_epochs is not None and self.stage_epochs < 1:
            raise ValueError(
                f"StudyRequest.stage_epochs must be >= 1, "
                f"got {self.stage_epochs!r}"
            )
        if any(sep in self.study_id for sep in ("/", "\\", "..")):
            raise ValueError(
                f"StudyRequest.study_id must be a plain name, "
                f"got {self.study_id!r}"
            )
        if self.weight <= 0:
            raise ValueError(
                f"StudyRequest.weight must be > 0, got {self.weight!r}"
            )

    def to_payload(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "StudyRequest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in payload.items() if k in known})


class ServicePaths:
    """Path arithmetic for one service root (shared by daemon + client)."""

    def __init__(self, root: Path):
        self.root = Path(root)

    @property
    def daemon_file(self) -> Path:
        return self.root / DAEMON_FILE

    @property
    def inbox(self) -> Path:
        return self.root / INBOX_DIR

    @property
    def rejections(self) -> Path:
        return self.root / REJECTIONS_DIR

    @property
    def studies(self) -> Path:
        return self.root / STUDIES_DIR

    def study_dir(self, study_id: str) -> Path:
        return self.studies / study_id

    def request_file(self, study_id: str) -> Path:
        return self.study_dir(study_id) / REQUEST_FILE

    def state_file(self, study_id: str) -> Path:
        return self.study_dir(study_id) / STATE_FILE

    def result_file(self, study_id: str) -> Path:
        return self.study_dir(study_id) / RESULT_FILE

    def cancel_file(self, study_id: str) -> Path:
        return self.study_dir(study_id) / CANCEL_FILE

    def checkpoint_dir(self, study_id: str) -> Path:
        return self.study_dir(study_id) / CHECKPOINT_DIR

    def rejection_file(self, study_id: str) -> Path:
        return self.rejections / f"{study_id}.json"

    def ensure_layout(self) -> None:
        for d in (self.root, self.inbox, self.rejections, self.studies):
            d.mkdir(parents=True, exist_ok=True)


def resolve_objective(spec: str) -> Callable[..., Any]:
    """Turn an objective spec into a callable.

    Registry names cover the built-in bodies; a ``module:function``
    dotted path loads anything importable (it must be module-level so the
    process backend can pickle it).
    """
    from repro.hpo.objective import (
        fast_mock_objective,
        poison_objective,
        preemptible_mock_objective,
        slow_mock_objective,
        train_experiment,
    )

    registry: Dict[str, Callable[..., Any]] = {
        "fast_mock": fast_mock_objective,
        "slow_mock": slow_mock_objective,
        "preemptible_mock": preemptible_mock_objective,
        "poison": poison_objective,
        "train": train_experiment,
    }
    if spec in registry:
        return registry[spec]
    if ":" in spec:
        module_name, _, func_name = spec.partition(":")
        import importlib

        module = importlib.import_module(module_name)
        try:
            return getattr(module, func_name)
        except AttributeError:
            raise ValueError(
                f"objective {spec!r}: module {module_name!r} has no "
                f"attribute {func_name!r}"
            ) from None
    raise ValueError(
        f"unknown objective {spec!r}; use one of {sorted(registry)} "
        "or a 'module:function' path"
    )
