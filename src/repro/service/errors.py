"""Typed errors of the multi-tenant service layer.

Every rejection the daemon can issue has a distinct class so clients can
branch on type (retry later vs give up vs fix the request), and each
carries a stable ``code`` string that survives the file-protocol
round-trip: the daemon records ``code`` in a rejection file and
:mod:`repro.service.client` re-raises the matching class.
"""

from __future__ import annotations

from typing import Dict, Type


class ServiceError(RuntimeError):
    """Base class of all service-layer errors."""

    code = "service_error"


class QueueFullError(ServiceError):
    """The daemon's bounded study queue is at capacity.

    Backpressure, not failure: the submission was *not* accepted and may
    be retried once other studies drain.
    """

    code = "queue_full"


class TenantQuotaError(ServiceError):
    """The tenant already has its maximum number of studies queued.

    Per-tenant backpressure: other tenants' submissions are still
    accepted — one noisy tenant cannot exhaust the shared queue.
    """

    code = "tenant_quota"


class ServiceOverloadedError(ServiceError):
    """The daemon is shedding load (memory watchdog over its ceiling)."""

    code = "service_overloaded"


class StudyConflictError(ServiceError):
    """A study id was re-submitted with a *different* specification.

    Re-submitting the identical request is the idempotent-retry path and
    succeeds silently; only a conflicting payload is an error.
    """

    code = "study_conflict"


class StudyNotFoundError(ServiceError):
    """The referenced study id is unknown to the daemon."""

    code = "study_not_found"


class ClientTimeoutError(ServiceError):
    """A client-side wait (submit ack, watch) exceeded its deadline.

    Says nothing about the study itself — the daemon may simply be busy
    or down; the operation is safe to retry (submission is idempotent).
    """

    code = "client_timeout"


class StudyCancelledError(ServiceError):
    """The study was cancelled by its tenant."""

    code = "study_cancelled"


class StudySuspendedError(ServiceError):
    """The running study was suspended warm by the memory watchdog.

    Distinct from :class:`ServiceOverloadedError` (which sheds *queued*
    work outright): a suspended study's trials spilled their training
    state and the daemon re-enqueues the study automatically once
    pressure clears — no work is lost, only delayed.
    """

    code = "study_suspended"


class StudyFailedError(ServiceError):
    """The study exhausted its failed-trial budget and was terminated.

    Raised inside the study's worker thread (from the budget-guard
    callback) so the failure is confined to that study; other tenants on
    the same daemon are unaffected.
    """

    code = "study_failed"


_BY_CODE: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        QueueFullError,
        TenantQuotaError,
        ServiceOverloadedError,
        StudyConflictError,
        StudyNotFoundError,
        ClientTimeoutError,
        StudyCancelledError,
        StudySuspendedError,
        StudyFailedError,
    )
}


def error_for_code(code: str, message: str) -> ServiceError:
    """Rebuild the typed error recorded in a rejection/state file."""
    return _BY_CODE.get(code, ServiceError)(message)
