"""Admission control and load shedding for the service daemon.

The controller answers one question — *may this study enter the queue?* —
with a typed verdict, and one more — *which queued study starts next?* —
implementing per-tenant concurrency quotas and priority ordering.  A
memory watchdog (driven by an injectable RSS probe so tests can fake
pressure) flips the daemon into shedding mode *before* the process hits
its ceiling: new submissions are rejected, lowest-priority *running*
studies are suspended warm (their trials spill training state and the
study re-enqueues once pressure clears), and only then are
queued-but-unstarted studies shed outright.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.service.errors import (
    QueueFullError,
    ServiceOverloadedError,
    TenantQuotaError,
)
from repro.util.validation import check_positive


@dataclass
class AdmissionConfig:
    """Backpressure knobs of one service daemon.

    Attributes
    ----------
    max_queued_studies:
        Bound on the whole admission queue (queued, not yet running).
        Submissions beyond it are rejected with :class:`QueueFullError`.
    max_queued_per_tenant:
        Per-tenant share of the queue; beyond it the tenant's own
        submissions get :class:`TenantQuotaError` while other tenants
        are unaffected.
    max_studies_per_tenant:
        Cap on one tenant's concurrently *running* studies.  Over-quota
        studies stay queued (backpressure, not rejection) until one of
        the tenant's studies finishes.
    max_concurrent_studies:
        Daemon-wide cap on concurrently running studies (worker threads).
    rss_limit_mb:
        Memory ceiling: once the daemon's resident set exceeds it, the
        watchdog sheds queued studies and rejects new submissions with
        :class:`ServiceOverloadedError` until pressure clears (None
        disables the watchdog).
    """

    max_queued_studies: int = 16
    max_queued_per_tenant: int = 8
    max_studies_per_tenant: int = 2
    max_concurrent_studies: int = 4
    rss_limit_mb: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive(
            "AdmissionConfig.max_queued_studies", self.max_queued_studies
        )
        check_positive(
            "AdmissionConfig.max_queued_per_tenant", self.max_queued_per_tenant
        )
        check_positive(
            "AdmissionConfig.max_studies_per_tenant",
            self.max_studies_per_tenant,
        )
        check_positive(
            "AdmissionConfig.max_concurrent_studies",
            self.max_concurrent_studies,
        )
        if self.rss_limit_mb is not None:
            check_positive("AdmissionConfig.rss_limit_mb", self.rss_limit_mb)


def process_rss_mb() -> float:
    """Resident set size of this process in MB (Linux ``/proc``).

    Falls back to 0 (never sheds) where ``/proc/self/statm`` is missing.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        return 0.0


class AdmissionController:
    """Stateless policy over the daemon's live queue/running views.

    The daemon owns the actual queue; this class only encodes the
    decisions, so every rule is unit-testable without a daemon.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        rss_fn: Optional[Callable[[], float]] = None,
    ):
        self.config = config or AdmissionConfig()
        self._rss_fn = rss_fn or process_rss_mb

    # ------------------------------------------------------------------
    def overloaded(self) -> bool:
        """True when the memory watchdog says to shed load."""
        limit = self.config.rss_limit_mb
        return limit is not None and self._rss_fn() > limit

    def check_admission(
        self, tenant: str, queued_tenants: Sequence[str]
    ) -> None:
        """Raise the typed rejection for a submission, or return None.

        ``queued_tenants`` is the tenant of every currently-queued study
        (duplicates included) — the only queue state the rules need.
        """
        if self.overloaded():
            raise ServiceOverloadedError(
                f"daemon over its memory ceiling "
                f"({self._rss_fn():.0f} MB > "
                f"{self.config.rss_limit_mb:g} MB); shedding load"
            )
        if len(queued_tenants) >= self.config.max_queued_studies:
            raise QueueFullError(
                f"study queue full ({self.config.max_queued_studies} "
                "queued); retry after studies drain"
            )
        mine = sum(1 for t in queued_tenants if t == tenant)
        if mine >= self.config.max_queued_per_tenant:
            raise TenantQuotaError(
                f"tenant {tenant!r} already has {mine} studies queued "
                f"(max_queued_per_tenant={self.config.max_queued_per_tenant})"
            )

    def pick_next(
        self,
        queued: Sequence[object],
        running_tenants: Sequence[str],
        n_running: int,
    ) -> List[int]:
        """Indices into ``queued`` of the studies to start now.

        ``queued`` items expose ``tenant`` and ``priority`` attributes
        and arrive in submission order; selection is by priority band
        (higher first) then FIFO, skipping tenants at their running-study
        quota.  Returns at most the free concurrency slots.
        """
        slots = self.config.max_concurrent_studies - n_running
        if slots <= 0:
            return []
        loads = {}
        for t in running_tenants:
            loads[t] = loads.get(t, 0) + 1
        order = sorted(
            range(len(queued)),
            key=lambda i: (-getattr(queued[i], "priority", 0), i),
        )
        chosen: List[int] = []
        for i in order:
            if len(chosen) >= slots:
                break
            tenant = getattr(queued[i], "tenant", "")
            if loads.get(tenant, 0) >= self.config.max_studies_per_tenant:
                continue
            loads[tenant] = loads.get(tenant, 0) + 1
            chosen.append(i)
        return chosen

    def suspend_victims(self, running: Sequence[object]) -> List[int]:
        """Indices of *running* studies to suspend under memory pressure.

        The suspend tier sits ahead of :meth:`shed_victims`: running
        studies hold the live memory, so warm-suspending them (trials
        spill their training state and the study re-enqueues once
        pressure clears) relieves pressure without discarding work.
        Lowest priority first, newest first within a band; the
        highest-priority running study is kept so the daemon always makes
        forward progress.
        """
        if not self.overloaded() or len(running) <= 1:
            return []
        order = sorted(
            range(len(running)),
            key=lambda i: (getattr(running[i], "priority", 0), -i),
        )
        return order[:-1]

    def shed_victims(self, queued: Sequence[object]) -> List[int]:
        """Indices of queued studies to shed under memory pressure.

        Sheds from the back of the queue, lowest priority first — the
        work least likely to be missed — and only when the watchdog is
        actually over its ceiling.
        """
        if not self.overloaded() or not queued:
            return []
        order = sorted(
            range(len(queued)),
            key=lambda i: (getattr(queued[i], "priority", 0), -i),
        )
        # Shed everything still queued: none of it can start while the
        # daemon is over its ceiling, and holding it only adds memory.
        return order
