"""Multi-tenant HPO service mode (``repro serve``).

Runs many concurrent studies from many tenants over one shared COMPSs
runtime and resource pool, with three guarantees the paper's single-study
driver cannot give:

* **Fault isolation** — each study gets a namespaced journal/checkpoint
  directory and its own resilience budget; a tenant's crash-looping
  objective terminates *that study only* while its neighbours' placements
  and best configs match a solo run.
* **Admission control** — a bounded study queue, per-tenant quotas on
  concurrent studies and cluster slots, and fair-share + priority
  scheduling across studies inside the dispatch engine; a watchdog sheds
  queued load before the daemon hits its memory ceiling.
* **Whole-daemon crash recovery** — SIGKILL the daemon mid-flight,
  restart it, and every tenant resumes exactly-once from its own journal.

Clients talk to the daemon over a file-spool protocol (works over any
shared filesystem — the natural transport on the paper's HPC clusters,
where a login-node daemon and compute-side clients share ``$HOME``).
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.client import ServiceClient
from repro.service.daemon import HPOService
from repro.service.errors import (
    ClientTimeoutError,
    QueueFullError,
    ServiceError,
    ServiceOverloadedError,
    StudyCancelledError,
    StudyConflictError,
    StudyFailedError,
    StudyNotFoundError,
    TenantQuotaError,
)
from repro.service.protocol import StudyRequest

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ServiceClient",
    "HPOService",
    "StudyRequest",
    "ServiceError",
    "QueueFullError",
    "TenantQuotaError",
    "ServiceOverloadedError",
    "StudyConflictError",
    "StudyNotFoundError",
    "ClientTimeoutError",
    "StudyCancelledError",
    "StudyFailedError",
]
