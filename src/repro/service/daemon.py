"""The ``repro serve`` daemon: many tenant studies, one shared runtime.

One :class:`HPOService` owns one :class:`~repro.runtime.runtime.
COMPSsRuntime` (and therefore one shared :class:`ResourcePool`) and runs
admitted studies in worker threads, each inside its own
:meth:`~repro.runtime.runtime.COMPSsRuntime.study_scope` so journaling,
task keys and recovery are namespaced per study.  The daemon's main loop
is a plain poll over the file-spool protocol — no sockets, no extra
dependencies — which is also what makes whole-daemon crash recovery
trivial: every admission decision and study state lives on disk, so a
restarted daemon rebuilds its world from a directory scan.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.hpo.runner import PyCOMPSsRunner, StudyCallback
from repro.hpo.space import SearchSpace
from repro.hpo.trial import Study, Trial, TrialStatus
from repro.runtime import resilience as rsl
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor.simulated import SimulatedExecutor
from repro.runtime.runtime import COMPSsRuntime
from repro.service import protocol as proto
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.errors import (
    ServiceError,
    StudyCancelledError,
    StudyConflictError,
    StudyFailedError,
    StudySuspendedError,
)
from repro.util.logging_utils import get_logger

_log = get_logger("service")


class _QueuedStudy:
    """One admitted-but-not-yet-running study (FIFO by ``seq``)."""

    __slots__ = ("request", "seq")

    def __init__(self, request: proto.StudyRequest, seq: int):
        self.request = request
        self.seq = seq

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def priority(self) -> int:
        return self.request.priority


class _StudyGuard(StudyCallback):
    """Per-study resilience budget + cancellation check (fault isolation).

    Raises out of the runner's loop — confined to the study's own worker
    thread — when the tenant cancels or the study burns through its
    failed-trial budget.  Raising (rather than any global flag) is what
    keeps the blast radius to one study.
    """

    def __init__(
        self,
        service: "HPOService",
        study_id: str,
        max_failed_trials: Optional[int],
    ):
        self.service = service
        self.study_id = study_id
        self.max_failed_trials = max_failed_trials
        self.failed = 0

    def _check_cancel(self) -> None:
        if self.service.cancel_requested(self.study_id):
            raise StudyCancelledError(
                f"study {self.study_id!r} cancelled by tenant"
            )

    def _check_suspend(self) -> None:
        if self.service.suspend_requested(self.study_id):
            raise StudySuspendedError(
                f"study {self.study_id!r} suspended by memory watchdog"
            )

    def on_trial_start(self, study: Study, trial: Trial) -> None:
        self._check_cancel()
        self._check_suspend()

    def on_trial_suspended(self, study: Study, trial: Trial) -> None:
        # A trial just spilled warm; if the watchdog wants the whole
        # study out, stop here — the spill stays on disk and the study's
        # resumption warm-restores it.
        self._check_cancel()
        self._check_suspend()

    def on_trial_complete(self, study: Study, trial: Trial) -> None:
        self._check_cancel()
        self._check_suspend()
        if trial.status == TrialStatus.FAILED:
            self.failed += 1
            budget = self.max_failed_trials
            if budget is not None and self.failed > budget:
                raise StudyFailedError(
                    f"study {self.study_id!r} exceeded its failed-trial "
                    f"budget ({self.failed} failed > "
                    f"max_failed_trials={budget})"
                )


class HPOService:
    """A multi-tenant HPO daemon over one service root directory.

    Parameters
    ----------
    root:
        Service root (shared filesystem path clients also see).
    runtime_config:
        Runtime for the shared pool.  ``checkpoint_dir`` is ignored —
        checkpointing is per-study, under each study's directory.  With
        ``reuse_cache`` on and no explicit ``cache_dir``, the shared
        stage cache is anchored at ``<root>/reuse-cache`` so all tenants
        (and successive daemon generations) reuse each other's verified
        stage outputs.
    admission:
        Backpressure knobs (:class:`AdmissionConfig`).
    rss_fn:
        Override of the memory probe (tests inject fake pressure).
    drain_deadline_s:
        Graceful-shutdown budget: studies still running at the deadline
        are re-queued on disk (they resume exactly-once on the next
        daemon life) instead of being waited on forever.
    heartbeat_s:
        Cadence of the ``daemon.json`` liveness stamp.
    """

    def __init__(
        self,
        root: Union[str, Path],
        runtime_config: Optional[RuntimeConfig] = None,
        admission: Optional[AdmissionConfig] = None,
        rss_fn=None,
        drain_deadline_s: float = 30.0,
        heartbeat_s: float = 1.0,
    ):
        self.paths = proto.ServicePaths(Path(root))
        self.config = runtime_config or RuntimeConfig()
        if self.config.reuse_cache and self.config.cache_dir is None:
            # Service mode ignores the global checkpoint_dir (spills are
            # per-study), so anchor the shared reuse cache under the
            # service root instead: every tenant and every daemon
            # generation resolves the same entries.
            self.config.cache_dir = str(self.paths.root / "reuse-cache")
        self.controller = AdmissionController(
            admission or AdmissionConfig(), rss_fn=rss_fn
        )
        self.drain_deadline_s = drain_deadline_s
        self.heartbeat_s = heartbeat_s
        self.runtime: Optional[COMPSsRuntime] = None
        self.generation = 0
        self._lock = threading.Lock()
        self._seq = 0
        self._queued: List[_QueuedStudy] = []
        self._running: Dict[str, threading.Thread] = {}
        self._running_tenants: Dict[str, str] = {}
        self._cancels: set = set()
        self._drain_requeue: set = set()
        #: Running studies the memory watchdog asked to suspend warm,
        #: plus the request metadata needed to pick victims and requeue.
        self._suspends: set = set()
        self._suspend_deadlines: Dict[str, float] = {}
        self._suspend_requeue: set = set()
        self._running_meta: Dict[str, proto.StudyRequest] = {}
        self._stop = threading.Event()
        self._draining = False
        self._last_heartbeat = 0.0
        #: Daemon-wide concurrency: the simulated executor advances one
        #: virtual clock from the waiting thread and cannot be pumped by
        #: several studies at once, so simulated backends serialise.
        self._max_workers = self.controller.config.max_concurrent_studies

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HPOService":
        """Build the shared runtime and recover any interrupted studies."""
        self.paths.ensure_layout()
        self.runtime = COMPSsRuntime(self.config).start()
        if isinstance(self.runtime.executor, SimulatedExecutor):
            self._max_workers = 1
        manifest = proto.read_json(self.paths.daemon_file) or {}
        self.generation = int(manifest.get("generation", 0)) + 1
        self._recover_studies()
        self._write_manifest("running")
        _log.info(
            "service daemon generation %d serving %s",
            self.generation, self.paths.root,
        )
        return self

    def _recover_studies(self) -> None:
        """Re-queue every study a previous daemon life left unfinished.

        A SIGKILLed daemon leaves studies in ``queued``/``running``
        states; their journals hold the completed prefix, so re-running
        them restores those tasks instead of re-executing (exactly-once).
        """
        if not self.paths.studies.is_dir():
            return
        recovered = []
        for study_dir in sorted(self.paths.studies.iterdir()):
            state = proto.read_json(study_dir / proto.STATE_FILE) or {}
            if state.get("status") not in proto.RESUMABLE_STATES:
                continue
            payload = proto.read_json(study_dir / proto.REQUEST_FILE)
            if payload is None:
                continue
            try:
                request = proto.StudyRequest.from_payload(payload)
            except (TypeError, ValueError):
                self._write_state(
                    study_dir.name, proto.FAILED,
                    detail="unreadable request.json after restart",
                )
                continue
            self._enqueue(request, detail=f"recovered (gen {self.generation})")
            recovered.append(request.study_id)
        if recovered:
            _log.info("recovered %d interrupted studies: %s",
                      len(recovered), ", ".join(recovered))

    def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon; optionally drain running studies first.

        With ``drain`` the daemon stops admitting, waits up to
        ``drain_deadline_s`` for running studies, then re-queues the
        stragglers on disk (they resume on the next daemon life) and
        abandons their in-flight tasks so worker threads unblock.
        """
        self._stop.set()
        self._draining = True
        runtime = self.runtime
        if runtime is None:
            return
        if drain:
            deadline = time.monotonic() + self.drain_deadline_s
            while time.monotonic() < deadline:
                self._reap_workers()
                with self._lock:
                    if not self._running:
                        break
                time.sleep(0.02)
        with self._lock:
            stragglers = list(self._running)
            # Queued studies stay 'queued' on disk — picked up next life.
            self._queued.clear()
        for study_id in stragglers:
            # Mark for resume *before* abandoning so the worker thread's
            # failure path knows not to overwrite the state.
            with self._lock:
                self._drain_requeue.add(study_id)
            self._write_state(
                study_id, proto.QUEUED,
                detail="drain deadline: re-queued for next daemon life",
            )
            runtime.abandon_study(
                study_id, reason="daemon draining", kind=rsl.STUDY_CANCELLED
            )
        for thread in list(self._running.values()):
            thread.join(timeout=5.0)
        self._write_manifest("stopped")
        runtime.stop(wait=False)
        self.runtime = None
        _log.info("service daemon stopped (drained=%s)", drain)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def serve_forever(self, poll_s: float = 0.05) -> None:
        """Block serving requests until :meth:`shutdown` (or SIGTERM)."""
        while not self._stop.is_set():
            self.step()
            time.sleep(poll_s)

    def run_until_idle(
        self, poll_s: float = 0.02, max_wait_s: Optional[float] = None
    ) -> None:
        """Serve until the inbox, queue and running set are all empty.

        The ``repro serve --once`` mode: lets CI submit a batch, run one
        daemon pass to completion, and exit deterministically.
        """
        deadline = (
            time.monotonic() + max_wait_s if max_wait_s is not None else None
        )
        while not self._stop.is_set():
            busy = self.step()
            if not busy:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"service still busy after {max_wait_s:g}s"
                )
            time.sleep(poll_s)

    def step(self) -> bool:
        """One poll iteration; returns True while there is work in flight."""
        self._consume_inbox()
        self._check_cancel_flags()
        self._relieve_pressure()
        self._escalate_suspends()
        self._reap_workers()
        self._resume_suspended()
        self._start_ready_studies()
        self._heartbeat()
        with self._lock:
            busy = bool(self._queued or self._running)
        return busy or any(self.paths.inbox.glob("*.json"))

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _consume_inbox(self) -> None:
        for path in sorted(self.paths.inbox.glob("*.json")):
            payload = proto.read_json(path)
            if payload is None:
                continue  # mid-rename or torn tmp; next poll sees it
            try:
                self._admit(payload)
            finally:
                try:
                    path.unlink()
                except OSError:
                    pass

    def _admit(self, payload: Dict[str, Any]) -> None:
        study_id = str(payload.get("study_id", ""))
        try:
            request = proto.StudyRequest.from_payload(payload)
        except (TypeError, ValueError) as exc:
            self._reject(study_id or "invalid", ServiceError(str(exc)))
            return
        existing = proto.read_json(self.paths.request_file(request.study_id))
        if existing is not None:
            if existing == request.to_payload():
                return  # idempotent re-submission: already admitted
            self._reject(
                request.study_id,
                StudyConflictError(
                    f"study {request.study_id!r} already exists with a "
                    "different specification"
                ),
            )
            return
        with self._lock:
            if any(q.request.study_id == request.study_id
                   for q in self._queued):
                return
            queued_tenants = [q.tenant for q in self._queued]
        try:
            self.controller.check_admission(request.tenant, queued_tenants)
        except ServiceError as exc:
            self._reject(request.study_id, exc)
            return
        self._enqueue(request, detail="admitted")
        try:
            self.paths.rejection_file(request.study_id).unlink()
        except OSError:
            pass
        assert self.runtime is not None
        self.runtime.resilience.record(
            self.runtime.executor.clock(), rsl.STUDY_ADMITTED,
            detail=f"study={request.study_id} tenant={request.tenant}",
        )

    def _enqueue(self, request: proto.StudyRequest, detail: str) -> None:
        proto.atomic_write_json(
            self.paths.request_file(request.study_id), request.to_payload()
        )
        self._write_state(
            request.study_id, proto.QUEUED,
            tenant=request.tenant, detail=detail,
        )
        with self._lock:
            self._seq += 1
            self._queued.append(_QueuedStudy(request, self._seq))

    def _reject(self, study_id: str, error: ServiceError) -> None:
        proto.atomic_write_json(
            self.paths.rejection_file(study_id),
            {"study_id": study_id, "code": error.code, "message": str(error)},
        )
        _log.info("rejected study %s: %s", study_id, error)

    # ------------------------------------------------------------------
    # Scheduling / watchdogs
    # ------------------------------------------------------------------
    def _start_ready_studies(self) -> None:
        if self._draining:
            return
        with self._lock:
            free_cap = self._max_workers - len(self._running)
            if free_cap <= 0 or not self._queued:
                return
            picks = self.controller.pick_next(
                self._queued,
                list(self._running_tenants.values()),
                len(self._running),
            )[:free_cap]
            records = [self._queued[i] for i in picks]
            for rec in sorted(records, key=lambda r: r.seq, reverse=True):
                self._queued.remove(rec)
            for rec in records:
                sid = rec.request.study_id
                thread = threading.Thread(
                    target=self._run_study, args=(rec.request,),
                    name=f"repro-study-{sid}", daemon=True,
                )
                self._running[sid] = thread
                self._running_tenants[sid] = rec.tenant
                self._running_meta[sid] = rec.request
        for rec in records:
            self._running[rec.request.study_id].start()

    def _reap_workers(self) -> None:
        with self._lock:
            done = [
                sid for sid, t in self._running.items() if not t.is_alive()
            ]
            for sid in done:
                self._running.pop(sid, None)
                self._running_tenants.pop(sid, None)
                self._running_meta.pop(sid, None)
                self._cancels.discard(sid)
                self._suspends.discard(sid)
                self._suspend_deadlines.pop(sid, None)
                self._suspend_requeue.discard(sid)

    def _check_cancel_flags(self) -> None:
        if not self.paths.studies.is_dir():
            return
        for study_dir in self.paths.studies.iterdir():
            if not (study_dir / proto.CANCEL_FILE).exists():
                continue
            sid = study_dir.name
            with self._lock:
                if sid in self._cancels:
                    continue
                queued = next(
                    (q for q in self._queued
                     if q.request.study_id == sid), None,
                )
                if queued is not None:
                    self._queued.remove(queued)
                running = sid in self._running
                self._cancels.add(sid)
            if queued is not None:
                self._write_state(
                    sid, proto.CANCELLED, detail="cancelled while queued"
                )
                assert self.runtime is not None
                self.runtime.resilience.record(
                    self.runtime.executor.clock(), rsl.STUDY_CANCELLED,
                    detail=f"study={sid} reason=cancelled-while-queued",
                )
            elif not running:
                self._cancels.discard(sid)  # already terminal: ignore flag

    def cancel_requested(self, study_id: str) -> bool:
        """Polled by the per-study guard between trials."""
        with self._lock:
            return study_id in self._cancels

    def suspend_requested(self, study_id: str) -> bool:
        """Polled by the per-study guard between trials / at suspensions."""
        with self._lock:
            return study_id in self._suspends

    def _relieve_pressure(self) -> None:
        """Memory watchdog, suspend-before-shed.

        Tier 1 suspends lowest-priority *running* studies warm: their
        preemptible trials spill training state at the next checkpoint
        epoch, the study parks as ``suspended`` on disk and re-enqueues
        once pressure clears — no work lost.  Only when there is nothing
        left to suspend does tier 2 shed queued studies outright.
        """
        if not self.controller.overloaded():
            return
        assert self.runtime is not None
        with self._lock:
            candidates = [
                _QueuedStudy(self._running_meta[sid], i)
                for i, sid in enumerate(self._running)
                if sid in self._running_meta and sid not in self._suspends
            ]
        victims = self.controller.suspend_victims(candidates)
        if victims:
            grace = self.runtime.config.suspend_grace_s
            for i in victims:
                sid = candidates[i].request.study_id
                with self._lock:
                    self._suspends.add(sid)
                    self._suspend_deadlines[sid] = time.monotonic() + grace
                # Flag the study's in-flight preemptible trials so they
                # spill warm instead of running their epochs to the end,
                # and pause its dispatch lane so nothing new starts while
                # the suspension is landing.
                self.runtime.preemption.suspend_study(
                    sid, reason="memory watchdog"
                )
                self.runtime.pause_study_dispatch(sid)
                _log.warning(
                    "suspending running study %s (memory pressure)", sid
                )
            return
        self._shed_queued()

    def _shed_queued(self) -> None:
        with self._lock:
            queued = list(self._queued)
        victims = self.controller.shed_victims(queued)
        if not victims:
            return
        assert self.runtime is not None
        for i in victims:
            rec = queued[i]
            with self._lock:
                if rec not in self._queued:
                    continue
                self._queued.remove(rec)
            sid = rec.request.study_id
            self._write_state(
                sid, proto.SHED,
                detail="shed by memory watchdog before the daemon ceiling",
            )
            self.runtime.resilience.record(
                self.runtime.executor.clock(), rsl.LOAD_SHED,
                detail=f"study={sid} tenant={rec.tenant}",
            )
            _log.warning("shed queued study %s (memory pressure)", sid)

    def _escalate_suspends(self) -> None:
        """Hard-park suspended studies still running past their grace.

        A study whose trials are between checkpoint epochs (or whose
        objective ignores the flag) cooperates too slowly: at
        ``suspend_grace_s`` its in-flight tasks are abandoned.  Whatever
        spilled by then still warm-resumes; the rest replays from the
        journal — suspended, never failed.
        """
        now = time.monotonic()
        with self._lock:
            overdue = [
                sid for sid, deadline in self._suspend_deadlines.items()
                if now > deadline and sid in self._running
            ]
            for sid in overdue:
                self._suspend_requeue.add(sid)
                self._suspend_deadlines.pop(sid, None)
        assert self.runtime is not None or not overdue
        for sid in overdue:
            self._write_state(
                sid, proto.SUSPENDED,
                detail="suspend grace expired: in-flight tasks abandoned",
            )
            self.runtime.abandon_study(
                sid, reason="suspend grace expired",
                kind=rsl.STUDY_SUSPENDED,
            )
            _log.warning(
                "study %s did not suspend within grace; abandoned warm", sid
            )

    def _resume_suspended(self) -> None:
        """Re-enqueue suspended studies once memory pressure clears."""
        if self._draining or self.controller.overloaded():
            return
        if not self.paths.studies.is_dir():
            return
        for study_dir in sorted(self.paths.studies.iterdir()):
            state = proto.read_json(study_dir / proto.STATE_FILE) or {}
            if state.get("status") != proto.SUSPENDED:
                continue
            sid = study_dir.name
            with self._lock:
                if sid in self._running or sid in self._suspends:
                    continue
                if any(q.request.study_id == sid for q in self._queued):
                    continue
            payload = proto.read_json(study_dir / proto.REQUEST_FILE)
            if payload is None:
                continue
            try:
                request = proto.StudyRequest.from_payload(payload)
            except (TypeError, ValueError):
                continue
            self._enqueue(request, detail="resumed after suspension")
            _log.info("resuming suspended study %s (pressure cleared)", sid)

    # ------------------------------------------------------------------
    # Study execution (worker threads)
    # ------------------------------------------------------------------
    def _run_study(self, request: proto.StudyRequest) -> None:
        sid = request.study_id
        runtime = self.runtime
        assert runtime is not None
        self._write_state(sid, proto.RUNNING, tenant=request.tenant)
        session = None
        try:
            objective = proto.resolve_objective(request.objective)
            session = runtime.open_study(
                sid,
                checkpoint_dir=self.paths.checkpoint_dir(sid),
                priority=request.priority,
                weight=request.weight,
                tenant=request.tenant,
                max_tenant_slots=request.max_tenant_slots,
                checkpoint_every=request.checkpoint_every,
            )
            guard = _StudyGuard(self, sid, request.max_failed_trials)
            stage_plan = None
            if request.stage_epochs is not None:
                # Staged trials supersede the objective body: real
                # training for the "train" objective, the deterministic
                # cumulative curve for every mock flavour.
                from repro.hpo.stages import StagePlan

                stage_plan = StagePlan(
                    block_epochs=request.stage_epochs,
                    objective="train" if request.objective == "train"
                    else "mock",
                )
            with runtime.study_scope(session):
                runner = PyCOMPSsRunner(
                    request.algorithm,
                    space=SearchSpace.from_dict(request.space),
                    objective=objective,
                    batch_size=request.batch_size,
                    study_name=sid,
                    algorithm_kwargs=dict(request.algorithm_kwargs),
                    callbacks=[guard],
                    max_trial_retries=request.max_trial_retries,
                    stage_plan=stage_plan,
                )
                study = runner.run()
            self._finish_study(sid, study)
        except StudyCancelledError as exc:
            runtime.abandon_study(sid, str(exc), kind=rsl.STUDY_CANCELLED)
            self._write_state(sid, proto.CANCELLED, detail=str(exc))
        except StudySuspendedError as exc:
            # Warm park, not a failure: trials spilled their training
            # state, the study re-enqueues once pressure clears and its
            # journal + spills make the resumption exactly-once.
            runtime.abandon_study(sid, str(exc), kind=rsl.STUDY_SUSPENDED)
            self._write_state(sid, proto.SUSPENDED, detail=str(exc))
        except StudyFailedError as exc:
            # The study's own budget gave out: terminate it, leave every
            # other tenant untouched (abandon records `study_failed`).
            runtime.abandon_study(sid, str(exc))
            self._write_state(sid, proto.FAILED, detail=str(exc))
        except Exception as exc:  # noqa: BLE001 - isolate tenant failures
            with self._lock:
                requeued = (
                    sid in self._drain_requeue or sid in self._suspend_requeue
                )
            if requeued:
                # Shutdown re-queued it, or the suspend-grace escalation
                # already parked it as 'suspended' — don't overwrite.
                return
            runtime.abandon_study(sid, f"{type(exc).__name__}: {exc}")
            self._write_state(
                sid, proto.FAILED, detail=f"{type(exc).__name__}: {exc}"
            )
            _log.warning("study %s failed: %s", sid, exc)
        finally:
            if session is not None:
                runtime.close_study(sid)

    def _finish_study(self, sid: str, study: Study) -> None:
        proto.atomic_write_json(self.paths.result_file(sid), study.as_dict())
        extra: Dict[str, Any] = {
            "trials": len(study.trials),
            "completed_trials": len(study.completed()),
        }
        if study.completed():
            best = study.best_trial()
            extra["best"] = {
                "trial_id": best.trial_id,
                "config": best.config,
                "val_accuracy": best.val_accuracy,
            }
        resume = study.metadata.get("resume")
        if resume:
            extra["resume"] = resume
        self._write_state(sid, proto.COMPLETED, **extra)
        assert self.runtime is not None
        self.runtime.resilience.record(
            self.runtime.executor.clock(), rsl.STUDY_COMPLETED,
            detail=f"study={sid} trials={len(study.trials)}",
        )

    # ------------------------------------------------------------------
    # On-disk state
    # ------------------------------------------------------------------
    def _write_state(self, study_id: str, status: str, **extra: Any) -> None:
        payload: Dict[str, Any] = {
            "study_id": study_id,
            "status": status,
            "generation": self.generation,
            "updated_at": time.time(),
        }
        payload.update(extra)
        proto.atomic_write_json(self.paths.state_file(study_id), payload)

    def _write_manifest(self, status: str) -> None:
        with self._lock:
            queued = len(self._queued)
            running = sorted(self._running)
            suspending = sorted(self._suspends)
        proto.atomic_write_json(
            self.paths.daemon_file,
            {
                "pid": os.getpid(),
                "generation": self.generation,
                "status": status,
                "updated_at": time.time(),
                "queued": queued,
                "running": running,
                "suspending": suspending,
                "max_concurrent_studies": self._max_workers,
            },
        )
        self._last_heartbeat = time.monotonic()

    def _heartbeat(self) -> None:
        if time.monotonic() - self._last_heartbeat >= self.heartbeat_s:
            self._write_manifest("draining" if self._draining else "running")
