"""Task groups — selective synchronisation (COMPSs ``TaskGroup``).

Group the tasks submitted inside a ``with`` block and wait for just that
group, instead of a global ``compss_barrier``.  Useful in HPO when
batches of trials are launched in stages (e.g. Hyperband rungs) and a
stage boundary must not wait for unrelated background tasks::

    with TaskGroup("rung-0"):
        futures = [experiment(c) for c in rung0]
    compss_barrier_group("rung-0")
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.task_definition import TaskInvocation

_active_lock = threading.RLock()
_active_groups: List["TaskGroup"] = []
_registry: Dict[str, "TaskGroup"] = {}


class TaskGroup:
    """Collects the task invocations submitted inside its ``with`` block.

    Groups may nest; a task submitted inside nested groups belongs to all
    of them.  Group names are registered for later
    :func:`compss_barrier_group` calls; re-entering a name reuses (and
    extends) the existing group.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("task group name must be non-empty")
        self.name = name
        self.tasks: List["TaskInvocation"] = []

    def __enter__(self) -> "TaskGroup":
        with _active_lock:
            existing = _registry.get(self.name)
            if existing is not None and existing is not self:
                # Reuse: further tasks extend the same logical group.
                group = existing
            else:
                _registry[self.name] = self
                group = self
            _active_groups.append(group)
            return group

    def __exit__(self, exc_type, exc, tb) -> None:
        with _active_lock:
            _active_groups.remove(_registry.get(self.name, self))

    def add(self, task: "TaskInvocation") -> None:
        self.tasks.append(task)

    def __len__(self) -> int:
        return len(self.tasks)


def record_submission(task: "TaskInvocation") -> None:
    """Attach ``task`` to every currently-open group (runtime hook)."""
    if not _active_groups:
        # Unlocked emptiness probe: groups open/close only in the driver
        # thread, and a stale read merely defers to the locked path.
        return
    with _active_lock:
        for group in _active_groups:
            group.add(task)


def get_group(name: str) -> Optional[TaskGroup]:
    """Look a group up by name (None if never opened)."""
    with _active_lock:
        return _registry.get(name)


def compss_barrier_group(name: str) -> None:
    """Wait for every task submitted under group ``name``.

    Raises ``KeyError`` for unknown group names (a typo would otherwise
    silently not wait).  No-op without an active runtime.
    """
    from repro.runtime.runtime import current_runtime

    group = get_group(name)
    if group is None:
        raise KeyError(f"no task group named {name!r}")
    runtime = current_runtime()
    if runtime is None or not group.tasks:
        return
    runtime.executor.wait_for(list(group.tasks))


def reset_groups() -> None:
    """Forget all groups (test isolation / runtime shutdown)."""
    with _active_lock:
        _active_groups.clear()
        _registry.clear()
