"""Alternative-implementation and execution-kind decorators (paper §3).

* ``@implement(source=experiment)`` — register the decorated task as an
  alternative implementation of ``experiment``; the scheduler picks
  whichever implementation fits the node it chooses ("this decorator
  allows the runtime to choose the most appropriate task considering the
  resources").
* ``@binary(binary="cmd")`` / ``@mpi(runner="mpirun", processes=N)`` /
  ``@ompss(...)`` — declare the task body as an external program.  In
  this reproduction the decorated Python function *is* the program
  stand-in (there is no real binary to exec offline), but the kind and
  its details are carried through scheduling, tracing and the cost model.
* ``@multinode(computing_nodes=N)`` — the task spans N whole allocations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.task_definition import TaskDefinition


def _definition_of(obj) -> "TaskDefinition":
    definition = getattr(obj, "definition", None)
    if definition is None:
        raise TypeError(
            "decorator must be applied above @task "
            "(the decorated object is not a task)"
        )
    return definition


def implement(source):
    """Register the decorated task as an alternative of ``source``.

    ``source`` is the already-decorated primary task.  Both keep their own
    ``@constraint``; the scheduler tries the primary first, then
    alternatives.
    """
    primary = _definition_of(source)

    def decorator(task_wrapper):
        alt = _definition_of(task_wrapper)
        if alt.n_returns != primary.n_returns:
            raise ValueError(
                f"implementation {alt.name!r} returns {alt.n_returns} values "
                f"but {primary.name!r} returns {primary.n_returns}"
            )
        primary.implementations.append(alt)
        return task_wrapper

    return decorator


def binary(binary: str, working_dir: Optional[str] = None):
    """Declare the task as an external binary invocation."""
    if not binary:
        raise ValueError("binary name must be non-empty")

    def decorator(task_wrapper):
        definition = _definition_of(task_wrapper)
        from repro.runtime.task_definition import TaskKind

        definition.kind = TaskKind.BINARY
        definition.kind_details.update(
            {"binary": binary, "working_dir": working_dir}
        )
        return task_wrapper

    return decorator


def mpi(runner: str = "mpirun", processes: int = 1, binary: Optional[str] = None):
    """Declare the task as an MPI program of ``processes`` ranks."""
    check_positive("processes", processes)

    def decorator(task_wrapper):
        definition = _definition_of(task_wrapper)
        from repro.runtime.task_definition import TaskKind

        definition.kind = TaskKind.MPI
        definition.kind_details.update(
            {"runner": runner, "processes": int(processes), "binary": binary}
        )
        # An MPI task needs one computing unit per rank.
        definition.constraint = replace(
            definition.constraint,
            cpu_units=max(definition.constraint.cpu_units, int(processes)),
        )
        return task_wrapper

    return decorator


def ompss(binary: Optional[str] = None):
    """Declare the task as an OmpSs program."""

    def decorator(task_wrapper):
        definition = _definition_of(task_wrapper)
        from repro.runtime.task_definition import TaskKind

        definition.kind = TaskKind.OMPSS
        definition.kind_details.update({"binary": binary})
        return task_wrapper

    return decorator


def multinode(computing_nodes: int = 2):
    """Declare the task as spanning ``computing_nodes`` node allocations."""
    check_positive("computing_nodes", computing_nodes)

    def decorator(task_wrapper):
        definition = _definition_of(task_wrapper)
        definition.kind_details["computing_nodes"] = int(computing_nodes)
        definition.constraint = replace(
            definition.constraint, nodes=int(computing_nodes)
        )
        return task_wrapper

    return decorator
