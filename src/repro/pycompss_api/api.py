"""The small synchronisation/lifecycle API (paper §3: "a small API for
synchronization").

* :func:`compss_start` / :func:`compss_stop` — what ``runcompss`` does
  around the application.
* :func:`compss_wait_on` — resolve futures (identity when no runtime).
* :func:`compss_barrier` — wait for all outstanding tasks.
* :func:`compss_delete_object` — drop runtime tracking of an object.
* :class:`COMPSs` — context-manager sugar over start/stop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.runtime import COMPSsRuntime


def compss_start(config: "Optional[RuntimeConfig]" = None, **kwargs) -> "COMPSsRuntime":
    """Start a runtime and make ``@task`` calls asynchronous.

    ``kwargs`` are forwarded to :class:`RuntimeConfig` when ``config`` is
    not given, e.g. ``compss_start(cluster=mare_nostrum4(2))``.
    """
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.runtime import COMPSsRuntime

    if config is None:
        config = RuntimeConfig(**kwargs)
    elif kwargs:
        raise ValueError("pass either a RuntimeConfig or kwargs, not both")
    return COMPSsRuntime(config).start()


def compss_stop(wait: bool = True) -> None:
    """Stop the active runtime (no-op when none is active)."""
    from repro.runtime.runtime import current_runtime

    runtime = current_runtime()
    if runtime is not None:
        runtime.stop(wait=wait)


def compss_wait_on(obj: Any, *more: Any) -> Any:
    """Resolve future(s) to values, blocking until producers finish.

    Accepts scalars, futures, and arbitrarily nested lists/tuples/dicts
    (the paper waits on a list of experiment results).  Without an active
    runtime this is the identity function.  With several positional
    arguments, a list of resolved values is returned.
    """
    from repro.runtime.runtime import current_runtime

    runtime = current_runtime()
    objs = (obj, *more)
    if runtime is None:
        return list(objs) if more else obj
    if more:
        return [runtime.wait_on(o) for o in objs]
    return runtime.wait_on(obj)


def compss_barrier() -> None:
    """Block until every submitted task completed (no-op without runtime)."""
    from repro.runtime.runtime import current_runtime

    runtime = current_runtime()
    if runtime is not None:
        runtime.barrier()


def compss_open(path: str, mode: str = "r"):
    """Open a file produced by tasks, synchronising with its last writer.

    The COMPSs pattern for FILE_OUT results: the main program waits until
    the most recent task writing ``path`` has finished, then returns the
    ordinary ``open(path, mode)`` handle.  Without a runtime (or for
    files no task wrote) it is a plain ``open``.
    """
    from repro.runtime.runtime import current_runtime

    runtime = current_runtime()
    if runtime is not None:
        writer = runtime.access.last_writer_of_path(path)
        if writer is not None:
            runtime.executor.wait_for([writer])
    return open(path, mode)


def compss_delete_object(obj: Any) -> bool:
    """Stop tracking ``obj`` in the data registry; True if it was tracked."""
    from repro.runtime.runtime import current_runtime

    runtime = current_runtime()
    if runtime is None:
        return False
    return runtime.access.delete_object(obj)


class COMPSs:
    """Context manager: ``with COMPSs(cluster=...) as rt: ...``.

    Starts a runtime on entry, waits and stops on exit (does not wait if
    the body raised).
    """

    def __init__(self, config: "Optional[RuntimeConfig]" = None, **kwargs):
        from repro.runtime.config import RuntimeConfig

        if config is None:
            config = RuntimeConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either a RuntimeConfig or kwargs, not both")
        self.config = config
        self.runtime: "Optional[COMPSsRuntime]" = None

    def __enter__(self) -> "COMPSsRuntime":
        from repro.runtime.runtime import COMPSsRuntime

        self.runtime = COMPSsRuntime(self.config).start()
        return self.runtime

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.runtime is not None:
            self.runtime.stop(wait=exc_type is None)
