"""The ``@task`` decorator (paper §3).

Marks a function as a unit of parallel work.  With an active runtime the
call submits asynchronously and returns future(s); with no runtime the
function runs inline — the paper's sequential-fallback property that lets
the same script run with or without PyCOMPSs.

Supported decorator arguments mirror COMPSs:

* ``returns`` — a type (one return), an int N (N returns), or a
  tuple/list of types; 0/None means the task returns nothing.
* ``priority=True`` — scheduler hint (paper: "tries to schedule that task
  as soon as possible").
* ``cacheable=True`` — declares the function deterministic and pure,
  opting its outputs into the cross-trial reuse cache (see
  :mod:`repro.runtime.reuse`).
* per-parameter directions as keywords, e.g. ``@task(data=INOUT)``.
"""

from __future__ import annotations

import functools
from typing import Any


def _resolve_current_runtime():
    """First-call shim: bind ``current_runtime`` lazily (import cycle),
    then rebind the module global so later calls skip the import."""
    global _current_runtime
    from repro.runtime.runtime import current_runtime

    _current_runtime = current_runtime
    return current_runtime()


_current_runtime = _resolve_current_runtime


def _count_returns(returns: Any) -> int:
    """Number of return futures implied by a ``returns`` spec.

    >>> _count_returns(int), _count_returns(2), _count_returns((int, str))
    (1, 2, 2)
    >>> _count_returns(None), _count_returns(0)
    (0, 0)
    """
    if returns is None:
        return 0
    if isinstance(returns, bool):
        raise TypeError("returns=bool is ambiguous; use a type or a count")
    if isinstance(returns, int):
        if returns < 0:
            raise ValueError(f"returns must be >= 0, got {returns}")
        return returns
    if isinstance(returns, (tuple, list)):
        return len(returns)
    return 1  # a single type (int, list, object, ...) or type name string


def task(
    returns: Any = None,
    priority: bool = False,
    output_size_mb: float = 0.0,
    cacheable: bool = False,
    **param_directions: Any,
):
    """Decorate a function as a COMPSs task.

    Example (the paper's Listing 2)::

        @constraint(processors=[{"ProcessorType": "CPU", "ComputingUnits": 1}])
        @task(returns=int)
        def experiment(config):
            model = create_model(config)
            history = model.fit(...)
            return val_acc
    """

    def decorator(func):
        # Imported lazily: repro.runtime.task_definition itself imports
        # from this package, so a module-level import would be circular.
        from repro.runtime.task_definition import TaskDefinition

        if output_size_mb < 0:
            raise ValueError(f"output_size_mb must be >= 0, got {output_size_mb}")
        definition = TaskDefinition(
            func=func,
            name=func.__name__,
            returns=returns,
            n_returns=_count_returns(returns),
            priority=bool(priority),
            output_size_mb=float(output_size_mb),
            cacheable=bool(cacheable),
        )
        definition.add_param_specs(param_directions)

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            runtime = _current_runtime()
            if runtime is None:
                # Sequential fallback: "the program executes sequentially
                # as it would and all PyCOMPSs directions are ignored".
                return func(*args, **kwargs)
            return runtime.submit(definition, args, kwargs)

        wrapper.definition = definition
        wrapper.__wrapped__ = func
        return wrapper

    return decorator
