"""Parameter directionality markers (COMPSs ``parameter`` module).

Directions drive dependency detection (paper §3: "the task parameters and
its direction are taken into account to determine the dependencies among
tasks"):

* ``IN`` — read-only (default): read-after-write dependency on the last
  writer of the datum.
* ``INOUT`` — read + write: also bumps the datum's version (the ``d1v2``
  labels of Fig. 3).
* ``OUT`` — write-only: creates a new version without a read dependency.
* ``FILE_*`` — same directions for file-path parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Data-access direction of a task parameter."""

    IN = "IN"
    OUT = "OUT"
    INOUT = "INOUT"

    @property
    def reads(self) -> bool:
        """Whether the task reads the previous value."""
        return self in (Direction.IN, Direction.INOUT)

    @property
    def writes(self) -> bool:
        """Whether the task produces a new version."""
        return self in (Direction.OUT, Direction.INOUT)


@dataclass(frozen=True)
class ParameterSpec:
    """Direction + content-kind of one task parameter."""

    direction: Direction
    is_file: bool = False

    def __repr__(self) -> str:
        kind = "FILE_" if self.is_file else ""
        return f"{kind}{self.direction.value}"


IN = ParameterSpec(Direction.IN)
OUT = ParameterSpec(Direction.OUT)
INOUT = ParameterSpec(Direction.INOUT)
FILE_IN = ParameterSpec(Direction.IN, is_file=True)
FILE_OUT = ParameterSpec(Direction.OUT, is_file=True)
FILE_INOUT = ParameterSpec(Direction.INOUT, is_file=True)


def normalize_param(spec) -> ParameterSpec:
    """Coerce user input (spec object, Direction, or string) to a spec.

    >>> normalize_param("INOUT").direction.value
    'INOUT'
    """
    if isinstance(spec, ParameterSpec):
        return spec
    if isinstance(spec, Direction):
        return ParameterSpec(spec)
    if isinstance(spec, str):
        name = spec.upper()
        is_file = name.startswith("FILE_")
        if is_file:
            name = name[len("FILE_"):]
        try:
            return ParameterSpec(Direction[name], is_file=is_file)
        except KeyError:
            raise ValueError(f"unknown parameter direction {spec!r}") from None
    raise TypeError(f"cannot interpret {spec!r} as a parameter direction")
