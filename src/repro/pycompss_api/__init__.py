"""User-facing PyCOMPSs-compatible API.

This mirrors the surface the paper's Listing 2 uses::

    from repro.pycompss_api.task import task
    from repro.pycompss_api.api import compss_wait_on
    from repro.pycompss_api.constraint import constraint

    @constraint(processors=[{"ProcessorType": "CPU", "ComputingUnits": 1},
                            {"ProcessorType": "GPU", "ComputingUnits": 1}])
    @task(returns=int)
    def experiment(config):
        ...

Key semantic from the paper (§3, *Programmability*): "in the absence of
PyCOMPSs, the program executes sequentially … and all PyCOMPSs directions
are ignored."  When no runtime has been started, ``@task`` functions run
inline and ``compss_wait_on`` is the identity.
"""

from repro.pycompss_api.task import task
from repro.pycompss_api.constraint import constraint
from repro.pycompss_api.implement import implement, binary, mpi, ompss, multinode
from repro.pycompss_api.parameter import (
    IN,
    OUT,
    INOUT,
    FILE_IN,
    FILE_OUT,
    FILE_INOUT,
    Direction,
)
from repro.pycompss_api.task_group import TaskGroup, compss_barrier_group
from repro.pycompss_api.api import (
    compss_start,
    compss_stop,
    compss_wait_on,
    compss_barrier,
    compss_open,
    compss_delete_object,
    COMPSs,
)

__all__ = [
    "task",
    "constraint",
    "implement",
    "binary",
    "mpi",
    "ompss",
    "multinode",
    "IN",
    "OUT",
    "INOUT",
    "FILE_IN",
    "FILE_OUT",
    "FILE_INOUT",
    "Direction",
    "compss_start",
    "compss_stop",
    "compss_wait_on",
    "compss_barrier",
    "compss_barrier_group",
    "TaskGroup",
    "compss_open",
    "compss_delete_object",
    "COMPSs",
]
