"""The ``@constraint`` decorator (paper §3, Listing 2).

Declares the resources one instance of a task needs.  Both COMPSs
spellings are supported::

    @constraint(processors=[{"ProcessorType": "CPU", "ComputingUnits": 24},
                            {"ProcessorType": "GPU", "ComputingUnits": 1}])
    @task(returns=int)
    def experiment(config): ...

    @constraint(computing_units=4, memory_size=8)
    @task(returns=int)
    def cheap(config): ...

``@constraint`` must be placed *above* ``@task``; it annotates the task
definition created by ``@task``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ResourceConstraint:
    """Resources required by one task instance.

    Attributes
    ----------
    cpu_units:
        CPU computing units (cores).  At least 1 — even GPU tasks need a
        host core.
    gpu_units:
        GPU computing units.
    memory_gb:
        Host memory; 0 means "don't care".
    node_labels:
        Labels the hosting node must match (e.g. ``{"arch": "power9"}``).
    nodes:
        For ``@multinode`` tasks: number of whole nodes the task spans.
    """

    cpu_units: int = 1
    gpu_units: int = 0
    memory_gb: float = 0.0
    node_labels: Mapping[str, str] = field(default_factory=dict)
    nodes: int = 1

    def __post_init__(self) -> None:
        check_positive("cpu_units", self.cpu_units)
        check_non_negative("gpu_units", self.gpu_units)
        check_non_negative("memory_gb", self.memory_gb)
        check_positive("nodes", self.nodes)
        # Hashable identity of this resource demand.  ``node_labels`` is a
        # dict (unhashable), so the dataclass itself cannot be a dict key;
        # the key is what the dispatch fast path and the resource pool's
        # capacity index group tasks by ("constraint class").
        object.__setattr__(
            self,
            "class_key",
            (
                self.cpu_units,
                self.gpu_units,
                self.memory_gb,
                tuple(sorted(self.node_labels.items())),
                self.nodes,
            ),
        )

    def per_node(self) -> "ResourceConstraint":
        """The single-node slice of a multinode constraint."""
        if self.nodes == 1:
            return self
        return ResourceConstraint(
            cpu_units=self.cpu_units,
            gpu_units=self.gpu_units,
            memory_gb=self.memory_gb,
            node_labels=self.node_labels,
        )

    def describe(self) -> str:
        """Compact rendering, e.g. ``"2CPU+1GPU"``."""
        parts = [f"{self.cpu_units}CPU"]
        if self.gpu_units:
            parts.append(f"{self.gpu_units}GPU")
        if self.memory_gb:
            parts.append(f"{self.memory_gb:g}GB")
        if self.nodes > 1:
            parts.append(f"{self.nodes}nodes")
        return "+".join(parts)


def parse_processors(processors: Iterable[Mapping[str, object]]) -> ResourceConstraint:
    """Parse the COMPSs ``processors=[{...}]`` constraint form."""
    cpu = 0
    gpu = 0
    for proc in processors:
        ptype = str(proc.get("ProcessorType", "CPU")).upper()
        units = int(proc.get("ComputingUnits", 1))
        check_positive("ComputingUnits", units)
        if ptype == "CPU":
            cpu += units
        elif ptype == "GPU":
            gpu += units
        else:
            raise ValueError(f"unknown ProcessorType {ptype!r} (use CPU or GPU)")
    return ResourceConstraint(cpu_units=max(cpu, 1), gpu_units=gpu)


def constraint(
    processors: Optional[Iterable[Mapping[str, object]]] = None,
    computing_units: Optional[int] = None,
    gpu_units: Optional[int] = None,
    memory_size: Optional[float] = None,
    node_labels: Optional[Dict[str, str]] = None,
):
    """Attach a :class:`ResourceConstraint` to a ``@task`` definition.

    See module docstring for the two accepted spellings; they may be
    combined (``memory_size`` with ``processors``).
    """
    if processors is not None:
        base = parse_processors(processors)
        cpu = base.cpu_units if computing_units is None else int(computing_units)
        gpu = base.gpu_units if gpu_units is None else int(gpu_units)
    else:
        cpu = int(computing_units) if computing_units is not None else 1
        gpu = int(gpu_units) if gpu_units is not None else 0
    rc = ResourceConstraint(
        cpu_units=cpu,
        gpu_units=gpu,
        memory_gb=float(memory_size) if memory_size is not None else 0.0,
        node_labels=dict(node_labels or {}),
    )

    def decorator(task_wrapper):
        from dataclasses import replace

        definition = getattr(task_wrapper, "definition", None)
        if definition is None:
            raise TypeError(
                "@constraint must be applied above @task "
                "(the decorated object is not a task)"
            )
        # Preserve a node count set by an earlier @multinode decorator.
        definition.constraint = replace(rc, nodes=definition.constraint.nodes)
        return task_wrapper

    return decorator
