"""Tests for ML extensions: BatchNorm, average pooling, LR schedules,
weight serialisation."""

import numpy as np
import pytest

from repro.ml import (
    AveragePool2D,
    BatchNorm,
    CosineDecay,
    Dense,
    ExponentialDecay,
    Flatten,
    GlobalAveragePool2D,
    LearningRateScheduler,
    ReLU,
    Sequential,
    StepDecay,
    load_weights,
    save_weights,
)
from tests.test_ml_layers import (
    check_input_gradient,
    check_param_gradient,
    numerical_grad,
)


def check_training_mode_gradient(layer, x, rng, param_key=None, atol=1e-5):
    """Gradient check against the *training-mode* forward pass.

    BatchNorm's training output depends on batch statistics, so the
    finite-difference loss must also run in training mode (the shared
    checker uses inference mode, which reads running stats instead).
    """
    layer.build(x.shape[1:], rng)
    out = layer.forward(x, training=True)
    w = np.random.default_rng(0).normal(size=out.shape)
    analytic_in = layer.backward(w)
    analytic = analytic_in if param_key is None else layer.grads[param_key].copy()

    def loss():
        return float((layer.forward(x, training=True) * w).sum())

    target = x if param_key is None else layer.params[param_key]
    numeric = numerical_grad(loss, target)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBatchNorm:
    def test_normalises_training_batch(self, rng):
        layer = BatchNorm()
        x = rng.normal(5.0, 3.0, size=(200, 8))
        layer.build((8,), rng)
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_image_input_normalises_per_channel(self, rng):
        layer = BatchNorm()
        x = rng.normal(2.0, 4.0, size=(32, 5, 5, 3))
        layer.build((5, 5, 3), rng)
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-7)

    def test_running_stats_converge(self, rng):
        layer = BatchNorm(momentum=0.5)
        layer.build((4,), rng)
        for _ in range(20):
            layer.forward(rng.normal(3.0, 2.0, size=(64, 4)), training=True)
        np.testing.assert_allclose(layer.running_mean, 3.0, atol=0.5)
        np.testing.assert_allclose(layer.running_var, 4.0, rtol=0.5)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm(momentum=0.0)  # running stats = last batch
        layer.build((4,), rng)
        batch = rng.normal(1.0, 2.0, size=(256, 4))
        layer.forward(batch, training=True)
        out = layer.forward(batch, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.05)

    def test_input_gradient(self, rng):
        check_training_mode_gradient(BatchNorm(), rng.normal(size=(6, 5)), rng)

    def test_gamma_beta_gradients(self, rng):
        check_training_mode_gradient(
            BatchNorm(), rng.normal(size=(6, 5)), rng, param_key="gamma"
        )
        check_training_mode_gradient(
            BatchNorm(), rng.normal(size=(6, 5)), rng, param_key="beta"
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchNorm(momentum=1.5)
        with pytest.raises(ValueError):
            BatchNorm(epsilon=0.0)

    def test_trains_in_model(self, tiny_dataset):
        x, y, xv, yv = tiny_dataset
        m = Sequential([Flatten(), Dense(16), BatchNorm(), ReLU(), Dense(4)], seed=0)
        m.compile("adam", "categorical_crossentropy")
        h = m.fit(x, y, epochs=5, validation_data=(xv, yv))
        assert h.final("val_accuracy") > 0.7


class TestAveragePool:
    def test_mean_of_windows(self, rng):
        layer = AveragePool2D(2)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        layer.build((4, 4, 1), rng)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_input_gradient(self, rng):
        check_input_gradient(AveragePool2D(2), rng.normal(size=(2, 4, 4, 2)), rng)

    def test_gradient_spreads_uniformly(self, rng):
        layer = AveragePool2D(2)
        layer.build((2, 2, 1), rng)
        layer.forward(np.ones((1, 2, 2, 1)), training=True)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        np.testing.assert_allclose(grad, 0.25)

    def test_global_pool_shape(self, rng):
        layer = GlobalAveragePool2D()
        layer.build((5, 5, 7), rng)
        assert layer.output_shape == (7,)
        out = layer.forward(np.ones((3, 5, 5, 7)), training=False)
        np.testing.assert_allclose(out, 1.0)

    def test_global_pool_gradient(self, rng):
        check_input_gradient(
            GlobalAveragePool2D(), rng.normal(size=(2, 3, 3, 2)), rng
        )

    def test_invalid_shapes(self, rng):
        with pytest.raises(ValueError):
            AveragePool2D(5).build((3, 3, 1), rng)
        with pytest.raises(ValueError):
            GlobalAveragePool2D().build((9,), rng)


class TestSchedules:
    def test_step_decay(self):
        s = StepDecay(step_size=10, factor=0.5)
        assert s(0, 1.0) == 1.0
        assert s(10, 1.0) == 0.5
        assert s(25, 1.0) == 0.25

    def test_exponential(self):
        s = ExponentialDecay(rate=0.1)
        assert s(0, 1.0) == pytest.approx(1.0)
        assert s(10, 1.0) == pytest.approx(np.exp(-1.0))

    def test_cosine_endpoints(self):
        s = CosineDecay(total_epochs=10, min_lr=0.1)
        assert s(0, 1.0) == pytest.approx(1.0)
        assert s(10, 1.0) == pytest.approx(0.1)
        assert s(15, 1.0) == pytest.approx(0.1)  # clamps past the horizon

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepDecay(step_size=0)
        with pytest.raises(ValueError):
            StepDecay(factor=1.0)
        with pytest.raises(ValueError):
            CosineDecay(total_epochs=0)

    def test_scheduler_callback_applies_and_restores(self, tiny_dataset):
        x, y, *_ = tiny_dataset
        m = Sequential([Flatten(), Dense(4)], seed=0)
        m.compile("sgd", "categorical_crossentropy", learning_rate=0.1)
        cb = LearningRateScheduler(StepDecay(step_size=2, factor=0.5))
        m.fit(x, y, epochs=4, callbacks=[cb])
        assert cb.history == [0.1, 0.1, 0.05, 0.05]
        assert m.optimizer.learning_rate == 0.1  # restored after training

    def test_plain_function_schedule(self, tiny_dataset):
        x, y, *_ = tiny_dataset
        m = Sequential([Flatten(), Dense(4)], seed=0)
        m.compile("sgd", "categorical_crossentropy", learning_rate=1.0)
        cb = LearningRateScheduler(lambda epoch, base: base / (epoch + 1))
        m.fit(x, y, epochs=3, callbacks=[cb])
        assert cb.history == [1.0, 0.5, pytest.approx(1 / 3)]


class TestSerialization:
    def build_model(self, seed=0):
        m = Sequential([Flatten(), Dense(8), ReLU(), Dense(4)], seed=seed)
        m.compile("sgd", "categorical_crossentropy")
        m.build((6, 6, 1))
        return m

    def test_roundtrip(self, tmp_path, tiny_dataset):
        x, y, *_ = tiny_dataset
        m = self.build_model()
        m.fit(x, y, epochs=1)
        path = save_weights(m, tmp_path / "model.npz")
        m2 = self.build_model(seed=99)  # different init
        load_weights(m2, path)
        np.testing.assert_allclose(m.predict(x[:5]), m2.predict(x[:5]))

    def test_save_unbuilt_rejected(self, tmp_path):
        m = Sequential([Dense(4)])
        with pytest.raises(ValueError, match="unbuilt"):
            save_weights(m, tmp_path / "w.npz")

    def test_architecture_mismatch_detected(self, tmp_path):
        m = self.build_model()
        path = save_weights(m, tmp_path / "w.npz")
        other = Sequential([Flatten(), Dense(16), ReLU(), Dense(4)], seed=0)
        other.build((6, 6, 1))
        with pytest.raises(ValueError, match="shape"):
            load_weights(other, path)

    def test_layer_count_mismatch(self, tmp_path):
        m = self.build_model()
        path = save_weights(m, tmp_path / "w.npz")
        other = Sequential([Flatten(), Dense(4)], seed=0)
        other.build((6, 6, 1))
        with pytest.raises(ValueError, match="layers"):
            load_weights(other, path)

    def test_suffix_normalisation(self, tmp_path):
        m = self.build_model()
        save_weights(m, tmp_path / "model")  # np.savez appends .npz
        load_weights(self.build_model(seed=5), tmp_path / "model")
